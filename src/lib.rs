//! Umbrella crate for the JVolve reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See the individual crates for the real APIs:
//!
//! * [`classfile`] — class-file model, bytecode, verifier
//! * [`lang`] — the MJ guest-language compiler
//! * [`vm`] — the managed runtime (heap/GC, JIT model, threads)
//! * [`dsu`] — the paper's contribution: the dynamic software updater
//! * [`apps`] — versioned guest applications and workloads

pub use jvolve as dsu;
pub use jvolve_apps as apps;
pub use jvolve_classfile as classfile;
pub use jvolve_lang as lang;
pub use jvolve_vm as vm;
