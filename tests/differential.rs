//! Differential testing: the optimizing tier (inlining) must compute
//! exactly what the baseline tier computes, on randomly generated guest
//! programs.

mod testkit;

use testkit::Rng;

use jvolve_repro::vm::{Value, Vm, VmConfig};

/// A tiny expression language over two variables and helper calls,
/// rendered to MJ. Helpers are small enough to be inlined, so evaluating
/// the same program with and without the optimizing tier exercises the
/// inliner end-to-end.
#[derive(Debug, Clone)]
enum Expr {
    A,
    B,
    Lit(i8),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    /// `h1(x, y) = x * 2 - y`
    H1(Box<Expr>, Box<Expr>),
    /// `h2(x) = h1(x, 3) + 1` (nested inlining)
    H2(Box<Expr>),
    /// `abs(x)` with a branch (inlined control flow)
    Abs(Box<Expr>),
}

impl Expr {
    fn render(&self) -> String {
        match self {
            Expr::A => "a".into(),
            Expr::B => "b".into(),
            Expr::Lit(v) => format!("({v})"),
            Expr::Add(x, y) => format!("({} + {})", x.render(), y.render()),
            Expr::Sub(x, y) => format!("({} - {})", x.render(), y.render()),
            Expr::Mul(x, y) => format!("({} * {})", x.render(), y.render()),
            Expr::H1(x, y) => format!("T.h1({}, {})", x.render(), y.render()),
            Expr::H2(x) => format!("T.h2({})", x.render()),
            Expr::Abs(x) => format!("T.abs({})", x.render()),
        }
    }

    fn eval(&self, a: i64, b: i64) -> i64 {
        match self {
            Expr::A => a,
            Expr::B => b,
            Expr::Lit(v) => i64::from(*v),
            Expr::Add(x, y) => x.eval(a, b).wrapping_add(y.eval(a, b)),
            Expr::Sub(x, y) => x.eval(a, b).wrapping_sub(y.eval(a, b)),
            Expr::Mul(x, y) => x.eval(a, b).wrapping_mul(y.eval(a, b)),
            Expr::H1(x, y) => x.eval(a, b).wrapping_mul(2).wrapping_sub(y.eval(a, b)),
            Expr::H2(x) => Expr::H1(x.clone(), Box::new(Expr::Lit(3))).eval(a, b).wrapping_add(1),
            Expr::Abs(x) => x.eval(a, b).wrapping_abs(),
        }
    }
}

/// Random expression with a bounded depth; leaves get likelier as the
/// budget shrinks, matching the old recursive-strategy shape.
fn expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(3) {
            0 => Expr::A,
            1 => Expr::B,
            _ => Expr::Lit(rng.i8()),
        };
    }
    let d = depth - 1;
    match rng.below(6) {
        0 => Expr::Add(Box::new(expr(rng, d)), Box::new(expr(rng, d))),
        1 => Expr::Sub(Box::new(expr(rng, d)), Box::new(expr(rng, d))),
        2 => Expr::Mul(Box::new(expr(rng, d)), Box::new(expr(rng, d))),
        3 => Expr::H1(Box::new(expr(rng, d)), Box::new(expr(rng, d))),
        4 => Expr::H2(Box::new(expr(rng, d))),
        _ => Expr::Abs(Box::new(expr(rng, d))),
    }
}

fn program_for(e: &Expr) -> String {
    format!(
        "class T {{
           static method h1(x: int, y: int): int {{ return x * 2 - y; }}
           static method h2(x: int): int {{ return T.h1(x, 3) + 1; }}
           static method abs(x: int): int {{ if (x < 0) {{ return -x; }} return x; }}
           static method f(a: int, b: int): int {{ return {}; }}
         }}",
        e.render()
    )
}

fn run_tier(src: &str, opt: bool, a: i64, b: i64, reps: u32) -> i64 {
    let mut vm = Vm::new(VmConfig {
        enable_opt: opt,
        opt_threshold: 2,
        ..VmConfig::small()
    });
    vm.load_source(src).expect("program loads");
    let mut last = 0;
    // Repeat so the opt tier actually kicks in (threshold 2).
    for _ in 0..reps {
        last = vm
            .call_static_sync("T", "f", &[Value::Int(a), Value::Int(b)])
            .expect("runs")
            .expect("returns")
            .as_int();
    }
    last
}

#[test]
fn opt_tier_matches_base_tier_and_host() {
    for seed in 0..64 {
        let mut rng = Rng::new(seed);
        let e = expr(&mut rng, 4);
        let a = rng.i64_in(-1000, 1000);
        let b = rng.i64_in(-1000, 1000);
        let src = program_for(&e);
        let expected = e.eval(a, b);
        let base = run_tier(&src, false, a, b, 1);
        let opt = run_tier(&src, true, a, b, 5);
        assert_eq!(base, expected, "seed {seed}: baseline vs host model\n{src}");
        assert_eq!(opt, expected, "seed {seed}: opt (inlining) vs host model\n{src}");
    }
}
