//! Differential testing.
//!
//! * The optimizing tier (inlining) must compute exactly what the
//!   baseline tier computes, on randomly generated guest programs.
//! * The parallel update-GC must be observationally identical to the
//!   serial collector: same post-update heap fingerprint, registry
//!   fingerprint, transformer execution order (= canonical update-log
//!   order), event stream, and `UpdateStats` (minus wall-clock fields)
//!   for every `gc_threads` setting.
//! * The template-JIT tier (superinstruction fusion) must be
//!   observationally invisible: jit-on and jit-off runs agree on every
//!   non-profiling observable — including step and slice counts, since
//!   fused ops retire exactly the base instruction count — across
//!   applied, rolled-back, and lazily-committed updates.

mod testkit;

use std::fmt::Write as _;

use testkit::Rng;

use jvolve_repro::dsu::{ApplyOptions, MemorySink, Update, UpdateController, UpdateEvent};
use jvolve_repro::vm::{MethodId, Value, Vm, VmConfig};

/// A tiny expression language over two variables and helper calls,
/// rendered to MJ. Helpers are small enough to be inlined, so evaluating
/// the same program with and without the optimizing tier exercises the
/// inliner end-to-end.
#[derive(Debug, Clone)]
enum Expr {
    A,
    B,
    Lit(i8),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    /// `h1(x, y) = x * 2 - y`
    H1(Box<Expr>, Box<Expr>),
    /// `h2(x) = h1(x, 3) + 1` (nested inlining)
    H2(Box<Expr>),
    /// `abs(x)` with a branch (inlined control flow)
    Abs(Box<Expr>),
}

impl Expr {
    fn render(&self) -> String {
        match self {
            Expr::A => "a".into(),
            Expr::B => "b".into(),
            Expr::Lit(v) => format!("({v})"),
            Expr::Add(x, y) => format!("({} + {})", x.render(), y.render()),
            Expr::Sub(x, y) => format!("({} - {})", x.render(), y.render()),
            Expr::Mul(x, y) => format!("({} * {})", x.render(), y.render()),
            Expr::H1(x, y) => format!("T.h1({}, {})", x.render(), y.render()),
            Expr::H2(x) => format!("T.h2({})", x.render()),
            Expr::Abs(x) => format!("T.abs({})", x.render()),
        }
    }

    fn eval(&self, a: i64, b: i64) -> i64 {
        match self {
            Expr::A => a,
            Expr::B => b,
            Expr::Lit(v) => i64::from(*v),
            Expr::Add(x, y) => x.eval(a, b).wrapping_add(y.eval(a, b)),
            Expr::Sub(x, y) => x.eval(a, b).wrapping_sub(y.eval(a, b)),
            Expr::Mul(x, y) => x.eval(a, b).wrapping_mul(y.eval(a, b)),
            Expr::H1(x, y) => x.eval(a, b).wrapping_mul(2).wrapping_sub(y.eval(a, b)),
            Expr::H2(x) => Expr::H1(x.clone(), Box::new(Expr::Lit(3))).eval(a, b).wrapping_add(1),
            Expr::Abs(x) => x.eval(a, b).wrapping_abs(),
        }
    }
}

/// Random expression with a bounded depth; leaves get likelier as the
/// budget shrinks, matching the old recursive-strategy shape.
fn expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.below(4) == 0 {
        return match rng.below(3) {
            0 => Expr::A,
            1 => Expr::B,
            _ => Expr::Lit(rng.i8()),
        };
    }
    let d = depth - 1;
    match rng.below(6) {
        0 => Expr::Add(Box::new(expr(rng, d)), Box::new(expr(rng, d))),
        1 => Expr::Sub(Box::new(expr(rng, d)), Box::new(expr(rng, d))),
        2 => Expr::Mul(Box::new(expr(rng, d)), Box::new(expr(rng, d))),
        3 => Expr::H1(Box::new(expr(rng, d)), Box::new(expr(rng, d))),
        4 => Expr::H2(Box::new(expr(rng, d))),
        _ => Expr::Abs(Box::new(expr(rng, d))),
    }
}

fn program_for(e: &Expr) -> String {
    format!(
        "class T {{
           static method h1(x: int, y: int): int {{ return x * 2 - y; }}
           static method h2(x: int): int {{ return T.h1(x, 3) + 1; }}
           static method abs(x: int): int {{ if (x < 0) {{ return -x; }} return x; }}
           static method f(a: int, b: int): int {{ return {}; }}
         }}",
        e.render()
    )
}

fn run_tier(src: &str, opt: bool, a: i64, b: i64, reps: u32) -> i64 {
    let mut vm = Vm::new(VmConfig {
        enable_opt: opt,
        opt_threshold: 2,
        ..VmConfig::small()
    });
    vm.load_source(src).expect("program loads");
    let mut last = 0;
    // Repeat so the opt tier actually kicks in (threshold 2).
    for _ in 0..reps {
        last = vm
            .call_static_sync("T", "f", &[Value::Int(a), Value::Int(b)])
            .expect("runs")
            .expect("returns")
            .as_int();
    }
    last
}

#[test]
fn opt_tier_matches_base_tier_and_host() {
    for seed in 0..64 {
        let mut rng = Rng::new(seed);
        let e = expr(&mut rng, 4);
        let a = rng.i64_in(-1000, 1000);
        let b = rng.i64_in(-1000, 1000);
        let src = program_for(&e);
        let expected = e.eval(a, b);
        let base = run_tier(&src, false, a, b, 1);
        let opt = run_tier(&src, true, a, b, 5);
        assert_eq!(base, expected, "seed {seed}: baseline vs host model\n{src}");
        assert_eq!(opt, expected, "seed {seed}: opt (inlining) vs host model\n{src}");
    }
}

// ---- parallel vs serial update-GC oracle -------------------------------

/// v1 workload: a ring of `Node`s densely cross-linked through `peer`
/// (every node is shared by several others) plus the backing array, all
/// reachable from statics. `App.trace` accumulates an order-sensitive
/// hash the object transformers feed.
const GC_ORACLE_V1: &str = "
class Node {
  field id: int;
  field next: Node;
  field peer: Node;
  ctor(i: int) { this.id = i; }
}
class App {
  static field nodes: Node[];
  static field trace: int;
  static method build(n: int): void {
    var arr: Node[] = new Node[n];
    var i: int = 0;
    while (i < n) { arr[i] = new Node(i); i = i + 1; }
    i = 0;
    while (i < n) {
      arr[i].next = arr[(i + 1) % n];
      arr[i].peer = arr[(i * 7 + 3) % n];
      i = i + 1;
    }
    App.nodes = arr;
    App.trace = 1;
  }
  static method checksum(): int {
    var sum: int = 0;
    var i: int = 0;
    var n: int = App.nodes.length;
    while (i < n) {
      sum = sum * 31 + App.nodes[i].id + App.nodes[i].peer.id + App.nodes[i].next.id;
      i = i + 1;
    }
    return sum;
  }
}";

/// v2: `Node` gains a `gen` field the transformer stamps.
const GC_ORACLE_V2: &str = "
class Node {
  field id: int;
  field gen: int;
  field next: Node;
  field peer: Node;
  ctor(i: int) { this.id = i; this.gen = 0; }
}
class App {
  static field nodes: Node[];
  static field trace: int;
  static method build(n: int): void {
    var arr: Node[] = new Node[n];
    var i: int = 0;
    while (i < n) { arr[i] = new Node(i); i = i + 1; }
    i = 0;
    while (i < n) {
      arr[i].next = arr[(i + 1) % n];
      arr[i].peer = arr[(i * 7 + 3) % n];
      i = i + 1;
    }
    App.nodes = arr;
    App.trace = 1;
  }
  static method checksum(): int {
    var sum: int = 0;
    var i: int = 0;
    var n: int = App.nodes.length;
    while (i < n) {
      sum = sum * 31 + App.nodes[i].id + App.nodes[i].peer.id + App.nodes[i].next.id;
      i = i + 1;
    }
    return sum;
  }
}";

/// Order-sensitive transformer: `App.trace` becomes a rolling hash of the
/// transformer *execution order* — any divergence from the serial
/// collector's canonical update-log order changes it.
const GC_ORACLE_TRANSFORMERS: &str = "
class JvolveTransformers {
  static method jvolve_class_Node(): void { }
  static method jvolve_object_Node(to: Node, from: v1_Node): void {
    to.id = from.id;
    to.next = from.next;
    to.peer = from.peer;
    to.gen = 1;
    App.trace = App.trace * 31 + from.id + 1;
  }
}";

/// A deterministic dump of the registry (same scheme as the controller's
/// rollback tests): classes, methods, and the JTOC, with map-backed
/// tables sorted.
fn registry_fingerprint(vm: &Vm) -> String {
    let reg = vm.registry();
    let mut out = String::new();
    for class in reg.classes() {
        writeln!(out, "class {} name={} super={:?}", class.id, class.name, class.super_id)
            .unwrap();
        writeln!(out, "  layout={:?} ref_map={:?} tib={:?}", class.layout, class.ref_map, class.tib)
            .unwrap();
        let mut vslots: Vec<_> = class.vslots.iter().collect();
        vslots.sort();
        let mut statics: Vec<_> = class.statics.iter().collect();
        statics.sort_by_key(|(name, _)| name.as_str());
        writeln!(out, "  vslots={vslots:?} statics={statics:?}").unwrap();
    }
    for i in 0..reg.method_count() {
        let m = reg.method(MethodId(i as u32));
        writeln!(out, "method {} class={} name={}", m.id, m.class, m.name).unwrap();
    }
    for slot in 0..reg.jtoc_len() {
        writeln!(out, "jtoc[{slot}]={} ref={}", reg.jtoc_get(slot as u32), reg.jtoc_is_ref(slot as u32))
            .unwrap();
    }
    out
}

/// Everything the oracle compares across `gc_threads` settings. No
/// wall-clock: `UpdateStats` Duration fields and `PhaseExited` events
/// (which carry elapsed time) are excluded; everything else must be
/// bit-identical.
#[derive(Debug, PartialEq, Eq)]
struct OracleOutcome {
    heap_fingerprint: u64,
    registry_fingerprint: String,
    /// Rolling hash of transformer execution order (= update-log order).
    trace: i64,
    checksum: i64,
    stats: (u64, usize, usize, usize, usize, usize, usize, usize, usize, usize),
    events: Vec<String>,
}

fn run_gc_oracle(gc_threads: usize, nodes: i64) -> OracleOutcome {
    let mut vm = Vm::new(VmConfig { gc_threads, ..VmConfig::small() });
    let old = jvolve_repro::lang::compile(GC_ORACLE_V1).expect("v1 compiles");
    let new = jvolve_repro::lang::compile(GC_ORACLE_V2).expect("v2 compiles");
    vm.load_classes(&old).expect("v1 loads");
    vm.call_static_sync("App", "build", &[Value::Int(nodes)]).expect("build runs");

    let mut update = Update::prepare(&old, &new, "v1_").expect("update prepares");
    update.set_transformers_source(GC_ORACLE_TRANSFORMERS);

    let mut events = MemorySink::default();
    let mut controller = UpdateController::new(&update, ApplyOptions::default());
    controller.attach_sink(&mut events);
    let stats = controller.run_to_completion(&mut vm).expect("update applies");

    let trace = match vm.read_static("App", "trace") {
        Value::Int(t) => t,
        other => panic!("trace is {other:?}"),
    };
    let checksum = vm
        .call_static_sync("App", "checksum", &[])
        .expect("checksum runs")
        .expect("returns")
        .as_int();
    OracleOutcome {
        heap_fingerprint: vm.heap_fingerprint(),
        registry_fingerprint: registry_fingerprint(&vm),
        trace,
        checksum,
        stats: (
            stats.slices_waited,
            stats.barriers_installed,
            stats.osr_replacements,
            stats.active_migrations,
            stats.classes_loaded,
            stats.bodies_swapped,
            stats.methods_invalidated,
            stats.objects_transformed,
            stats.gc_copied_cells,
            stats.gc_copied_words,
        ),
        events: events
            .events
            .iter()
            .filter(|e| !matches!(e, UpdateEvent::PhaseExited { .. }))
            .map(|e| match e {
                // Commit/abort events carry wall-clock; keep the fact
                // that they fired, drop the timing.
                UpdateEvent::Committed { .. } => "Committed".to_string(),
                UpdateEvent::Aborted { .. } => "Aborted".to_string(),
                other => format!("{other:?}"),
            })
            .collect(),
    }
}

/// The differential oracle: the same workload + update spec under
/// `gc_threads = 1` and `{2, 4, 7}` must be bit-identical in every
/// non-wall-clock observable.
#[test]
fn parallel_update_gc_is_bit_identical_to_serial() {
    const NODES: i64 = 400;
    let serial = run_gc_oracle(1, NODES);
    assert_eq!(serial.stats.7, NODES as usize, "every node transformed");
    assert!(serial.trace != 1, "transformers fed the trace");
    for gc_threads in [2, 4, 7] {
        let parallel = run_gc_oracle(gc_threads, NODES);
        assert_eq!(serial, parallel, "gc_threads={gc_threads} diverged from serial");
    }
}

// ---- inline-cache on/off oracle ----------------------------------------

/// Everything the cache oracle compares across `enable_inline_caches`
/// settings. VM stats deliberately exclude `ic_hits`/`ic_misses` (the two
/// modes differ there by construction) but include `steps`: the caches
/// must not change which instructions execute, only how dispatch resolves.
#[derive(Debug, PartialEq, Eq)]
struct CacheOracleOutcome {
    heap_fingerprint: u64,
    registry_fingerprint: String,
    trace: i64,
    checksum: i64,
    /// (slices, steps, gcs, base_compiles, opt_compiles).
    vm_stats: (u64, u64, u64, u64, u64),
    events: Vec<String>,
}

/// Runs the §4.2-style workload with dispatch caches on or off, applies an
/// update (or induces a mid-install failure and controller *rollback* when
/// `rollback` is set), then keeps executing guest code through the same
/// call sites. Dispatch must re-resolve identically in both modes.
fn run_cache_oracle(enable_inline_caches: bool, rollback: bool) -> CacheOracleOutcome {
    const NODES: i64 = 300;
    let mut vm = Vm::new(VmConfig { enable_inline_caches, ..VmConfig::small() });
    let old = jvolve_repro::lang::compile(GC_ORACLE_V1).expect("v1 compiles");
    let new = jvolve_repro::lang::compile(GC_ORACLE_V2).expect("v2 compiles");
    vm.load_classes(&old).expect("v1 loads");
    vm.call_static_sync("App", "build", &[Value::Int(NODES)]).expect("build runs");
    // Warm every call site so the caches hold pre-update targets when the
    // update (or rollback) invalidates them.
    for _ in 0..3 {
        vm.call_static_sync("App", "checksum", &[]).expect("warm checksum runs");
    }

    let mut update = Update::prepare(&old, &new, "v1_").expect("update prepares");
    if rollback {
        // Mid-install failure: the controller undoes everything installed
        // so far and replays the rollback ledger.
        update.set_transformers_source("this is not a valid MJ program {{{");
    } else {
        update.set_transformers_source(GC_ORACLE_TRANSFORMERS);
    }

    let mut events = MemorySink::default();
    let mut controller = UpdateController::new(&update, ApplyOptions::default());
    controller.attach_sink(&mut events);
    let result = controller.run_to_completion(&mut vm);
    assert_eq!(result.is_err(), rollback, "rollback={rollback}: {result:?}");

    // Post-event guest execution: every cached target filled before the
    // update must re-resolve (to new code, or — after rollback — to the
    // restored old code), never serve a stale method.
    let checksum = vm
        .call_static_sync("App", "checksum", &[])
        .expect("post-update checksum runs")
        .expect("returns")
        .as_int();
    let trace = match vm.read_static("App", "trace") {
        Value::Int(t) => t,
        other => panic!("trace is {other:?}"),
    };
    let s = vm.stats();
    CacheOracleOutcome {
        heap_fingerprint: vm.heap_fingerprint(),
        registry_fingerprint: registry_fingerprint(&vm),
        trace,
        checksum,
        vm_stats: (s.slices, s.steps, s.gcs, s.base_compiles, s.opt_compiles),
        events: events
            .events
            .iter()
            .filter(|e| !matches!(e, UpdateEvent::PhaseExited { .. }))
            .map(|e| match e {
                UpdateEvent::Committed { .. } => "Committed".to_string(),
                UpdateEvent::Aborted { .. } => "Aborted".to_string(),
                other => format!("{other:?}"),
            })
            .collect(),
    }
}

/// The caches-on/off oracle: identical heap, registry, transformer trace,
/// guest results, step counts, and normalized event streams across an
/// applied update AND a rolled-back one.
#[test]
fn inline_caches_are_observationally_invisible() {
    for rollback in [false, true] {
        let off = run_cache_oracle(false, rollback);
        let on = run_cache_oracle(true, rollback);
        assert_eq!(off, on, "rollback={rollback}: cache modes diverged");
        if rollback {
            assert_eq!(on.trace, 1, "no transformer ran before the rollback");
            assert!(on.events.iter().any(|e| e == "Aborted"), "{:?}", on.events);
        } else {
            assert!(on.trace != 1, "transformers fed the trace");
        }
    }
}

// ---- template-JIT on/off oracle ----------------------------------------

/// Everything the jit oracle compares across `enable_jit` settings. VM
/// stats deliberately exclude the tier-population counters that differ by
/// construction (`opt_compiles` — a method can reach the jit threshold
/// before the opt threshold; `jit_compiles`, `deopts`, `fused_steps`) but
/// include `steps` and `slices`: fused superinstructions must retire
/// *exactly* the base instruction count at exactly the same yield points,
/// so even the scheduler's interleaving is bit-identical.
#[derive(Debug, PartialEq, Eq)]
struct JitOracleOutcome {
    heap_fingerprint: u64,
    registry_fingerprint: String,
    trace: i64,
    checksum: i64,
    /// (slices, steps, gcs, base_compiles).
    vm_stats: (u64, u64, u64, u64),
    events: Vec<String>,
}

/// Runs the ring workload with the template-JIT tier on or off (threshold
/// low enough that the loopy `checksum` promotes via OSR-in mid-warmup),
/// applies an update — eagerly, lazily, or inducing a mid-install failure
/// and rollback — then keeps executing through the same (invalidated and
/// re-resolved) code. Returns the cross-mode observables plus the raw
/// stats so callers can assert the jit tier actually engaged.
fn run_jit_oracle(
    enable_jit: bool,
    rollback: bool,
    lazy: bool,
) -> (JitOracleOutcome, jvolve_repro::vm::VmStats) {
    const NODES: i64 = 300;
    let mut vm = Vm::new(VmConfig {
        enable_jit,
        jit_threshold: 40,
        lazy_migration: lazy,
        ..VmConfig::small()
    });
    let old = jvolve_repro::lang::compile(GC_ORACLE_V1).expect("v1 compiles");
    let new = jvolve_repro::lang::compile(GC_ORACLE_V2).expect("v2 compiles");
    vm.load_classes(&old).expect("v1 loads");
    vm.call_static_sync("App", "build", &[Value::Int(NODES)]).expect("build runs");
    // Warm until checksum's loop trips cross the jit threshold (first
    // call already OSRs in) and the fused code holds pre-update operands.
    for _ in 0..3 {
        vm.call_static_sync("App", "checksum", &[]).expect("warm checksum runs");
    }

    let mut update = Update::prepare(&old, &new, "v1_").expect("update prepares");
    if rollback {
        update.set_transformers_source("this is not a valid MJ program {{{");
    } else {
        update.set_transformers_source(GC_ORACLE_TRANSFORMERS);
    }

    let mut events = MemorySink::default();
    let mut controller = UpdateController::new(&update, ApplyOptions::default());
    controller.attach_sink(&mut events);
    let result = controller.run_to_completion(&mut vm);
    assert_eq!(result.is_err(), rollback, "rollback={rollback}: {result:?}");

    // Post-update execution through the invalidated call sites and (in
    // jit mode) the deopted/re-promoted bodies.
    let checksum = vm
        .call_static_sync("App", "checksum", &[])
        .expect("post-update checksum runs")
        .expect("returns")
        .as_int();
    let trace = match vm.read_static("App", "trace") {
        Value::Int(t) => t,
        other => panic!("trace is {other:?}"),
    };
    let s = vm.stats().clone();
    let outcome = JitOracleOutcome {
        heap_fingerprint: vm.heap_fingerprint(),
        registry_fingerprint: registry_fingerprint(&vm),
        trace,
        checksum,
        vm_stats: (s.slices, s.steps, s.gcs, s.base_compiles),
        events: events
            .events
            .iter()
            .filter(|e| !matches!(e, UpdateEvent::PhaseExited { .. }))
            .map(|e| match e {
                UpdateEvent::Committed { .. } => "Committed".to_string(),
                UpdateEvent::Aborted { .. } => "Aborted".to_string(),
                // Keeps the watermark, drops the barrier-arming wall time.
                UpdateEvent::LazyEpochBegun { watermark_words, .. } => {
                    format!("LazyEpochBegun {{ watermark_words: {watermark_words} }}")
                }
                other => format!("{other:?}"),
            })
            .collect(),
    };
    (outcome, s)
}

/// The jit-on/off oracle: identical heap and registry fingerprints,
/// transformer trace, guest results, step/slice counts, and normalized
/// event streams across an applied update AND a rolled-back one, in both
/// eager and lazy commit modes — while the jit run provably compiled,
/// fused, and executed superinstructions.
#[test]
fn jit_tier_is_observationally_invisible() {
    for (rollback, lazy) in [(false, false), (true, false), (false, true), (true, true)] {
        let (off, off_stats) = run_jit_oracle(false, rollback, lazy);
        let (on, on_stats) = run_jit_oracle(true, rollback, lazy);
        assert_eq!(off, on, "rollback={rollback} lazy={lazy}: jit modes diverged");
        assert_eq!(off_stats.jit_compiles, 0, "jit off never jit-compiles");
        assert!(
            on_stats.jit_compiles > 0,
            "rollback={rollback} lazy={lazy}: the jit tier never engaged"
        );
        assert!(
            on_stats.fused_steps > 0,
            "rollback={rollback} lazy={lazy}: no superinstruction ever retired"
        );
        if rollback {
            assert_eq!(on.trace, 1, "no transformer ran before the rollback");
            assert!(on.events.iter().any(|e| e == "Aborted"), "{:?}", on.events);
        } else {
            assert!(on.trace != 1, "transformers fed the trace");
        }
    }
}

// ---- recursive transformer ordering (paper §4.2) -----------------------

/// Chain workload for the recursion stress: `Node(i).next = Node(i+1)`.
const GC_CHAIN_V1: &str = "
class Node {
  field id: int;
  field next: Node;
  ctor(i: int, n: Node) { this.id = i; this.next = n; }
}
class App {
  static field head: Node;
  static field trace: int;
  static method build(n: int): void {
    var head: Node = null;
    var i: int = n - 1;
    while (i >= 0) { head = new Node(i, head); i = i - 1; }
    App.head = head;
    App.trace = 1;
  }
}";

const GC_CHAIN_V2: &str = "
class Node {
  field id: int;
  field depth: int;
  field next: Node;
  ctor(i: int, n: Node) { this.id = i; this.next = n; this.depth = 0; }
}
class App {
  static field head: Node;
  static field trace: int;
  static method build(n: int): void {
    var head: Node = null;
    var i: int = n - 1;
    while (i >= 0) { head = new Node(i, head); i = i - 1; }
    App.head = head;
    App.trace = 1;
  }
}";

/// \"Transform `o` before I read it\" (paper §3.4/§4.2): each transformer
/// forces its referent first, so resolution recurses to the chain tail
/// and unwinds back. The trace records *completion* order.
const GC_CHAIN_TRANSFORMERS: &str = "
class JvolveTransformers {
  static method jvolve_class_Node(): void { }
  static method jvolve_object_Node(to: Node, from: v1_Node): void {
    to.id = from.id;
    to.next = from.next;
    if (from.next != null) {
      Dsu.forceTransform(from.next);
      to.depth = from.next.depth + 1;
    }
    App.trace = App.trace * 31 + from.id + 1;
  }
}";

/// Runs the chain update and returns (trace transcript hash, head depth).
fn run_chain_oracle(gc_threads: usize, nodes: i64) -> (i64, i64) {
    let mut vm = Vm::new(VmConfig { gc_threads, ..VmConfig::small() });
    let old = jvolve_repro::lang::compile(GC_CHAIN_V1).expect("v1 compiles");
    let new = jvolve_repro::lang::compile(GC_CHAIN_V2).expect("v2 compiles");
    vm.load_classes(&old).expect("v1 loads");
    vm.call_static_sync("App", "build", &[Value::Int(nodes)]).expect("build runs");

    let mut update = Update::prepare(&old, &new, "v1_").expect("update prepares");
    update.set_transformers_source(GC_CHAIN_TRANSFORMERS);
    let stats = jvolve_repro::dsu::apply(&mut vm, &update, &ApplyOptions::default())
        .expect("update applies");
    assert_eq!(stats.objects_transformed, nodes as usize);

    let trace = match vm.read_static("App", "trace") {
        Value::Int(t) => t,
        other => panic!("trace is {other:?}"),
    };
    let Value::Ref(head) = vm.read_static("App", "head") else { panic!("head is null") };
    let Value::Int(depth) = vm.read_field(head, "depth") else { panic!("depth unset") };
    (trace, depth)
}

/// Recursive \"transform before read\" requests must resolve in the same
/// order under parallel copy as serial: the completion-order transcript
/// and the recursively-computed depths must match exactly.
#[test]
fn recursive_transformer_ordering_matches_serial_under_parallel_gc() {
    const NODES: i64 = 40;
    let (serial_trace, serial_depth) = run_chain_oracle(1, NODES);
    assert_eq!(serial_depth, NODES - 1, "depth propagated from the chain tail");
    for gc_threads in [2, 4, 7] {
        let (trace, depth) = run_chain_oracle(gc_threads, NODES);
        assert_eq!(trace, serial_trace, "gc_threads={gc_threads}: transcript diverged");
        assert_eq!(depth, serial_depth, "gc_threads={gc_threads}: resolution order diverged");
    }
}
