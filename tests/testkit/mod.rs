//! Deterministic random-input generation for the property tests.
//!
//! A tiny SplitMix64 generator replaces the external `proptest` crate:
//! every test iterates over a fixed range of seeds, so failures are
//! reproducible by seed number with no shrinking machinery required.

#![allow(dead_code)]

/// SplitMix64: a fast, well-distributed 64-bit generator with a one-word
/// state. Good enough for test-input generation; not for cryptography.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero orbit and decorrelate small consecutive seeds.
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }

    /// Uniform in `[lo, hi)`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    pub fn i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    pub fn i8(&mut self) -> i8 {
        self.next_u64() as i8
    }

    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// Random bytes, length in `[0, max_len)`.
    pub fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.below(max_len);
        (0..len).map(|_| self.next_u64() as u8).collect()
    }

    fn char_from(&mut self, set: &str) -> char {
        let chars: Vec<char> = set.chars().collect();
        *self.pick(&chars)
    }

    /// `[a-z][a-zA-Z0-9_]{0,8}` — a lowercase identifier.
    pub fn ident(&mut self) -> String {
        self.name_like("abcdefghijklmnopqrstuvwxyz",
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_", 8)
    }

    /// `[A-Z][a-zA-Z0-9]{0,8}` — a capitalized class name.
    pub fn class_name(&mut self) -> String {
        self.name_like("ABCDEFGHIJKLMNOPQRSTUVWXYZ",
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789", 8)
    }

    fn name_like(&mut self, first: &str, rest: &str, max_extra: usize) -> String {
        let mut s = String::new();
        s.push(self.char_from(first));
        for _ in 0..self.below(max_extra + 1) {
            s.push(self.char_from(rest));
        }
        s
    }

    /// Printable-ASCII text (plus occasional whitespace), length `[0, max_len)`.
    pub fn ascii_text(&mut self, max_len: usize) -> String {
        let len = self.below(max_len.max(1));
        (0..len)
            .map(|_| match self.below(20) {
                0 => '\n',
                1 => '\t',
                _ => char::from(b' ' + (self.next_u64() % 95) as u8),
            })
            .collect()
    }

    /// Arbitrary (valid UTF-8) text: mostly ASCII with some multi-byte
    /// code points mixed in, length up to `max_len` characters.
    pub fn unicode_text(&mut self, max_len: usize) -> String {
        let len = self.below(max_len.max(1));
        (0..len)
            .map(|_| {
                if self.below(8) == 0 {
                    char::from_u32(self.range(0x80, 0xD7FF) as u32).unwrap_or('\u{FFFD}')
                } else {
                    char::from(b' ' + (self.next_u64() % 95) as u8)
                }
            })
            .collect()
    }

    /// String over the given charset, length `[0, max_len)`.
    pub fn string_over(&mut self, set: &str, max_len: usize) -> String {
        let chars: Vec<char> = set.chars().collect();
        let len = self.below(max_len.max(1));
        (0..len).map(|_| *self.pick(&chars)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::Rng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = { let mut r = Rng::new(7); (0..8).map(|_| r.next_u64()).collect() };
        let b: Vec<u64> = { let mut r = Rng::new(7); (0..8).map(|_| r.next_u64()).collect() };
        assert_eq!(a, b);
        let c: Vec<u64> = { let mut r = Rng::new(8); (0..8).map(|_| r.next_u64()).collect() };
        assert_ne!(a, c);
    }

    #[test]
    fn below_in_range() {
        let mut r = Rng::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let v = r.i64_in(-50, 50);
            assert!((-50..50).contains(&v));
        }
    }

    #[test]
    fn names_have_expected_shape() {
        let mut r = Rng::new(2);
        for _ in 0..100 {
            let id = r.ident();
            assert!(id.chars().next().unwrap().is_ascii_lowercase());
            assert!(id.len() <= 9);
            let cn = r.class_name();
            assert!(cn.chars().next().unwrap().is_ascii_uppercase());
            assert!(cn.len() <= 9);
        }
    }
}
