//! Cross-crate integration tests through the umbrella crate: compiler →
//! VM → update driver → applications.

use jvolve_repro::dsu::{apply, ApplyOptions, Update};
use jvolve_repro::vm::{Value, Vm, VmConfig};

#[test]
fn compile_run_update_roundtrip() {
    let v1 = jvolve_repro::lang::compile(
        "class Account {
           field owner: String;
           field balance: int;
           ctor(o: String, b: int) { this.owner = o; this.balance = b; }
           method deposit(n: int): void { this.balance = this.balance + n; }
         }
         class Bank {
           static field acct: Account;
           static method open(): void { Bank.acct = new Account(\"ada\", 100); }
           static method balance(): int { return Bank.acct.balance; }
         }",
    )
    .unwrap();
    // v2 adds an audit counter and changes deposit's body to bump it.
    let v2 = jvolve_repro::lang::compile(
        "class Account {
           field owner: String;
           field balance: int;
           field deposits: int;
           ctor(o: String, b: int) { this.owner = o; this.balance = b; this.deposits = 0; }
           method deposit(n: int): void {
             this.balance = this.balance + n;
             this.deposits = this.deposits + 1;
           }
         }
         class Bank {
           static field acct: Account;
           static method open(): void { Bank.acct = new Account(\"ada\", 100); }
           static method balance(): int { return Bank.acct.balance; }
           static method deposits(): int { return Bank.acct.deposits; }
         }",
    )
    .unwrap();

    let mut vm = Vm::new(VmConfig::small());
    vm.load_classes(&v1).unwrap();
    vm.call_static_sync("Bank", "open", &[]).unwrap();
    assert_eq!(vm.call_static_sync("Bank", "balance", &[]).unwrap(), Some(Value::Int(100)));

    let update = Update::prepare(&v1, &v2, "v1_").unwrap();
    apply(&mut vm, &update, &ApplyOptions::default()).unwrap();

    assert_eq!(
        vm.call_static_sync("Bank", "balance", &[]).unwrap(),
        Some(Value::Int(100)),
        "balance preserved"
    );
    assert_eq!(vm.call_static_sync("Bank", "deposits", &[]).unwrap(), Some(Value::Int(0)));
}

#[test]
fn classfile_codec_roundtrips_compiled_apps() {
    // Every class of every app version survives the binary codec.
    for app in jvolve_repro::apps::all_apps() {
        for version in app.versions() {
            for class in version.compile() {
                let bytes = jvolve_repro::classfile::codec::encode(&class);
                let decoded = jvolve_repro::classfile::codec::decode(&bytes)
                    .unwrap_or_else(|e| panic!("{}: {e}", class.name));
                assert_eq!(class, decoded, "{} round-trips", class.name);
            }
        }
    }
}

#[test]
fn disassembler_renders_all_app_classes() {
    for app in jvolve_repro::apps::all_apps() {
        let version = &app.versions()[0];
        for class in version.compile() {
            let text = jvolve_repro::classfile::disasm::disassemble(&class);
            assert!(text.contains(class.name.as_str()));
        }
    }
}

#[test]
fn update_specs_for_all_releases_serialize() {
    for app in jvolve_repro::apps::all_apps() {
        let versions = app.versions();
        for from in 0..versions.len() - 1 {
            let old = versions[from].compile();
            let new = versions[from + 1].compile();
            let update = Update::prepare(&old, &new, versions[from + 1].prefix).unwrap();
            let json = update.spec.to_json();
            let parsed = jvolve_repro::dsu::UpdateSpec::from_json(&json).unwrap();
            assert_eq!(parsed, update.spec);
        }
    }
}

#[test]
fn generated_default_transformers_compile_for_all_releases() {
    use jvolve_repro::dsu::transform::compile_transformers;
    for app in jvolve_repro::apps::all_apps() {
        let versions = app.versions();
        for from in 0..versions.len() - 1 {
            let old = versions[from].compile();
            let new = versions[from + 1].compile();
            let update = Update::prepare(&old, &new, versions[from + 1].prefix).unwrap();
            // Compile the *generated defaults*, even for releases that
            // ship a custom transformer.
            let default_src = jvolve_repro::dsu::transform::default_transformers_source(
                &update.spec,
                &update.old_classes,
                &update.new_classes,
            );
            compile_transformers(&default_src, &update.spec, &update.old_classes, &update.new_classes)
                .unwrap_or_else(|e| {
                    panic!(
                        "{} {}: default transformers fail to compile:\n{e}\n{default_src}",
                        app.name(),
                        versions[from + 1].label
                    )
                });
        }
    }
}

#[test]
fn vm_survives_many_sequential_updates() {
    // Stress: 20 alternating body updates to the same class.
    let src = |k: i64| {
        format!(
            "class Flip {{ static method value(): int {{ return {k}; }} }}"
        )
    };
    let mut vm = Vm::new(VmConfig::small());
    let mut current = jvolve_repro::lang::compile(&src(0)).unwrap();
    vm.load_classes(&current).unwrap();
    for k in 1..=20i64 {
        let next = jvolve_repro::lang::compile(&src(k)).unwrap();
        let update = Update::prepare(&current, &next, &format!("v{k}_")).unwrap();
        apply(&mut vm, &update, &ApplyOptions::default()).unwrap();
        assert_eq!(vm.call_static_sync("Flip", "value", &[]).unwrap(), Some(Value::Int(k)));
        current = next;
    }
    assert_eq!(vm.update_count(), 20);
}

#[test]
fn vm_survives_many_sequential_class_updates() {
    // Stress: the same class gains one field per update; instance state
    // accretes correctly across 8 class updates.
    let src = |n: usize| {
        let mut fields = String::new();
        let mut sum = String::from("0");
        for i in 0..n {
            fields.push_str(&format!("field f{i}: int; "));
            sum.push_str(&format!(" + this.f{i}"));
        }
        format!(
            "class Grow {{
               {fields}
               method total(): int {{ return {sum}; }}
             }}
             class Holder {{
               static field g: Grow;
               static method init(): void {{ Holder.g = new Grow(); }}
               static method total(): int {{ return Holder.g.total(); }}
             }}"
        )
    };
    let mut vm = Vm::new(VmConfig::small());
    let mut current = jvolve_repro::lang::compile(&src(1)).unwrap();
    vm.load_classes(&current).unwrap();
    vm.call_static_sync("Holder", "init", &[]).unwrap();
    for n in 2..=8usize {
        let next = jvolve_repro::lang::compile(&src(n)).unwrap();
        let update = Update::prepare(&current, &next, &format!("g{n}_")).unwrap();
        apply(&mut vm, &update, &ApplyOptions::default()).unwrap();
        assert_eq!(
            vm.call_static_sync("Holder", "total", &[]).unwrap(),
            Some(Value::Int(0)),
            "all fields default to zero after {n} updates"
        );
        current = next;
    }
}
