//! Differential oracle for lazy migration: an update committed in lazy
//! mode (read barrier + scavenger, `VmConfig::lazy_migration`) must be
//! observationally identical to the same update committed eagerly — same
//! final heap fingerprint, same reachable-state checksums, same
//! transformer multiset — no matter how guest execution, scavenger steps,
//! and full GCs interleave while the epoch drains.

mod testkit;

use testkit::Rng;

use jvolve_repro::dsu::{
    ApplyOptions, MemorySink, StepProgress, Update, UpdateController, UpdateError, UpdateEvent,
    UpdatePhase,
};
use jvolve_repro::vm::heap::NoRemap;
use jvolve_repro::vm::{Value, Vm, VmConfig, VmError};

// ---- fixtures ----------------------------------------------------------

/// v1 ring workload: densely cross-linked `Node`s behind statics. Same
/// shape as the serial-vs-parallel oracle's, but the transformer trace is
/// *commutative* (a sum, not a rolling hash): lazy mode transforms the
/// same multiset as eager but in a touch-dependent order.
const RING_V1: &str = "
class Node {
  field id: int;
  field next: Node;
  field peer: Node;
  ctor(i: int) { this.id = i; }
}
class App {
  static field nodes: Node[];
  static field trace: int;
  static field sink: int;
  static field extra: Node;
  static method build(n: int): void {
    var arr: Node[] = new Node[n];
    var i: int = 0;
    while (i < n) { arr[i] = new Node(i); i = i + 1; }
    i = 0;
    while (i < n) {
      arr[i].next = arr[(i + 1) % n];
      arr[i].peer = arr[(i * 7 + 3) % n];
      i = i + 1;
    }
    App.nodes = arr;
    App.trace = 0;
  }
  static method checksum(): int {
    var sum: int = 0;
    var i: int = 0;
    var n: int = App.nodes.length;
    while (i < n) {
      sum = sum * 31 + App.nodes[i].id + App.nodes[i].peer.id + App.nodes[i].next.id;
      i = i + 1;
    }
    return sum;
  }
  static method churn(): void {
    var r: int = 0;
    while (r < 50) { App.sink = App.sink + App.checksum(); r = r + 1; }
  }
  static method allocone(k: int): void { App.extra = new Node(9000 + k); }
}";

const RING_V2: &str = "
class Node {
  field id: int;
  field gen: int;
  field next: Node;
  field peer: Node;
  ctor(i: int) { this.id = i; this.gen = 0; }
}
class App {
  static field nodes: Node[];
  static field trace: int;
  static field sink: int;
  static field extra: Node;
  static method build(n: int): void {
    var arr: Node[] = new Node[n];
    var i: int = 0;
    while (i < n) { arr[i] = new Node(i); i = i + 1; }
    i = 0;
    while (i < n) {
      arr[i].next = arr[(i + 1) % n];
      arr[i].peer = arr[(i * 7 + 3) % n];
      i = i + 1;
    }
    App.nodes = arr;
    App.trace = 0;
  }
  static method checksum(): int {
    var sum: int = 0;
    var i: int = 0;
    var n: int = App.nodes.length;
    while (i < n) {
      sum = sum * 31 + App.nodes[i].id + App.nodes[i].peer.id + App.nodes[i].next.id;
      i = i + 1;
    }
    return sum;
  }
  static method churn(): void {
    var r: int = 0;
    while (r < 50) { App.sink = App.sink + App.checksum(); r = r + 1; }
  }
  static method allocone(k: int): void { App.extra = new Node(9000 + k); }
}";

/// Commutative transformer: `App.trace` accumulates a sum, so any
/// transformation *order* yields the same final value while still proving
/// every node was transformed exactly once (ids are distinct).
const RING_TRANSFORMERS: &str = "
class JvolveTransformers {
  static method jvolve_class_Node(): void { }
  static method jvolve_object_Node(to: Node, from: v1_Node): void {
    to.id = from.id;
    to.next = from.next;
    to.peer = from.peer;
    to.gen = 1;
    App.trace = App.trace + from.id * 2 + 1;
  }
}";

/// Chain fixture, tail allocated first: ascending heap address = tail →
/// head, so both the eager update log and the lazy worklist process the
/// tail first and `Dsu.forceTransform(from.next)` always hits an
/// already-transformed referent by the time depth is read. The rolling
/// (order-sensitive) trace must therefore match *exactly* across modes.
const CHAIN_V1: &str = "
class Node {
  field id: int;
  field next: Node;
  ctor(i: int, n: Node) { this.id = i; this.next = n; }
}
class App {
  static field head: Node;
  static field trace: int;
  static method build(n: int): void {
    var head: Node = null;
    var i: int = n - 1;
    while (i >= 0) { head = new Node(i, head); i = i - 1; }
    App.head = head;
    App.trace = 1;
  }
}";

const CHAIN_V2: &str = "
class Node {
  field id: int;
  field depth: int;
  field next: Node;
  ctor(i: int, n: Node) { this.id = i; this.next = n; this.depth = 0; }
}
class App {
  static field head: Node;
  static field trace: int;
  static method build(n: int): void {
    var head: Node = null;
    var i: int = n - 1;
    while (i >= 0) { head = new Node(i, head); i = i - 1; }
    App.head = head;
    App.trace = 1;
  }
}";

const CHAIN_TRANSFORMERS: &str = "
class JvolveTransformers {
  static method jvolve_class_Node(): void { }
  static method jvolve_object_Node(to: Node, from: v1_Node): void {
    to.id = from.id;
    to.next = from.next;
    if (from.next != null) {
      Dsu.forceTransform(from.next);
      to.depth = from.next.depth + 1;
    }
    App.trace = App.trace * 31 + from.id + 1;
  }
}";

/// Chain allocated *head first*: the first worklist/update-log entry is
/// the head, so a forcing transformer recurses through the entire chain
/// before anything unwinds — the depth-limit stress.
const DEEP_CHAIN_V1: &str = "
class Node {
  field id: int;
  field next: Node;
  ctor(i: int) { this.id = i; }
}
class App {
  static field head: Node;
  static method build(n: int): void {
    var head: Node = new Node(0);
    var cur: Node = head;
    var i: int = 1;
    while (i < n) { var nn: Node = new Node(i); cur.next = nn; cur = nn; i = i + 1; }
    App.head = head;
  }
}";

const DEEP_CHAIN_V2: &str = "
class Node {
  field id: int;
  field depth: int;
  field next: Node;
  ctor(i: int) { this.id = i; this.depth = 0; }
}
class App {
  static field head: Node;
  static method build(n: int): void {
    var head: Node = new Node(0);
    var cur: Node = head;
    var i: int = 1;
    while (i < n) { var nn: Node = new Node(i); cur.next = nn; cur = nn; i = i + 1; }
    App.head = head;
  }
}";

const DEEP_CHAIN_TRANSFORMERS: &str = "
class JvolveTransformers {
  static method jvolve_class_Node(): void { }
  static method jvolve_object_Node(to: Node, from: v1_Node): void {
    to.id = from.id;
    to.next = from.next;
    if (from.next != null) {
      Dsu.forceTransform(from.next);
      to.depth = from.next.depth + 1;
    }
  }
}";

/// Two nodes forcing each other: an ill-defined transformer set the VM
/// must reject with `TransformerCycle` (paper §3.4), not hang or recurse.
const CYCLE_V1: &str = "
class Node {
  field id: int;
  field next: Node;
  ctor(i: int) { this.id = i; }
}
class App {
  static field a: Node;
  static method build(): void {
    var a: Node = new Node(0);
    var b: Node = new Node(1);
    a.next = b;
    b.next = a;
    App.a = a;
  }
}";

const CYCLE_V2: &str = "
class Node {
  field id: int;
  field gen: int;
  field next: Node;
  ctor(i: int) { this.id = i; this.gen = 0; }
}
class App {
  static field a: Node;
  static method build(): void {
    var a: Node = new Node(0);
    var b: Node = new Node(1);
    a.next = b;
    b.next = a;
    App.a = a;
  }
}";

const CYCLE_TRANSFORMERS: &str = "
class JvolveTransformers {
  static method jvolve_class_Node(): void { }
  static method jvolve_object_Node(to: Node, from: v1_Node): void {
    to.id = from.id;
    to.next = from.next;
    Dsu.forceTransform(from.next);
    to.gen = 1;
  }
}";

// ---- harness -----------------------------------------------------------

struct Fixture {
    v1: &'static str,
    v2: &'static str,
    transformers: &'static str,
    build_args: Vec<Value>,
}

fn make_vm(fixture: &Fixture, lazy: bool, gc_threads: usize) -> (Vm, Update) {
    let mut vm = Vm::new(VmConfig {
        lazy_migration: lazy,
        gc_threads,
        ..VmConfig::small()
    });
    let old = jvolve_repro::lang::compile(fixture.v1).expect("v1 compiles");
    let new = jvolve_repro::lang::compile(fixture.v2).expect("v2 compiles");
    vm.load_classes(&old).expect("v1 loads");
    vm.call_static_sync("App", "build", &fixture.build_args).expect("build runs");
    let mut update = Update::prepare(&old, &new, "v1_").expect("update prepares");
    update.set_transformers_source(fixture.transformers);
    (vm, update)
}

/// Everything the lazy-vs-eager oracle compares. Addresses differ between
/// the two protocols (lazy allocates duplicates mid-heap and compacts at
/// completion), so only address-independent observables qualify:
/// `heap_fingerprint` hashes by BFS visit index, and the trace/checksum
/// are guest-computed.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    heap_fingerprint: u64,
    trace: i64,
    checksum: i64,
    objects_transformed: usize,
}

fn outcome(vm: &mut Vm, objects_transformed: usize) -> Outcome {
    let trace = match vm.read_static("App", "trace") {
        Value::Int(t) => t,
        other => panic!("trace is {other:?}"),
    };
    let checksum = vm
        .call_static_sync("App", "checksum", &[])
        .expect("checksum runs")
        .expect("returns")
        .as_int();
    Outcome {
        heap_fingerprint: vm.heap_fingerprint(),
        trace,
        checksum,
        objects_transformed,
    }
}

fn ring_fixture(nodes: i64) -> Fixture {
    Fixture {
        v1: RING_V1,
        v2: RING_V2,
        transformers: RING_TRANSFORMERS,
        build_args: vec![Value::Int(nodes)],
    }
}

fn run_eager(fixture: &Fixture) -> Outcome {
    let (mut vm, update) = make_vm(fixture, false, 1);
    let stats = jvolve_repro::dsu::apply(&mut vm, &update, &ApplyOptions::default())
        .expect("eager update applies");
    assert!(!vm.lazy_epoch_active());
    outcome(&mut vm, stats.objects_transformed)
}

// ---- tests -------------------------------------------------------------

/// The core oracle: a controller-driven lazy commit (SATB scan, scavenger
/// drain, forwarding collapse) is observationally identical to the eager
/// commit, for every GC parallelism setting, and its event stream tells
/// the lazy story (epoch begun with the watermark, scan steps discovering
/// every stale node, scavenge steps, collapse steps, commit).
#[test]
fn lazy_commit_is_observationally_identical_to_eager() {
    const NODES: i64 = 400;
    let fixture = ring_fixture(NODES);
    let eager = run_eager(&fixture);
    assert_eq!(eager.objects_transformed, NODES as usize);
    assert_eq!(eager.trace, NODES * NODES, "sum of 2i+1 over all ids");

    for gc_threads in [1, 2, 4] {
        let (mut vm, update) = make_vm(&fixture, true, gc_threads);
        let mut events = MemorySink::default();
        let mut controller = UpdateController::new(
            &update,
            ApplyOptions { lazy_scavenge_batch: 64, ..ApplyOptions::default() },
        );
        controller.attach_sink(&mut events);
        let stats = controller.run_to_completion(&mut vm).expect("lazy update applies");
        assert!(!vm.lazy_epoch_active(), "epoch completed");

        let lazy = outcome(&mut vm, stats.objects_transformed);
        assert_eq!(lazy, eager, "gc_threads={gc_threads}: lazy diverged from eager");

        let begun = events.events.iter().find_map(|e| match e {
            UpdateEvent::LazyEpochBegun { watermark_words, .. } => Some(*watermark_words),
            _ => None,
        });
        assert!(begun.expect("epoch begun") > 0, "watermark snapshots the v1 heap");
        let found: usize = events
            .events
            .iter()
            .filter_map(|e| match e {
                UpdateEvent::LazyScanStep { found, .. } => Some(*found),
                _ => None,
            })
            .sum();
        assert_eq!(found, NODES as usize, "SATB scan discovered every stale node");
        let scavenged: usize = events
            .events
            .iter()
            .filter_map(|e| match e {
                UpdateEvent::LazyScavengeStep { transformed, .. } => Some(*transformed),
                _ => None,
            })
            .sum();
        assert_eq!(scavenged, NODES as usize, "scavenger transformed the whole worklist");
        assert!(
            events.events.iter().any(|e| matches!(e, UpdateEvent::LazyCollapseStep { .. })),
            "forwarding collapse ran"
        );
        assert!(
            events.events.iter().any(|e| matches!(e, UpdateEvent::Committed { .. })),
            "lazy run committed"
        );
        // Lazy-phase wall time is booked; no commit collection runs (the
        // in-pause heap cost is the O(roots) barrier arm); and the phase
        // sum stays consistent with the independently-measured total.
        assert!(stats.lazy_time > std::time::Duration::ZERO);
        assert_eq!(stats.gc_time, std::time::Duration::ZERO, "lazy mode never runs a commit GC");
        assert!(stats.phase_sum() <= stats.total_time, "{stats:?}");
    }
}

/// Objects allocated while the epoch drains land above the SATB
/// watermark: the scanner must never visit them (they are born
/// new-version, and no executable code can allocate old-version instances
/// once the update is installed), the transformed count stays exactly the
/// v1 population, and the final state matches an eager commit followed by
/// the same allocations.
#[test]
fn allocation_during_epoch_stays_above_the_watermark() {
    const NODES: i64 = 150;
    const EXTRA: i64 = 40;
    let fixture = ring_fixture(NODES);

    // Eager reference: commit first, then allocate.
    let (mut vm, update) = make_vm(&fixture, false, 1);
    let stats = jvolve_repro::dsu::apply(&mut vm, &update, &ApplyOptions::default())
        .expect("eager update applies");
    for k in 0..EXTRA {
        vm.call_static_sync("App", "allocone", &[Value::Int(k)]).expect("allocone runs");
    }
    let eager = outcome(&mut vm, stats.objects_transformed);
    assert_eq!(eager.objects_transformed, NODES as usize);

    // Lazy: interleave one allocation with every controller step while
    // the epoch drains, finishing any remainder after the commit (the
    // reference allocated all of them post-commit, which is equivalent —
    // both sequences only keep the last extra node live).
    let (mut vm, update) = make_vm(&fixture, true, 1);
    let mut events = MemorySink::default();
    let mut controller = UpdateController::new(
        &update,
        ApplyOptions { lazy_scavenge_batch: 16, lazy_step_cells: 64, ..ApplyOptions::default() },
    );
    controller.attach_sink(&mut events);
    let mut allocated = 0;
    let stats = loop {
        match controller.step(&mut vm) {
            StepProgress::Pending(UpdatePhase::LazyMigrating) => {
                if allocated < EXTRA {
                    vm.call_static_sync("App", "allocone", &[Value::Int(allocated)])
                        .expect("mid-epoch allocone runs");
                    allocated += 1;
                }
            }
            StepProgress::Pending(_) => {}
            StepProgress::Committed => break controller.stats().clone(),
            StepProgress::Aborted => panic!("lazy update aborted: {:?}", controller.error()),
        }
    };
    assert!(allocated > 0, "allocations actually happened mid-epoch");
    for k in allocated..EXTRA {
        vm.call_static_sync("App", "allocone", &[Value::Int(k)]).expect("allocone runs");
    }

    let lazy = outcome(&mut vm, stats.objects_transformed);
    assert_eq!(lazy, eager, "mid-epoch allocation diverged from eager-then-allocate");

    // The scan discovered exactly the v1 population: nothing above the
    // watermark was ever visited.
    let found: usize = events
        .events
        .iter()
        .filter_map(|e| match e {
            UpdateEvent::LazyScanStep { found, .. } => Some(*found),
            _ => None,
        })
        .sum();
    assert_eq!(found, NODES as usize, "scan crossed the allocation watermark");
}

/// Recursive `Dsu.forceTransform` chains (paper §3.4's "transform before
/// I read") must resolve identically in lazy mode: the order-sensitive
/// completion trace and the recursively-computed depths match eager's.
#[test]
fn recursive_force_transform_matches_eager_ordering() {
    const NODES: i64 = 40;
    let fixture = Fixture {
        v1: CHAIN_V1,
        v2: CHAIN_V2,
        transformers: CHAIN_TRANSFORMERS,
        build_args: vec![Value::Int(NODES)],
    };

    let read_chain = |vm: &mut Vm| -> (i64, i64) {
        let trace = match vm.read_static("App", "trace") {
            Value::Int(t) => t,
            other => panic!("trace is {other:?}"),
        };
        let Value::Ref(head) = vm.read_static("App", "head") else { panic!("head is null") };
        let Value::Int(depth) = vm.read_field(head, "depth") else { panic!("depth unset") };
        (trace, depth)
    };

    let (mut vm, update) = make_vm(&fixture, false, 1);
    let stats = jvolve_repro::dsu::apply(&mut vm, &update, &ApplyOptions::default())
        .expect("eager update applies");
    assert_eq!(stats.objects_transformed, NODES as usize);
    let (eager_trace, eager_depth) = read_chain(&mut vm);
    assert_eq!(eager_depth, NODES - 1, "depth propagated from the chain tail");

    let (mut vm, update) = make_vm(&fixture, true, 1);
    let stats = jvolve_repro::dsu::apply(&mut vm, &update, &ApplyOptions::default())
        .expect("lazy update applies");
    assert_eq!(stats.objects_transformed, NODES as usize);
    let (lazy_trace, lazy_depth) = read_chain(&mut vm);
    assert_eq!(lazy_trace, eager_trace, "completion order diverged");
    assert_eq!(lazy_depth, eager_depth);
}

/// Full collections forced mid-epoch — between scavenger batches, with
/// the worklist half drained and forwarding words live — must not lose
/// untouched stale objects or corrupt the pending pairs, at every GC
/// parallelism setting.
#[test]
fn gc_forced_mid_lazy_epoch_preserves_the_oracle() {
    const NODES: i64 = 300;
    let fixture = ring_fixture(NODES);
    let eager = run_eager(&fixture);

    for gc_threads in [1, 2, 4] {
        let (mut vm, update) = make_vm(&fixture, true, gc_threads);
        let mut controller = UpdateController::new(
            &update,
            ApplyOptions { lazy_scavenge_batch: 17, ..ApplyOptions::default() },
        );
        let mut in_epoch = false;
        let stats = loop {
            match controller.step(&mut vm) {
                StepProgress::Pending(UpdatePhase::LazyMigrating) => {
                    // A full collection between every scavenge batch:
                    // copies the half-migrated heap, rewrites the
                    // worklist tail and pending pairs.
                    assert!(vm.lazy_epoch_active());
                    vm.collect_full(&NoRemap).expect("mid-epoch GC succeeds");
                    in_epoch = true;
                }
                StepProgress::Pending(_) => {}
                StepProgress::Committed => break controller.stats().clone(),
                StepProgress::Aborted => {
                    panic!("lazy update aborted: {:?}", controller.error())
                }
            }
        };
        assert!(in_epoch, "the update actually went through a lazy epoch");
        let lazy = outcome(&mut vm, stats.objects_transformed);
        assert_eq!(lazy, eager, "gc_threads={gc_threads}: mid-epoch GCs broke the oracle");
    }
}

/// Property test: randomized interleavings of guest execution (touching
/// objects through the read barrier), scavenger batches, and forced full
/// GCs while the epoch drains. Every interleaving must converge to the
/// eager outcome.
#[test]
fn random_interleavings_of_guest_scavenger_and_gc_match_eager() {
    const NODES: i64 = 120;
    let fixture = ring_fixture(NODES);
    let eager = run_eager(&fixture);

    for seed in 0..12 {
        let mut rng = Rng::new(seed);
        let (mut vm, update) = make_vm(&fixture, true, 1 + (seed as usize % 3));
        // A guest thread that keeps reading the whole ring while the
        // epoch drains: every read goes through the barrier.
        vm.spawn("App", "churn").expect("churn spawns");

        let batch = 1 + rng.below(9);
        let mut controller = UpdateController::new(
            &update,
            ApplyOptions { lazy_scavenge_batch: batch, ..ApplyOptions::default() },
        );
        let stats = loop {
            match controller.step(&mut vm) {
                StepProgress::Pending(UpdatePhase::LazyMigrating) => match rng.below(4) {
                    0 => {
                        vm.collect_full(&NoRemap).expect("mid-epoch GC succeeds");
                    }
                    1 => {}
                    _ => {
                        vm.run_slices(1 + rng.below(3));
                    }
                },
                StepProgress::Pending(_) => {}
                StepProgress::Committed => break controller.stats().clone(),
                StepProgress::Aborted => {
                    panic!("seed {seed}: lazy update aborted: {:?}", controller.error())
                }
            }
        };
        // Let the churner finish before fingerprinting.
        vm.run_to_completion(1_000_000);
        let lazy = outcome(&mut vm, stats.objects_transformed);
        assert_eq!(lazy, eager, "seed {seed} (batch {batch}): interleaving diverged");
    }
}

/// A transformer set that force-chases a deep chain raises the typed
/// depth error — from the eager update-log path and from the lazy
/// barrier path alike — instead of overflowing the guest stack. A chain
/// under the limit still transforms fine in both modes.
#[test]
fn deep_force_transform_chains_raise_a_typed_depth_error() {
    let fixture = |n: i64| Fixture {
        v1: DEEP_CHAIN_V1,
        v2: DEEP_CHAIN_V2,
        transformers: DEEP_CHAIN_TRANSFORMERS,
        build_args: vec![Value::Int(n)],
    };

    for lazy in [false, true] {
        // Under the limit: commits, and the head's depth proves the
        // recursion reached the tail.
        let (mut vm, update) = make_vm(&fixture(100), lazy, 1);
        let stats = jvolve_repro::dsu::apply(&mut vm, &update, &ApplyOptions::default())
            .unwrap_or_else(|e| panic!("lazy={lazy}: 100-node chain applies: {e}"));
        assert_eq!(stats.objects_transformed, 100);
        let Value::Ref(head) = vm.read_static("App", "head") else { panic!("head is null") };
        assert_eq!(vm.read_field(head, "depth"), Value::Int(99), "lazy={lazy}");

        // Over the limit: the typed error, not a guest stack overflow.
        let (mut vm, update) = make_vm(&fixture(200), lazy, 1);
        let err = jvolve_repro::dsu::apply(&mut vm, &update, &ApplyOptions::default())
            .expect_err("200-node forced chain must exceed the depth limit");
        match err {
            UpdateError::Vm(VmError::TransformerDepthExceeded { limit }) => {
                assert_eq!(limit, jvolve_repro::vm::MAX_TRANSFORMER_DEPTH, "lazy={lazy}");
            }
            other => panic!("lazy={lazy}: expected depth error, got {other:?}"),
        }
    }
}

/// Transformers that force a reference cycle are ill-defined; both
/// protocols must reject them with `TransformerCycle` (paper §3.4).
#[test]
fn force_transform_cycles_raise_a_typed_cycle_error() {
    let fixture = Fixture {
        v1: CYCLE_V1,
        v2: CYCLE_V2,
        transformers: CYCLE_TRANSFORMERS,
        build_args: vec![],
    };
    for lazy in [false, true] {
        let (mut vm, update) = make_vm(&fixture, lazy, 1);
        let err = jvolve_repro::dsu::apply(&mut vm, &update, &ApplyOptions::default())
            .expect_err("cyclic force-transform must abort");
        match err {
            UpdateError::Vm(VmError::TransformerCycle) => {}
            other => panic!("lazy={lazy}: expected cycle error, got {other:?}"),
        }
    }
}
