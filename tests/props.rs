//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use jvolve_repro::classfile::builder::ClassBuilder;
use jvolve_repro::classfile::bytecode::Instr;
use jvolve_repro::classfile::{codec, verify, ClassFile, ClassName, ClassSet, Type, Visibility};
use jvolve_repro::vm::heap::{ClassLayouts, Heap, NoRemap};
use jvolve_repro::vm::{ClassId, GcRef, Value};

// ---- strategies -------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9_]{0,8}"
}

fn class_name() -> impl Strategy<Value = String> {
    "[A-Z][a-zA-Z0-9]{0,8}"
}

fn ty() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::Int),
        Just(Type::Bool),
        Just(Type::string()),
        class_name().prop_map(|n| Type::Class(ClassName::from(n))),
    ];
    leaf.prop_recursive(2, 4, 2, |inner| inner.prop_map(Type::array))
}

fn visibility() -> impl Strategy<Value = Visibility> {
    prop_oneof![Just(Visibility::Public), Just(Visibility::Private), Just(Visibility::Protected)]
}

fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        any::<i64>().prop_map(Instr::ConstInt),
        any::<bool>().prop_map(Instr::ConstBool),
        ".{0,12}".prop_map(Instr::ConstStr),
        Just(Instr::ConstNull),
        (0u16..8).prop_map(Instr::Load),
        (0u16..8).prop_map(Instr::Store),
        Just(Instr::Add),
        Just(Instr::Mul),
        Just(Instr::CmpLt),
        Just(Instr::Not),
        Just(Instr::RefEq),
        Just(Instr::StrConcat),
        (class_name(), ident()).prop_map(|(c, f)| Instr::GetField { class: c.into(), field: f }),
        (class_name(), ident()).prop_map(|(c, f)| Instr::PutField { class: c.into(), field: f }),
        (class_name(), ident(), 0u8..4).prop_map(|(c, m, a)| Instr::CallVirtual {
            class: c.into(),
            method: m,
            argc: a
        }),
        (class_name(), ident(), 0u8..4).prop_map(|(c, m, a)| Instr::CallStatic {
            class: c.into(),
            method: m,
            argc: a
        }),
        ty().prop_map(Instr::NewArray),
        Just(Instr::ALoad),
        Just(Instr::AStore),
        Just(Instr::ArrayLen),
        (0u32..16).prop_map(Instr::Jump),
        (0u32..16).prop_map(Instr::JumpIfTrue),
        (0u32..16).prop_map(Instr::JumpIfFalse),
        Just(Instr::Return),
        Just(Instr::ReturnValue),
        Just(Instr::Pop),
        Just(Instr::Dup),
    ]
}

prop_compose! {
    fn class_file()(
        name in class_name(),
        fields in prop::collection::vec((ident(), ty(), visibility(), any::<bool>()), 0..5),
        statics in prop::collection::vec((ident(), ty()), 0..3),
        body in prop::collection::vec(instr(), 1..12),
        mname in ident(),
        ret in ty(),
        is_static in any::<bool>(),
    ) -> ClassFile {
        let mut b = ClassBuilder::new(name.as_str());
        let mut seen = std::collections::BTreeSet::new();
        for (fname, fty, vis, is_final) in fields {
            if seen.insert(fname.clone()) {
                b = b.field_full(fname, fty, vis, is_final);
            }
        }
        for (sname, sty) in statics {
            if seen.insert(format!("s_{sname}")) {
                b = b.static_field(format!("s_{sname}"), sty);
            }
        }
        b.method_full(mname, [Type::Int], ret, is_static,
            jvolve_repro::classfile::MethodKind::Regular,
            |m| { m.instrs(body); })
            .build()
    }
}

// ---- codec ---------------------------------------------------------------

proptest! {
    #[test]
    fn codec_roundtrip(class in class_file()) {
        let bytes = codec::encode(&class);
        let decoded = codec::decode(&bytes).expect("decode");
        prop_assert_eq!(class, decoded);
    }

    #[test]
    fn codec_rejects_truncation(class in class_file(), cut in 1usize..32) {
        let bytes = codec::encode(&class);
        if cut < bytes.len() {
            let truncated = &bytes[..bytes.len() - cut];
            // Must error, never panic or loop.
            prop_assert!(codec::decode(truncated).is_err());
        }
    }

    #[test]
    fn decoder_never_panics_on_noise(noise in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = codec::decode(&noise);
    }
}

// ---- verifier -----------------------------------------------------------

proptest! {
    /// The verifier must classify, never crash, on arbitrary bytecode.
    #[test]
    fn verifier_total_on_arbitrary_bytecode(body in prop::collection::vec(instr(), 1..16)) {
        let class = ClassBuilder::new("Fuzz")
            .static_method("f", [Type::Int], Type::Int, |m| { m.instrs(body); })
            .build();
        let mut set = ClassSet::new();
        for b in jvolve_repro::lang::builtins::builtin_classes() {
            set.insert(b);
        }
        set.insert(class.clone());
        let _ = verify::verify_class(&set, &class);
    }
}

// ---- lexer / parser / compiler --------------------------------------------

proptest! {
    #[test]
    fn lexer_total_on_arbitrary_input(src in ".{0,200}") {
        let _ = jvolve_repro::lang::lexer::lex(&src);
    }

    #[test]
    fn compiler_total_on_arbitrary_input(src in ".{0,200}") {
        let _ = jvolve_repro::lang::compile(&src);
    }

    #[test]
    fn compiler_total_on_classish_input(
        name in class_name(),
        member in "[a-z]{1,6}",
        body in "[a-z0-9 +*();.=]{0,40}",
    ) {
        let src = format!("class {name} {{ method {member}(): int {{ {body} }} }}");
        let _ = jvolve_repro::lang::compile(&src);
    }
}

// ---- UPT / diff ------------------------------------------------------------

proptest! {
    #[test]
    fn diff_of_identical_sets_is_empty(class in class_file()) {
        let mut set = ClassSet::new();
        set.insert(class);
        let spec = jvolve_repro::dsu::diff::prepare_spec(&set, &set, "v_");
        prop_assert!(spec.is_empty());
    }

    #[test]
    fn spec_json_roundtrip(a in class_file(), b in class_file()) {
        let mut old = ClassSet::new();
        old.insert(a);
        let mut new = ClassSet::new();
        new.insert(b);
        let spec = jvolve_repro::dsu::diff::prepare_spec(&old, &new, "v_");
        let parsed = jvolve_repro::dsu::UpdateSpec::from_json(&spec.to_json()).expect("parse");
        prop_assert_eq!(spec, parsed);
    }
}

// ---- heap / GC ---------------------------------------------------------------

/// Fixed test layouts: class 0 has 1 int + 2 ref fields.
struct Layouts;
impl ClassLayouts for Layouts {
    fn object_size(&self, _class: ClassId) -> usize {
        3
    }
    fn ref_map(&self, _class: ClassId) -> &[bool] {
        &[false, true, true]
    }
}

proptest! {
    /// Random object graphs survive collection: every value reachable from
    /// the kept roots is preserved, garbage is reclaimed.
    #[test]
    fn gc_preserves_reachable_graphs(
        n in 1usize..60,
        edges in prop::collection::vec((0usize..60, 0usize..60, 0usize..2), 0..120),
        root_picks in prop::collection::vec(0usize..60, 1..8),
    ) {
        let mut heap = Heap::new(64 * 1024);
        let objs: Vec<GcRef> = (0..n)
            .map(|i| {
                let r = heap.alloc_object(ClassId(0), 3).expect("fits");
                heap.set(r, 0, i as u64 + 1000);
                r
            })
            .collect();
        for &(a, b, slot) in &edges {
            if a < n && b < n {
                heap.set(objs[a], 1 + slot, u64::from(objs[b].0));
            }
        }
        let roots: Vec<GcRef> =
            root_picks.iter().filter(|&&i| i < n).map(|&i| objs[i]).collect();
        prop_assume!(!roots.is_empty());

        // Model: expected int field per reachable object, via BFS.
        let mut reachable = std::collections::BTreeSet::new();
        let mut queue: Vec<GcRef> = roots.clone();
        while let Some(r) = queue.pop() {
            if !reachable.insert(r.0) {
                continue;
            }
            for slot in 1..3 {
                let w = heap.get(r, slot);
                if w != 0 {
                    queue.push(GcRef(w as u32));
                }
            }
        }
        let expected: std::collections::BTreeMap<u32, u64> =
            reachable.iter().map(|&a| (a, heap.get(GcRef(a), 0))).collect();

        heap.collect(&roots, &Layouts, &NoRemap).expect("collect");

        // Walk the graph again from the forwarded roots and compare.
        let mut seen = std::collections::BTreeSet::new();
        let mut queue: Vec<(GcRef, u32)> =
            roots.iter().map(|&r| (heap.resolve(r), r.0)).collect();
        let mut old_of = std::collections::BTreeMap::new();
        while let Some((r, old_addr)) = queue.pop() {
            if !seen.insert(r.0) {
                continue;
            }
            old_of.insert(r.0, old_addr);
            prop_assert_eq!(heap.get(r, 0), expected[&old_addr], "payload preserved");
            for slot in 1..3 {
                let w = heap.get(r, slot);
                if w != 0 {
                    // The referent's old address is found through the
                    // original graph: follow the same edge pre-GC.
                    let old_ref = heap_get_old_edge(&expected, old_addr, slot, &edges, &objs);
                    if let Some(old_target) = old_ref {
                        queue.push((GcRef(w as u32), old_target));
                    }
                }
            }
        }
        prop_assert_eq!(seen.len(), expected.len(), "exactly the reachable set survives");
    }
}

/// Finds the old address an edge pointed to, replaying the edge list (the
/// last write to a slot wins, matching the setup loop).
fn heap_get_old_edge(
    _expected: &std::collections::BTreeMap<u32, u64>,
    old_addr: u32,
    slot: usize,
    edges: &[(usize, usize, usize)],
    objs: &[GcRef],
) -> Option<u32> {
    let idx = objs.iter().position(|r| r.0 == old_addr)?;
    let mut result = None;
    for &(a, b, s) in edges {
        if a == idx && b < objs.len() && 1 + s == slot {
            result = Some(objs[b].0);
        }
    }
    result
}

proptest! {
    #[test]
    fn heap_strings_roundtrip(s in ".{0,64}") {
        let mut heap = Heap::new(4096);
        if let Some(r) = heap.alloc_string(&s) {
            prop_assert_eq!(heap.read_string(r), s);
        }
    }

    #[test]
    fn value_word_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(Value::from_word(Value::Int(v).to_word(), false), Value::Int(v));
    }

    #[test]
    fn ref_word_roundtrip(addr in 1u32..u32::MAX) {
        prop_assert_eq!(
            Value::from_word(Value::Ref(GcRef(addr)).to_word(), true),
            Value::Ref(GcRef(addr))
        );
    }
}

// ---- guest arithmetic matches host arithmetic ---------------------------------

proptest! {
    #[test]
    fn guest_arithmetic_matches_rust(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        use jvolve_repro::vm::{Vm, VmConfig};
        let mut vm = Vm::new(VmConfig::small());
        vm.load_source(
            "class M {
               static method f(a: int, b: int): int {
                 return (a + b) * 2 - a % (b * b + 1);
               }
             }",
        ).expect("loads");
        let got = vm
            .call_static_sync("M", "f", &[Value::Int(a), Value::Int(b)])
            .expect("runs");
        let expected = (a + b) * 2 - a % (b * b + 1);
        prop_assert_eq!(got, Some(Value::Int(expected)));
    }
}

// ---- DSU remap during GC ----------------------------------------------------

proptest! {
    /// With a remap policy, the update log covers exactly the reachable
    /// instances of the remapped class, each ref to them re-targeted.
    #[test]
    fn gc_remap_logs_exactly_reachable_instances(
        n_zero in 1usize..30,
        n_one in 1usize..30,
        links in prop::collection::vec((0usize..60, 0usize..60), 0..60),
        root_picks in prop::collection::vec(0usize..60, 1..6),
    ) {
        use jvolve_repro::vm::heap::GcRemap;
        struct Layout2;
        impl ClassLayouts for Layout2 {
            fn object_size(&self, class: ClassId) -> usize {
                if class.0 == 9 { 4 } else { 3 }
            }
            fn ref_map(&self, class: ClassId) -> &[bool] {
                if class.0 == 9 { &[false, true, true, false] } else { &[false, true, true] }
            }
        }
        struct Remap09;
        impl GcRemap for Remap09 {
            fn remap(&self, class: ClassId) -> Option<ClassId> {
                (class.0 == 0).then_some(ClassId(9))
            }
        }

        let mut heap = Heap::new(64 * 1024);
        let mut objs: Vec<GcRef> = Vec::new();
        for i in 0..n_zero {
            let r = heap.alloc_object(ClassId(0), 3).expect("fits");
            heap.set(r, 0, 5000 + i as u64);
            objs.push(r);
        }
        for i in 0..n_one {
            let r = heap.alloc_object(ClassId(1), 3).expect("fits");
            heap.set(r, 0, 7000 + i as u64);
            objs.push(r);
        }
        let n = objs.len();
        for &(a, b) in &links {
            if a < n && b < n {
                heap.set(objs[a], 1, u64::from(objs[b].0));
            }
        }
        let roots: Vec<GcRef> =
            root_picks.iter().filter(|&&i| i < n).map(|&i| objs[i]).collect();
        prop_assume!(!roots.is_empty());

        // Model: reachable set and how many are class 0.
        let mut reachable = std::collections::BTreeSet::new();
        let mut queue = roots.clone();
        while let Some(r) = queue.pop() {
            if !reachable.insert(r.0) { continue; }
            for slot in 1..3 {
                let w = heap.get(r, slot);
                if w != 0 { queue.push(GcRef(w as u32)); }
            }
        }
        let expected_remapped = reachable
            .iter()
            .filter(|&&a| heap.class_of(GcRef(a)) == ClassId(0))
            .count();

        let out = heap.collect(&roots, &Layout2, &Remap09).expect("collect");
        prop_assert_eq!(out.update_log.len(), expected_remapped);
        for &(old_copy, new_obj) in &out.update_log {
            prop_assert_eq!(heap.class_of(old_copy), ClassId(0));
            prop_assert_eq!(heap.class_of(new_obj), ClassId(9));
            // Old copy retains the payload; new object starts zeroed.
            prop_assert!(heap.get(old_copy, 0) >= 5000);
            prop_assert_eq!(heap.get(new_obj, 0), 0);
        }
        // Every surviving reference field targets class 1 or the NEW class.
        let mut seen = std::collections::BTreeSet::new();
        let mut queue: Vec<GcRef> = roots.iter().map(|&r| heap.resolve(r)).collect();
        while let Some(r) = queue.pop() {
            if !seen.insert(r.0) { continue; }
            prop_assert!(heap.class_of(r) != ClassId(0), "no old-class object is reachable");
            let fields = if heap.class_of(r) == ClassId(9) { 4 } else { 3 };
            for slot in 1..fields.min(3) {
                let w = heap.get(r, slot);
                if w != 0 { queue.push(GcRef(w as u32)); }
            }
        }
    }
}

// ---- restricted-set invariants -----------------------------------------------

proptest! {
    /// Every method of a class-updated class is restricted (category 1),
    /// and the indirect set never overlaps the changed set.
    #[test]
    fn restricted_set_invariants(a in class_file(), b in class_file()) {
        use jvolve_repro::dsu::restricted::RestrictedSet;
        let mut old = ClassSet::new();
        let mut new = ClassSet::new();
        for builtin in jvolve_repro::lang::builtins::builtin_classes() {
            old.insert(builtin.clone());
            new.insert(builtin);
        }
        old.insert(a.clone());
        // Same-named class in the new set, possibly different shape.
        let mut b = b;
        b.name = a.name.clone();
        b.superclass = a.superclass.clone();
        new.insert(b);
        let spec = jvolve_repro::dsu::diff::prepare_spec(&old, &new, "v_");
        let restricted = RestrictedSet::compute(&spec, &old, &[]);
        for delta in spec.class_updates() {
            if let Some(class) = old.get(&delta.name) {
                for m in &class.methods {
                    let mref = jvolve_repro::classfile::MethodRef::new(
                        delta.name.clone(), m.name.clone());
                    prop_assert!(restricted.changed.contains(&mref),
                        "{mref} must be category 1");
                }
            }
        }
        for m in &restricted.indirect {
            prop_assert!(!restricted.changed.contains(m),
                "{m} cannot be both changed and indirect");
        }
    }
}
