//! Lossless-roundtrip property test for the `UpdateSpec` JSON format.
//!
//! The spec file is the update's on-disk interface, so the serializer and
//! parser must be exact inverses: `from_json(to_json(s)) == s` for every
//! spec, and a second `to_json` must be byte-identical to the first (the
//! format is canonical — no key reordering, float drift, or whitespace
//! wobble between writes).

use jvolve::{ClassChangeKind, ClassDelta, UpdateSpec};
use jvolve_classfile::{ClassName, MethodRef};

// ---- deterministic rng (SplitMix64, as in tests/testkit) ---------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    fn name_like(&mut self, first: &str, rest: &str, max_tail: usize) -> String {
        let firsts: Vec<char> = first.chars().collect();
        let rests: Vec<char> = rest.chars().collect();
        let mut s = String::new();
        s.push(firsts[self.below(firsts.len())]);
        for _ in 0..self.below(max_tail + 1) {
            s.push(rests[self.below(rests.len())]);
        }
        s
    }

    fn ident(&mut self) -> String {
        self.name_like(
            "abcdefghijklmnopqrstuvwxyz",
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_",
            8,
        )
    }

    fn class_name(&mut self) -> String {
        self.name_like(
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ",
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789",
            8,
        )
    }
}

// ---- generators --------------------------------------------------------

fn idents(rng: &mut Rng, max: usize) -> Vec<String> {
    (0..rng.below(max + 1)).map(|_| rng.ident()).collect()
}

fn random_delta(rng: &mut Rng) -> ClassDelta {
    let kind =
        if rng.bool() { ClassChangeKind::ClassUpdate } else { ClassChangeKind::MethodBodyOnly };
    let mut d = ClassDelta::empty(ClassName::from(rng.class_name()), kind);
    d.fields_added = idents(rng, 3);
    d.fields_deleted = idents(rng, 3);
    d.fields_changed = idents(rng, 3);
    d.statics_added = idents(rng, 2);
    d.statics_deleted = idents(rng, 2);
    d.statics_changed = idents(rng, 2);
    d.methods_added = idents(rng, 3);
    d.methods_deleted = idents(rng, 3);
    d.methods_body_changed = idents(rng, 3);
    d.methods_sig_changed = idents(rng, 3);
    d.superclass_changed = rng.bool();
    d.inherited_only = rng.bool();
    d
}

fn random_spec(rng: &mut Rng) -> UpdateSpec {
    UpdateSpec {
        version_prefix: format!("v{}_", rng.below(1000)),
        changed: (0..rng.below(5)).map(|_| random_delta(rng)).collect(),
        added_classes: (0..rng.below(4)).map(|_| ClassName::from(rng.class_name())).collect(),
        deleted_classes: (0..rng.below(4)).map(|_| ClassName::from(rng.class_name())).collect(),
        indirect_methods: (0..rng.below(6))
            .map(|_| MethodRef::new(rng.class_name(), rng.ident()))
            .collect(),
    }
}

// ---- properties --------------------------------------------------------

#[test]
fn json_roundtrip_is_lossless_and_canonical() {
    for seed in 0..500 {
        let mut rng = Rng::new(seed);
        let spec = random_spec(&mut rng);
        let json = spec.to_json();
        let parsed = UpdateSpec::from_json(&json)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{json}"));
        assert_eq!(spec, parsed, "seed {seed}: value drift through JSON");
        assert_eq!(json, parsed.to_json(), "seed {seed}: encode is not canonical");
    }
}

#[test]
fn empty_and_maximal_edges_roundtrip() {
    let empty = UpdateSpec {
        version_prefix: "v0_".into(),
        changed: vec![],
        added_classes: vec![],
        deleted_classes: vec![],
        indirect_methods: vec![],
    };
    assert_eq!(empty, UpdateSpec::from_json(&empty.to_json()).unwrap());

    // A delta with every list populated and both flags set.
    let mut rng = Rng::new(0xBEEF);
    let mut spec = random_spec(&mut rng);
    let mut d = random_delta(&mut rng);
    d.fields_added.push("x".into());
    d.superclass_changed = true;
    d.inherited_only = true;
    spec.changed.push(d);
    assert_eq!(spec, UpdateSpec::from_json(&spec.to_json()).unwrap());
}
