//! Integration tests for the `jvolve_run` command-line tool. (The update
//! preparation CLI lives in `crates/upt` as `upt_run`, tested there.)

use std::process::Command;

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("jvolve-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

const V1: &str = "class Counter {
  static field n: int;
  static method main(): void {
    var i: int = 0;
    while (i < 3) { Counter.n = Counter.n + 1; Sys.printInt(Counter.n); i = i + 1; }
  }
}";

const V2: &str = "class Counter {
  static field n: int;
  static field audit: int;
  static method main(): void {
    var i: int = 0;
    while (i < 3) { Counter.n = Counter.n + 1; Sys.printInt(Counter.n); i = i + 1; }
  }
}";

#[test]
fn jvolve_run_executes_and_updates() {
    let old = write_temp("run_v1.mj", V1);
    let new = write_temp("run_v2.mj", V2);
    let trace = write_temp("trace.json", "");
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([
            old.to_str().unwrap(),
            "--main",
            "Counter.main",
            "--update",
            new.to_str().unwrap(),
            "--after",
            "1",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("jvolve_run runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stdout}\n{stderr}");
    assert!(stdout.contains('3'), "program output present: {stdout}");
    assert!(stderr.contains("updated"), "update applied: {stderr}");

    // The phase-event trace was written and tells the whole story.
    let kinds = read_trace_events(&trace, "eager");
    assert_eq!(kinds.first().map(String::as_str), Some("phase_entered"), "{kinds:?}");
    assert_eq!(kinds.last().map(String::as_str), Some("committed"), "{kinds:?}");
}

/// Parses a trace file, asserting the v2 schema envelope and the expected
/// migration mode, and returns the event kinds in order.
fn read_trace_events(path: &std::path::Path, expect_mode: &str) -> Vec<String> {
    let trace_json = std::fs::read_to_string(path).expect("trace file written");
    let parsed = jvolve_json::Json::parse(&trace_json).expect("trace is valid JSON");
    assert_eq!(
        parsed.get("schema").and_then(|v| v.as_str()),
        Some(jvolve::TRACE_SCHEMA),
        "trace carries the schema tag"
    );
    assert_eq!(parsed.get("mode").and_then(|v| v.as_str()), Some(expect_mode));
    parsed
        .get("events")
        .and_then(|v| v.as_arr())
        .expect("trace has an event array")
        .iter()
        .filter_map(|e| e.get("event").and_then(|v| v.as_str()).map(str::to_string))
        .collect()
}

// The lazy workload keeps live instances of the changed class so the
// trace exercises the whole epoch pipeline: SATB scan discovery,
// scavenger transformation, forwarding collapse.
const LAZY_V1: &str = "class Node { field v: int; }
class Counter {
  static field keep: Node;
  static field n: int;
  static method main(): void {
    Counter.keep = new Node();
    var i: int = 0;
    while (i < 3) { Counter.n = Counter.n + 1; Sys.printInt(Counter.n); i = i + 1; }
  }
}";

const LAZY_V2: &str = "class Node { field v: int; field extra: int; }
class Counter {
  static field keep: Node;
  static field n: int;
  static method main(): void {
    Counter.keep = new Node();
    var i: int = 0;
    while (i < 3) { Counter.n = Counter.n + 1; Sys.printInt(Counter.n); i = i + 1; }
  }
}";

#[test]
fn jvolve_run_lazy_updates_and_traces_the_epoch() {
    let old = write_temp("lazy_v1.mj", LAZY_V1);
    let new = write_temp("lazy_v2.mj", LAZY_V2);
    let trace = write_temp("lazy_trace.json", "");
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([
            old.to_str().unwrap(),
            "--main",
            "Counter.main",
            "--update",
            new.to_str().unwrap(),
            "--after",
            "1",
            "--lazy",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("jvolve_run runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stdout}\n{stderr}");
    assert!(stderr.contains("updated"), "update applied: {stderr}");

    let kinds = read_trace_events(&trace, "lazy");
    assert!(kinds.iter().any(|k| k == "lazy_epoch_begun"), "{kinds:?}");
    assert!(kinds.iter().any(|k| k == "lazy_scan_step"), "{kinds:?}");
    assert!(kinds.iter().any(|k| k == "lazy_scavenge_step"), "{kinds:?}");
    assert!(kinds.iter().any(|k| k == "lazy_collapse_step"), "{kinds:?}");
    assert_eq!(kinds.last().map(String::as_str), Some("committed"), "{kinds:?}");
}

#[test]
fn jvolve_run_accepts_auto_gc_threads() {
    let old = write_temp("auto_v1.mj", V1);
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([old.to_str().unwrap(), "--main", "Counter.main", "--gc-threads", "auto"])
        .output()
        .expect("jvolve_run runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stdout}\n{stderr}");
    assert!(stdout.contains('3'), "program ran to completion: {stdout}");
}

#[test]
fn jvolve_run_rejects_bad_gc_threads_value() {
    let old = write_temp("badgc_v1.mj", V1);
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([old.to_str().unwrap(), "--main", "Counter.main", "--gc-threads", "many"])
        .output()
        .expect("jvolve_run runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--gc-threads expects a number"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn jvolve_run_lazy_batch_requires_lazy() {
    let old = write_temp("lb_v1.mj", V1);
    let new = write_temp("lb_v2.mj", V2);
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([
            old.to_str().unwrap(),
            "--main",
            "Counter.main",
            "--update",
            new.to_str().unwrap(),
            "--after",
            "1",
            "--lazy-batch",
            "8",
        ])
        .output()
        .expect("jvolve_run runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--lazy-batch requires --lazy"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn jvolve_run_lazy_batch_tunes_the_epoch() {
    let old = write_temp("lbt_v1.mj", LAZY_V1);
    let new = write_temp("lbt_v2.mj", LAZY_V2);
    let trace = write_temp("lbt_trace.json", "");
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([
            old.to_str().unwrap(),
            "--main",
            "Counter.main",
            "--update",
            new.to_str().unwrap(),
            "--after",
            "1",
            "--lazy",
            "--lazy-batch",
            "1",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("jvolve_run runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stdout}\n{stderr}");
    assert!(stderr.contains("updated"), "update applied: {stderr}");
    let kinds = read_trace_events(&trace, "lazy");
    assert_eq!(kinds.last().map(String::as_str), Some("committed"), "{kinds:?}");
}

#[test]
fn jvolve_run_rejects_unknown_flags() {
    let old = write_temp("strict_v1.mj", V1);
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([old.to_str().unwrap(), "--main", "Counter.main", "--turbo"])
        .output()
        .expect("jvolve_run runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag --turbo"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn jvolve_run_rejects_conflicting_and_malformed_flags() {
    let old = write_temp("strict2_v1.mj", V1);
    let path = old.to_str().unwrap();

    // --lazy makes no sense without an update to apply.
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([path, "--lazy"])
        .output()
        .expect("jvolve_run runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--lazy requires --update"));

    // Malformed numbers are rejected, not silently defaulted.
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([path, "--slices", "many"])
        .output()
        .expect("jvolve_run runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--slices expects a number"));

    // A flag given twice is ambiguous.
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([path, "--slices", "5", "--slices", "6"])
        .output()
        .expect("jvolve_run runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("duplicate flag --slices"));

    // A value-taking flag at the end of the line is missing its value.
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([path, "--main"])
        .output()
        .expect("jvolve_run runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--main needs a value"));
}

#[test]
fn jvolve_run_jit_flags_follow_the_strict_contract() {
    let old = write_temp("jit_v1.mj", V1);
    let path = old.to_str().unwrap();

    // Happy paths: tier off, and tier on with a custom threshold.
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([path, "--main", "Counter.main", "--no-jit"])
        .output()
        .expect("jvolve_run runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains('3'));

    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([path, "--main", "Counter.main", "--jit-threshold", "5"])
        .output()
        .expect("jvolve_run runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains('3'));

    // The threshold tunes a tier that --no-jit removes: conflict.
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([path, "--main", "Counter.main", "--no-jit", "--jit-threshold", "5"])
        .output()
        .expect("jvolve_run runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--jit-threshold conflicts with --no-jit"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");

    // Missing value, malformed value, duplicate bool flag.
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([path, "--main", "Counter.main", "--jit-threshold"])
        .output()
        .expect("jvolve_run runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jit-threshold needs a value"));

    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([path, "--main", "Counter.main", "--jit-threshold", "hot"])
        .output()
        .expect("jvolve_run runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jit-threshold expects a number"));

    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([path, "--main", "Counter.main", "--no-jit", "--no-jit"])
        .output()
        .expect("jvolve_run runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("duplicate flag --no-jit"));
}

#[test]
fn jvolve_run_applies_a_prepared_bundle() {
    // Emit a UPT bundle, then hand it to jvolve_run whole — no --prefix,
    // no --transformers: the bundle carries both.
    let old = write_temp("bundle_v1.mj", V1);
    let v1 = jvolve_lang::compile(V1).unwrap();
    let v2 = jvolve_lang::compile(V2).unwrap();
    let update = jvolve::Update::prepare(&v1, &v2, "vB_").unwrap();
    let dir = std::env::temp_dir()
        .join(format!("jvolve-cli-{}", std::process::id()))
        .join("bundle");
    let _ = std::fs::remove_dir_all(&dir);
    jvolve::bundle::emit(&dir, &update).unwrap();

    let trace = write_temp("bundle_trace.json", "");
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([
            old.to_str().unwrap(),
            "--main",
            "Counter.main",
            "--update-bundle",
            dir.to_str().unwrap(),
            "--after",
            "1",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("jvolve_run runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stdout}\n{stderr}");
    assert!(stderr.contains("updated"), "update applied: {stderr}");
    let kinds = read_trace_events(&trace, "eager");
    assert_eq!(kinds.last().map(String::as_str), Some("committed"), "{kinds:?}");
}

#[test]
fn jvolve_run_update_bundle_conflicts_are_rejected() {
    let old = write_temp("bc_v1.mj", V1);
    let new = write_temp("bc_v2.mj", V2);
    let path = old.to_str().unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([
            path,
            "--update",
            new.to_str().unwrap(),
            "--update-bundle",
            "some/dir",
            "--after",
            "1",
        ])
        .output()
        .expect("jvolve_run runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--update-bundle conflicts with --update"));

    // The bundle carries its own prefix and transformers.
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([path, "--update-bundle", "some/dir", "--prefix", "vX_"])
        .output()
        .expect("jvolve_run runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--prefix conflicts with --update-bundle"));

    // A missing bundle directory is a runtime failure, not a crash.
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([path, "--main", "Counter.main", "--update-bundle", "/nonexistent/bundle"])
        .output()
        .expect("jvolve_run runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("/nonexistent/bundle"));
}

#[test]
fn jvolve_run_reports_missing_main() {
    let old = write_temp("nomain.mj", "class X { }");
    let out = Command::new(env!("CARGO_BIN_EXE_jvolve_run"))
        .args([old.to_str().unwrap(), "--main", "X.main"])
        .output()
        .expect("jvolve_run runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown method"));
}
