//! Controller-level tests: phase stepping, rollback fidelity, and the
//! atomicity guarantee (no embedder observation sees a half-installed
//! class).
//!
//! The rollback tests compare *deterministic registry fingerprints* taken
//! before the update starts and after it aborts: classes (name, layout,
//! ref map, TIB, dispatch and static tables, class-file method lists),
//! methods (definition, compiled code, counters), and the JTOC must all be
//! identical — the old version verifiably still runs.

use std::fmt::Write as _;

use jvolve::{
    ApplyOptions, MemorySink, StepProgress, Update, UpdateController, UpdateError, UpdateEvent,
    UpdatePhase,
};
use jvolve_vm::{MethodId, Value, Vm, VmConfig};

/// A deterministic dump of every registry table (HashMap-backed tables are
/// sorted before printing, so rebuilding a map during rollback cannot
/// produce a spurious diff).
fn registry_fingerprint(vm: &Vm) -> String {
    let reg = vm.registry();
    let mut out = String::new();
    for class in reg.classes() {
        writeln!(out, "class {} name={} super={:?}", class.id, class.name, class.super_id)
            .unwrap();
        writeln!(out, "  layout={:?}", class.layout).unwrap();
        writeln!(out, "  ref_map={:?}", class.ref_map).unwrap();
        writeln!(out, "  tib={:?}", class.tib).unwrap();
        let mut vslots: Vec<_> = class.vslots.iter().collect();
        vslots.sort();
        writeln!(out, "  vslots={vslots:?}").unwrap();
        let mut statics: Vec<_> = class.statics.iter().collect();
        statics.sort_by_key(|(name, _)| name.as_str());
        writeln!(out, "  statics={statics:?}").unwrap();
        writeln!(out, "  file_methods={:?}", class.file.methods).unwrap();
    }
    for i in 0..reg.method_count() {
        let m = reg.method(MethodId(i as u32));
        writeln!(
            out,
            "method {} class={} name={} invocations={} invalidations={}",
            m.id, m.class, m.name, m.invocations, m.invalidations
        )
        .unwrap();
        writeln!(out, "  def={:?}", m.def).unwrap();
        writeln!(out, "  compiled={:?}", m.compiled).unwrap();
    }
    for slot in 0..reg.jtoc_len() {
        writeln!(
            out,
            "jtoc[{slot}]={} ref={}",
            reg.jtoc_get(slot as u32),
            reg.jtoc_is_ref(slot as u32)
        )
        .unwrap();
    }
    out
}

fn compile(src: &str) -> Vec<jvolve_classfile::ClassFile> {
    jvolve_lang::compile(src).expect("test source compiles")
}

/// v1 of a guest whose `spin` runs an effectively unbounded loop — any
/// update changing `spin` can never reach a DSU safe point.
const SPINNER_V1: &str = "
class App {
  static field mode: int;
  static method work(): int { App.mode = App.mode + 1; return App.mode; }
  static method spin(): int {
    var i: int = 0;
    while (i < 100000000) { i = i + 1; }
    return i;
  }
  static method main(): void { Sys.printInt(App.spin()); }
}";

/// v2 changes both `spin` (making it restricted and always on stack) and
/// `work` (an observable behavior change: +10 per call instead of +1).
const SPINNER_V2: &str = "
class App {
  static field mode: int;
  static method work(): int { App.mode = App.mode + 10; return App.mode; }
  static method spin(): int {
    var i: int = 0;
    while (i < 100000000) { i = i + 2; }
    return i;
  }
  static method main(): void { Sys.printInt(App.spin()); }
}";

fn boot_spinner() -> Vm {
    let mut vm = Vm::new(VmConfig { quantum: 50, ..VmConfig::small() });
    vm.load_classes(&compile(SPINNER_V1)).expect("v1 loads");
    vm.spawn("App", "main").expect("main spawns");
    // Get spin() onto the stack.
    for _ in 0..10 {
        vm.step_slice();
    }
    vm
}

#[test]
fn timeout_rolls_back_to_a_bit_identical_registry() {
    let mut vm = boot_spinner();
    let update = Update::prepare(&compile(SPINNER_V1), &compile(SPINNER_V2), "v1_")
        .expect("non-empty update");

    let before = registry_fingerprint(&vm);
    let mut events = MemorySink::default();
    let mut controller =
        UpdateController::new(&update, ApplyOptions { timeout_slices: 50, ..Default::default() });
    controller.attach_sink(&mut events);
    let err = controller.run_to_completion(&mut vm).expect_err("spin blocks forever");
    assert!(
        matches!(&err, UpdateError::Timeout { blocking, .. } if blocking.iter().any(|b| b.contains("spin"))),
        "expected a timeout naming spin, got: {err}"
    );

    // The rollback must leave every registry table exactly as it was. The
    // spinner never enters or leaves a method while waiting, so even the
    // JIT counters cannot legitimately differ.
    let after = registry_fingerprint(&vm);
    assert_eq!(before, after, "timeout rollback must restore the registry bit-for-bit");

    // The event stream records the rollback.
    assert!(
        events.events.iter().any(|e| matches!(e, UpdateEvent::RolledBack { .. })),
        "a RolledBack event must be emitted"
    );
    assert!(
        events
            .events
            .iter()
            .any(|e| matches!(e, UpdateEvent::Aborted { rolled_back: true, .. })),
        "the Aborted event must record that the VM was rolled back"
    );

    // And the old version still runs: work() is v1's +1, not v2's +10.
    assert_eq!(
        vm.call_static_sync("App", "work", &[]).expect("old code runs"),
        Some(Value::Int(1))
    );
}

#[test]
fn bad_transformer_source_rolls_back_mid_install() {
    // No thread is running restricted code, so the controller sails
    // through the safe point and fails *inside* the install phase when the
    // transformer class does not compile — after classes were renamed,
    // stripped, and the new batch loaded. All of it must be undone.
    let v1 = compile("class Counter { static field hits: int; field pad: int;
        static method bump(): int { Counter.hits = Counter.hits + 1; return Counter.hits; } }");
    let v2 = compile("class Counter { static field hits: int; field pad: int; field extra: int;
        static method bump(): int { Counter.hits = Counter.hits + 2; return Counter.hits; } }");
    let mut vm = Vm::new(VmConfig::small());
    vm.load_classes(&v1).expect("v1 loads");
    assert_eq!(vm.call_static_sync("Counter", "bump", &[]).unwrap(), Some(Value::Int(1)));

    let mut update = Update::prepare(&v1, &v2, "v1_").expect("non-empty update");
    update.set_transformers_source("this is not a valid MJ program {{{");

    let before = registry_fingerprint(&vm);
    let mut controller = UpdateController::new(&update, ApplyOptions::default());
    let err = controller.run_to_completion(&mut vm).expect_err("transformer compile fails");
    assert!(matches!(err, UpdateError::Compile(_)), "got: {err}");
    assert_eq!(controller.phase(), UpdatePhase::Aborted);

    let after = registry_fingerprint(&vm);
    assert_eq!(before, after, "mid-install rollback must restore the registry bit-for-bit");

    // Old code, old semantics, preserved statics: 1 + 1 = 2, not + 2.
    assert_eq!(vm.call_static_sync("Counter", "bump", &[]).unwrap(), Some(Value::Int(2)));
}

#[test]
fn malformed_spec_aborts_with_bad_spec_and_rolls_back() {
    // A spec that names a class missing from the payload used to panic the
    // host via expect(); it must now abort with BadSpec and roll back.
    let v1 = compile("class Widget { field a: int; method get(): int { return this.a; } }");
    let v2 = compile(
        "class Widget { field a: int; field b: int; method get(): int { return this.a; } }",
    );
    let mut vm = Vm::new(VmConfig::small());
    vm.load_classes(&v1).expect("v1 loads");

    let mut update = Update::prepare(&v1, &v2, "v1_").expect("non-empty update");
    // Sabotage the payload: the spec still lists Widget as a class update,
    // but the new version no longer carries it.
    update.new_classes.remove(&jvolve_classfile::ClassName::from("Widget"));

    let before = registry_fingerprint(&vm);
    let mut controller = UpdateController::new(&update, ApplyOptions::default());
    let err = controller.run_to_completion(&mut vm).expect_err("payload is malformed");
    assert!(
        matches!(&err, UpdateError::BadSpec { message } if message.contains("Widget")),
        "got: {err}"
    );

    let after = registry_fingerprint(&vm);
    assert_eq!(before, after, "BadSpec rollback must restore the registry bit-for-bit");
    // In particular the rename of Widget → v1_Widget was undone.
    assert!(vm.registry().class_id(&jvolve_classfile::ClassName::from("Widget")).is_some());
    assert!(vm.registry().class_id(&jvolve_classfile::ClassName::from("v1_Widget")).is_none());
}

/// v1 of a guest that spins for a *bounded* stretch inside a changed
/// method, so the update must wait but eventually applies. `probe`
/// returns a version marker.
const SERVER_V1: &str = "
class Srv {
  static method probe(): int { return 1; }
  static method handle(): int {
    var i: int = 0;
    while (i < 60000) { i = i + 1; }
    return i;
  }
  static method main(): void { Sys.printInt(Srv.handle()); }
}";

const SERVER_V2: &str = "
class Srv {
  static method probe(): int { return 2; }
  static method handle(): int {
    var i: int = 0;
    while (i < 60000) { i = i + 2; }
    return i;
  }
  static method main(): void { Sys.printInt(Srv.handle()); }
}";

#[test]
fn interleaved_stepping_never_observes_a_half_installed_class() {
    let mut vm = Vm::new(VmConfig { quantum: 50, ..VmConfig::small() });
    vm.load_classes(&compile(SERVER_V1)).expect("v1 loads");
    vm.spawn("Srv", "main").expect("main spawns");
    for _ in 0..5 {
        vm.step_slice();
    }

    let update = Update::prepare(&compile(SERVER_V1), &compile(SERVER_V2), "v1_")
        .expect("non-empty update");
    let mut controller = UpdateController::new(&update, ApplyOptions::default());

    // Step the controller while serving "requests" (probe calls) between
    // waiting polls — the embedder keeps working mid-update. Every
    // observation must be fully-old (1) before commit and fully-new (2)
    // after; anything else would mean a request saw a half-installed
    // class.
    let mut observations_before_commit = 0;
    let committed = loop {
        match controller.step(&mut vm) {
            StepProgress::Pending(UpdatePhase::WaitingForSafePoint) => {
                let v = vm
                    .call_static_sync("Srv", "probe", &[])
                    .expect("probe serves during the wait");
                assert_eq!(
                    v,
                    Some(Value::Int(1)),
                    "a request observed non-v1 state before the update committed"
                );
                observations_before_commit += 1;
            }
            StepProgress::Pending(_) => {}
            StepProgress::Committed => break true,
            StepProgress::Aborted => break false,
        }
    };
    assert!(committed, "the bounded handler must eventually let the update in: {:?}",
        controller.error());
    assert!(
        observations_before_commit > 0,
        "the update must actually have waited while requests were served"
    );
    assert_eq!(
        vm.call_static_sync("Srv", "probe", &[]).expect("probe serves after the update"),
        Some(Value::Int(2)),
        "after commit every request sees v2"
    );
}

#[test]
fn phase_events_tell_the_protocol_story() {
    // A trivially-applicable update emits the phases in protocol order.
    let v1 = compile("class K { static method f(): int { return 1; } }");
    let v2 = compile("class K { static method f(): int { return 2; } }");
    let mut vm = Vm::new(VmConfig::small());
    vm.load_classes(&v1).expect("v1 loads");

    let update = Update::prepare(&v1, &v2, "v1_").expect("non-empty update");
    let mut events = MemorySink::default();
    let mut controller = UpdateController::new(&update, ApplyOptions::default());
    controller.attach_sink(&mut events);
    controller.run_to_completion(&mut vm).expect("update applies");
    assert_eq!(controller.phase(), UpdatePhase::Committed);
    // The stats the wrapper returns flow from the same event stream.
    let stats = controller.stats().clone();
    drop(controller);
    assert_eq!(stats.bodies_swapped, 1);

    let entered: Vec<UpdatePhase> = events
        .events
        .iter()
        .filter_map(|e| match e {
            UpdateEvent::PhaseEntered { phase, .. } => Some(*phase),
            _ => None,
        })
        .collect();
    assert_eq!(
        entered,
        vec![
            UpdatePhase::WaitingForSafePoint,
            UpdatePhase::Installing,
            UpdatePhase::TransformingHeap
        ]
    );
    assert!(events.events.iter().any(|e| matches!(e, UpdateEvent::SafePointReached { .. })));
    assert!(events.events.iter().any(|e| matches!(e, UpdateEvent::Committed { .. })));
}

#[test]
fn json_trace_is_valid_and_ordered() {
    let v1 = compile("class K { field x: int; method get(): int { return this.x; } }");
    let v2 =
        compile("class K { field x: int; field y: int; method get(): int { return this.x; } }");
    let mut vm = Vm::new(VmConfig::small());
    vm.load_classes(&v1).expect("v1 loads");

    let update = Update::prepare(&v1, &v2, "v1_").expect("non-empty update");
    let mut trace = jvolve::JsonTraceSink::new();
    let mut controller = UpdateController::new(&update, ApplyOptions::default());
    controller.attach_sink(&mut trace);
    controller.run_to_completion(&mut vm).expect("update applies");

    let json = trace.to_json();
    let reparsed = jvolve_json::Json::parse(&json.pretty()).expect("trace is valid JSON");
    assert_eq!(
        reparsed.get("schema").and_then(|v| v.as_str()),
        Some(jvolve::TRACE_SCHEMA),
        "trace carries the schema tag"
    );
    assert_eq!(
        reparsed.get("mode").and_then(|v| v.as_str()),
        Some("eager"),
        "an eager commit is labeled as such"
    );
    let entries = reparsed.get("events").and_then(|v| v.as_arr()).expect("trace has events");
    assert!(!entries.is_empty());
    let kinds: Vec<&str> =
        entries.iter().filter_map(|e| e.get("event").and_then(|v| v.as_str())).collect();
    assert_eq!(kinds.first(), Some(&"phase_entered"));
    assert_eq!(kinds.last(), Some(&"committed"));
    assert!(kinds.contains(&"classes_loaded"));
    assert!(kinds.contains(&"gc_completed"));
}

#[test]
fn rollback_invalidates_warm_inline_caches() {
    // Fill per-site dispatch caches with hot pre-update targets (past the
    // opt threshold, so the cached code is the optimizing tier's), induce
    // a mid-install failure, and verify the rollback re-resolves every
    // cached site to the *restored* old code: v1 semantics, bit-identical
    // registry, and a dispatch epoch strictly newer than every filled
    // cache entry.
    let v1 = compile(
        "class Counter {
           field n: int;
           ctor() { this.n = 0; }
           method tick(): int { this.n = this.n + 1; return this.n; }
         }
         class App {
           static field c: Counter;
           static method init(): void { App.c = new Counter(); }
           static method drive(calls: int): int {
             var last: int = 0;
             var i: int = 0;
             while (i < calls) { last = App.c.tick(); i = i + 1; }
             return last;
           }
         }",
    );
    let v2 = compile(
        "class Counter {
           field n: int;
           ctor() { this.n = 0; }
           method tick(): int { this.n = this.n + 1; return this.n + 1000; }
         }
         class App {
           static field c: Counter;
           static method init(): void { App.c = new Counter(); }
           static method drive(calls: int): int {
             var last: int = 0;
             var i: int = 0;
             while (i < calls) { last = App.c.tick(); i = i + 1; }
             return last;
           }
         }",
    );
    let mut vm = Vm::new(VmConfig::small());
    assert!(vm.config().enable_inline_caches, "caches are on by default");
    vm.load_classes(&v1).expect("v1 loads");
    vm.call_static_sync("App", "init", &[]).expect("init runs");
    // 500 calls: well past the opt threshold, so the cached `tick` target
    // is opt-tier code and the sites are as warm as they get.
    assert_eq!(
        vm.call_static_sync("App", "drive", &[Value::Int(500)]).unwrap(),
        Some(Value::Int(500))
    );

    let mut update = Update::prepare(&v1, &v2, "v1_").expect("non-empty update");
    update.set_transformers_source("this is not a valid MJ program {{{");

    let before = registry_fingerprint(&vm);
    let epoch_before = vm.registry().code_epoch();
    let mut controller = UpdateController::new(&update, ApplyOptions::default());
    let err = controller.run_to_completion(&mut vm).expect_err("transformer compile fails");
    assert!(matches!(err, UpdateError::Compile(_)), "got: {err}");

    let after = registry_fingerprint(&vm);
    assert_eq!(before, after, "rollback must restore the registry bit-for-bit");
    assert!(
        vm.registry().code_epoch() > epoch_before,
        "rollback must advance the dispatch epoch so warm caches cannot serve \
         mid-update (or rolled-back) code"
    );

    // Execution through the previously cached sites: v1 semantics exactly
    // (tick is +1, not v2's +1000 offset), continuing the preserved state.
    assert_eq!(
        vm.call_static_sync("App", "drive", &[Value::Int(3)]).unwrap(),
        Some(Value::Int(503))
    );
}
