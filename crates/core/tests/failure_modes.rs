//! Failure-injection tests: updates that go wrong must fail loudly and
//! leave the system in a known state.

use jvolve::{apply, ApplyOptions, Update, UpdateError};
use jvolve_vm::{Value, Vm, VmConfig, VmError};

fn prepare(vm_cfg: VmConfig, old_src: &str, new_src: &str) -> (Vm, Update) {
    let old = jvolve_lang::compile(old_src).unwrap();
    let new = jvolve_lang::compile(new_src).unwrap();
    let mut vm = Vm::new(vm_cfg);
    vm.load_classes(&old).unwrap();
    let update = Update::prepare(&old, &new, "v1_").unwrap();
    (vm, update)
}

#[test]
fn transformer_trap_aborts_the_update() {
    // A buggy custom transformer null-dereferences: the update must fail
    // with the trap, not corrupt the heap silently.
    let (mut vm, mut update) = prepare(
        VmConfig::small(),
        "class P { field a: int; }
         class H { static field p: P; static method init(): void { H.p = new P(); } }",
        "class P { field a: int; field b: int; }
         class H { static field p: P; static method init(): void { H.p = new P(); } }",
    );
    vm.call_static_sync("H", "init", &[]).unwrap();
    update.set_transformers_source(
        "class JvolveTransformers {
           static method jvolve_class_P(): void { }
           static method jvolve_object_P(to: P, from: v1_P): void {
             var dead: P = null;
             to.a = dead.a;
           }
         }",
    );
    let err = apply(&mut vm, &update, &ApplyOptions::default()).unwrap_err();
    assert!(
        matches!(err, UpdateError::Vm(VmError::NullPointer { .. })),
        "{err}"
    );
}

#[test]
fn transformer_missing_method_is_a_compile_style_error() {
    let (mut vm, mut update) = prepare(
        VmConfig::small(),
        "class P { field a: int; }",
        "class P { field a: int; field b: int; }",
    );
    // Custom source that forgets the object transformer entirely.
    update.set_transformers_source("class JvolveTransformers { }");
    let err = apply(&mut vm, &update, &ApplyOptions::default()).unwrap_err();
    assert!(matches!(err, UpdateError::Compile(_)), "{err}");
}

#[test]
fn transformer_source_syntax_error_is_reported() {
    let (mut vm, mut update) = prepare(
        VmConfig::small(),
        "class P { field a: int; }",
        "class P { field a: int; field b: int; }",
    );
    update.set_transformers_source("class JvolveTransformers { this is not MJ }");
    let err = apply(&mut vm, &update, &ApplyOptions::default()).unwrap_err();
    assert!(matches!(err, UpdateError::Compile(_)), "{err}");
}

#[test]
fn update_gc_overflow_surfaces_out_of_memory() {
    // Fill most of a small heap with updatable objects: the duplication
    // during the update GC cannot fit.
    let (mut vm, update) = prepare(
        VmConfig { semispace_words: 4 * 1024, ..VmConfig::default() },
        "class Blob { field a: int; field b: int; field c: int; field d: int; }
         class H {
           static field keep: Blob[];
           static method init(): void {
             H.keep = new Blob[500];
             var i: int = 0;
             while (i < 500) { H.keep[i] = new Blob(); i = i + 1; }
           }
         }",
        "class Blob { field a: int; field b: int; field c: int; field d: int; field e: int; }
         class H {
           static field keep: Blob[];
           static method init(): void {
             H.keep = new Blob[500];
             var i: int = 0;
             while (i < 500) { H.keep[i] = new Blob(); i = i + 1; }
           }
         }",
    );
    vm.call_static_sync("H", "init", &[]).unwrap();
    let err = apply(&mut vm, &update, &ApplyOptions::default()).unwrap_err();
    assert!(
        matches!(err, UpdateError::Vm(VmError::OutOfMemory { .. })),
        "{err}"
    );
}

#[test]
fn empty_update_is_rejected_at_prepare() {
    let src = "class A { method f(): int { return 1; } }";
    let classes = jvolve_lang::compile(src).unwrap();
    let err = Update::prepare(&classes, &classes, "v1_").unwrap_err();
    assert!(matches!(err, UpdateError::Empty), "{err}");
}

#[test]
fn ill_typed_new_version_is_rejected_at_prepare() {
    // Hand-corrupt the new version's bytecode after compilation: prepare
    // must catch it via verification (the paper's safety keystone).
    let old = jvolve_lang::compile("class A { static method f(): int { return 1; } }").unwrap();
    let mut new =
        jvolve_lang::compile("class A { static method f(): int { return 2; } }").unwrap();
    let code = new[0].methods.iter_mut().find(|m| m.name == "f").unwrap();
    code.code.as_mut().unwrap().instrs.insert(0, jvolve_classfile::bytecode::Instr::Pop);
    let err = Update::prepare(&old, &new, "v1_").unwrap_err();
    assert!(matches!(err, UpdateError::Compile(_)), "{err}");
}

#[test]
fn update_to_not_loaded_class_fails_cleanly() {
    // The VM runs a different program than the update's old version.
    let (mut vm, _) = prepare(
        VmConfig::small(),
        "class Unrelated { }",
        "class Unrelated { field x: int; }",
    );
    let old = jvolve_lang::compile("class Ghost { field a: int; }").unwrap();
    let new = jvolve_lang::compile("class Ghost { field a: int; field b: int; }").unwrap();
    let update = Update::prepare(&old, &new, "g_").unwrap();
    let err = apply(&mut vm, &update, &ApplyOptions::default()).unwrap_err();
    assert!(matches!(err, UpdateError::Vm(VmError::ResolutionError { .. })), "{err}");
}

#[test]
fn timeout_leaves_old_version_fully_functional() {
    let (mut vm, update) = prepare(
        VmConfig { quantum: 50, ..VmConfig::small() },
        "class S {
           static field beats: int;
           static method run(): void {
             while (true) { S.beats = S.beats + 1; Sys.yieldNow(); }
           }
           static method peek(): int { return S.beats; }
         }",
        "class S {
           static field beats: int;
           static method run(): void {
             while (true) { S.beats = S.beats + 2; Sys.yieldNow(); }
           }
           static method peek(): int { return S.beats; }
         }",
    );
    vm.spawn("S", "run").unwrap();
    vm.run_slices(10);
    let before = vm.read_static("S", "beats");

    let opts = ApplyOptions { timeout_slices: 100, ..ApplyOptions::default() };
    let err = apply(&mut vm, &update, &opts).unwrap_err();
    assert!(matches!(err, UpdateError::Timeout { .. }), "{err}");

    // The old loop keeps beating (old code, old data, barriers cleared).
    vm.run_slices(50);
    let after = vm.read_static("S", "beats");
    assert!(after.as_int() > before.as_int(), "old version still runs");
    assert_eq!(vm.update_count(), 0);
    assert_eq!(
        vm.call_static_sync("S", "peek", &[]).unwrap(),
        Some(Value::Int(after.as_int())),
    );
}

#[test]
fn deleted_class_with_live_instances_is_safe() {
    // Instances of a deleted class survive the update (unreachable from
    // new code, but the heap must stay consistent).
    let (mut vm, update) = prepare(
        VmConfig::small(),
        "class Legacy { field v: int; }
         class K {
           static field l: Legacy;
           static field tag: int;
           static method init(): void { K.l = new Legacy(); K.tag = 9; }
         }",
        "class K {
           static field tag: int;
           static method init(): void { K.tag = 9; }
         }",
    );
    vm.call_static_sync("K", "init", &[]).unwrap();
    apply(&mut vm, &update, &ApplyOptions::default()).unwrap();
    assert_eq!(vm.read_static("K", "tag"), Value::Int(9));
    // The GC still runs cleanly afterwards.
    vm.collect_full(&jvolve_vm::heap::NoRemap).unwrap();
}

#[test]
fn update_while_thread_blocked_on_network_read() {
    // A thread parked in Net.readLine inside an unrestricted method does
    // not block unrelated updates, and resumes correctly afterwards.
    let (mut vm, update) = prepare(
        VmConfig::small(),
        "class Srv {
           static method serve(): void {
             var l: int = Net.listen(4242);
             var c: int = Net.accept(l);
             var line: String = Net.readLine(c);
             Net.write(c, \"got \" + line);
             Net.close(c);
           }
         }
         class Other { static method f(): int { return 1; } }",
        "class Srv {
           static method serve(): void {
             var l: int = Net.listen(4242);
             var c: int = Net.accept(l);
             var line: String = Net.readLine(c);
             Net.write(c, \"got \" + line);
             Net.close(c);
           }
         }
         class Other { static method f(): int { return 2; } }",
    );
    vm.spawn("Srv", "serve").unwrap();
    vm.run_slices(5);
    let conn = vm.net_mut().client_connect(4242).unwrap();
    vm.run_slices(5); // now blocked in readLine

    apply(&mut vm, &update, &ApplyOptions::default()).unwrap();
    assert_eq!(vm.call_static_sync("Other", "f", &[]).unwrap(), Some(Value::Int(2)));

    vm.net_mut().client_send(conn, "ping");
    vm.run_slices(20);
    assert_eq!(vm.net_mut().client_recv(conn), Some("got ping".to_string()));
}

#[test]
fn inlined_restricted_method_blocks_until_frame_returns() {
    // A hot caller inlines a small callee; the callee's body changes.
    // While the caller runs, the update must wait (InlinedRestricted).
    let src_v1 = "class M {
        static method tiny(): int { return 1; }
        static method hot(): int {
          var acc: int = 0;
          var i: int = 0;
          while (i < 200) { acc = acc + M.tiny(); i = i + 1; }
          return acc;
        }
        static method main(): void {
          var j: int = 0;
          var total: int = 0;
          while (j < 500) { total = total + M.hot(); j = j + 1; }
          Sys.printInt(total);
        }
      }";
    let src_v2 = src_v1.replace("return 1;", "return 2;");
    let old = jvolve_lang::compile(src_v1).unwrap();
    let new = jvolve_lang::compile(&src_v2).unwrap();
    // Low opt threshold so `hot` gets opt-compiled (inlining tiny) fast.
    // Jit off: the template JIT doesn't inline, and hot's loop trips would
    // otherwise promote it straight to the jit tier before the opt
    // threshold ever fires — this test is about the *opt* tier's barrier.
    let mut vm = Vm::new(VmConfig {
        opt_threshold: 5,
        quantum: 100,
        enable_jit: false,
        ..VmConfig::small()
    });
    vm.load_classes(&old).unwrap();
    vm.spawn("M", "main").unwrap();
    // Run until hot() is opt-compiled and on stack.
    let mut inlined_on_stack = false;
    for _ in 0..2_000 {
        vm.step_slice();
        let on = vm.threads().any(|t| {
            t.frames.iter().any(|f| !f.compiled.inlined.is_empty())
        });
        if on {
            inlined_on_stack = true;
            break;
        }
    }
    assert!(inlined_on_stack, "hot() should have inlined tiny() and be running");

    let update = Update::prepare(&old, &new, "v1_").unwrap();
    let stats = apply(
        &mut vm,
        &update,
        &ApplyOptions { timeout_slices: 50_000, ..ApplyOptions::default() },
    )
    .unwrap();
    assert!(stats.slices_waited > 0, "had to wait for the inlining frame");
    assert!(vm.run_to_completion(2_000_000));
    // Total reflects a mix of old (hot inlining tiny=1) and new (tiny=2)
    // code — but every hot() call was internally consistent.
    let out: i64 = vm.output()[0].parse().unwrap();
    assert!((100_000..=200_000).contains(&out), "{out}");
}
