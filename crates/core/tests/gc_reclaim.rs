//! Paper §3.4: "Once it processes all pairs, the log is deleted, making
//! the duplicate old versions unreachable. Since they are unreachable,
//! the next garbage collection will naturally reclaim them."

use jvolve::{apply, ApplyOptions, Update};
use jvolve_vm::heap::NoRemap;
use jvolve_vm::{Vm, VmConfig};

#[test]
fn old_copies_are_reclaimed_by_the_next_collection() {
    let old_src = "
      class Item { field a: int; field b: int; }
      class H {
        static field keep: Item[];
        static method init(n: int): void {
          H.keep = new Item[n];
          var i: int = 0;
          while (i < n) { H.keep[i] = new Item(); i = i + 1; }
        }
      }
      class M { static method main(): void { H.init(2000); } }";
    let new_src = old_src.replace(
        "class Item { field a: int; field b: int; }",
        "class Item { field a: int; field b: int; field c: int; }",
    );
    let old = jvolve_lang::compile(old_src).unwrap();
    let new = jvolve_lang::compile(&new_src).unwrap();
    let mut vm = Vm::new(VmConfig { semispace_words: 256 * 1024, ..VmConfig::default() });
    vm.load_classes(&old).unwrap();
    vm.spawn("M", "main").unwrap();
    assert!(vm.run_to_completion(1_000_000));

    // Live set: 2000 Items of 2 fields + the array.
    vm.collect_full(&NoRemap).unwrap();
    let baseline = vm.heap().used_words();

    let update = Update::prepare(&old, &new, "v1_").unwrap();
    let stats = apply(&mut vm, &update, &ApplyOptions::default()).unwrap();
    assert_eq!(stats.objects_transformed, 2000);

    // Immediately after the update the heap holds the new objects AND the
    // unreachable old copies.
    let after_update = vm.heap().used_words();
    assert!(
        after_update > baseline + 2000 * 3,
        "old copies still occupy the heap: {after_update} vs {baseline}"
    );

    // The next collection reclaims them: usage returns to roughly the new
    // live set (old live set + one extra word per transformed Item).
    vm.collect_full(&NoRemap).unwrap();
    let after_gc = vm.heap().used_words();
    assert!(
        after_gc < after_update - 2000 * 2,
        "old copies should be gone: {after_gc} vs {after_update}"
    );
    assert!(
        after_gc >= baseline + 2000,
        "new objects are one word larger each: {after_gc} vs {baseline}"
    );
}
