//! Integration tests for the full update protocol (paper §2–§3).

use jvolve::{apply, ApplyOptions, Update, UpdateError};
use jvolve_classfile::MethodRef;
use jvolve_vm::{Value, Vm, VmConfig};

fn vm_with(src: &str) -> (Vm, Vec<jvolve_classfile::ClassFile>) {
    let classes = jvolve_lang::compile(src).unwrap();
    let mut vm = Vm::new(VmConfig::small());
    vm.load_classes(&classes).unwrap();
    (vm, classes)
}

fn quick_opts() -> ApplyOptions {
    ApplyOptions { timeout_slices: 2_000, ..ApplyOptions::default() }
}

#[test]
fn figure_2_3_email_update_end_to_end() {
    // The paper's running example: User.forwardAddresses changes from
    // String[] to EmailAddress[], with the Figure 3 custom transformer
    // splitting each address at '@'.
    let old_src = "
      class User {
        private final field username: String;
        private field forwardAddresses: String[];
        ctor(u: String) {
          this.username = u;
          this.forwardAddresses = new String[2];
          this.forwardAddresses[0] = \"alice@example.com\";
          this.forwardAddresses[1] = \"bob@test.org\";
        }
        method describe(): String { return this.username; }
      }
      class Store {
        static field user: User;
        static method init(): void { Store.user = new User(\"admin\"); }
        static method describe(): String { return Store.user.describe(); }
      }";
    let new_src = "
      class EmailAddress {
        field username: String; field domain: String;
        ctor(u: String, d: String) { this.username = u; this.domain = d; }
        method render(): String { return this.username + \"@\" + this.domain; }
      }
      class User {
        private final field username: String;
        private field forwardAddresses: EmailAddress[];
        ctor(u: String) {
          this.username = u;
          this.forwardAddresses = new EmailAddress[0];
        }
        method describe(): String {
          var s: String = this.username;
          var i: int = 0;
          while (i < this.forwardAddresses.length) {
            s = s + \" \" + this.forwardAddresses[i].render();
            i = i + 1;
          }
          return s;
        }
      }
      class Store {
        static field user: User;
        static method init(): void { Store.user = new User(\"admin\"); }
        static method describe(): String { return Store.user.describe(); }
      }";
    let (mut vm, old) = vm_with(old_src);
    vm.call_static_sync("Store", "init", &[]).unwrap();

    let new = jvolve_lang::compile(new_src).unwrap();
    let mut update = Update::prepare(&old, &new, "v131_").unwrap();

    // The Figure 3 customization.
    update.set_transformers_source(
        "class JvolveTransformers {
           static method jvolve_class_User(): void { }
           static method jvolve_object_User(to: User, from: v131_User): void {
             to.username = from.username;
             var len: int = from.forwardAddresses.length;
             to.forwardAddresses = new EmailAddress[len];
             var i: int = 0;
             while (i < len) {
               var parts: String[] = Str.split(from.forwardAddresses[i], \"@\");
               to.forwardAddresses[i] = new EmailAddress(parts[0], parts[1]);
               i = i + 1;
             }
           }
         }",
    );

    let stats = apply(&mut vm, &update, &quick_opts()).unwrap();
    assert_eq!(stats.objects_transformed, 1, "one User instance");
    assert!(stats.gc_copied_cells >= 2, "update GC duplicated the User instance");
    assert!(stats.gc_copied_words > stats.gc_copied_cells, "cells carry headers + fields");

    let v = vm.call_static_sync("Store", "describe", &[]).unwrap().unwrap();
    assert_eq!(
        vm.display_value(v),
        "admin alice@example.com bob@test.org",
        "old state was converted element-wise by the custom transformer"
    );
}

#[test]
fn wait_is_why_store_static_survives() {
    // Regression guard for the previous test: Store is a class update
    // too? No — Store's *bytecode* changed? Its source is identical in
    // both versions, so it must NOT be a class update, and its static
    // must survive untouched without a transformer.
    let old_src = "
      class A { field x: int; }
      class Store {
        static field n: int;
        static method init(): void { Store.n = 77; }
      }";
    let new_src = "
      class A { field x: int; field y: int; }
      class Store {
        static field n: int;
        static method init(): void { Store.n = 77; }
      }";
    let (mut vm, old) = vm_with(old_src);
    vm.call_static_sync("Store", "init", &[]).unwrap();
    let new = jvolve_lang::compile(new_src).unwrap();
    let update = Update::prepare(&old, &new, "v1_").unwrap();
    apply(&mut vm, &update, &quick_opts()).unwrap();
    assert_eq!(vm.read_static("Store", "n"), Value::Int(77));
}

#[test]
fn default_transformer_preserves_unchanged_fields() {
    let old_src = "
      class Item {
        field name: String; field price: int;
        ctor(n: String, p: int) { this.name = n; this.price = p; }
      }
      class Shop {
        static field first: Item;
        static method init(): void { Shop.first = new Item(\"apple\", 3); }
      }";
    let new_src = "
      class Item {
        field name: String; field price: int; field stock: int;
        ctor(n: String, p: int) { this.name = n; this.price = p; this.stock = 0; }
      }
      class Shop {
        static field first: Item;
        static method init(): void { Shop.first = new Item(\"apple\", 3); }
      }";
    let (mut vm, old) = vm_with(old_src);
    vm.call_static_sync("Shop", "init", &[]).unwrap();
    let new = jvolve_lang::compile(new_src).unwrap();
    let update = Update::prepare(&old, &new, "v1_").unwrap();
    // Default transformers only — no customization.
    apply(&mut vm, &update, &quick_opts()).unwrap();

    let Value::Ref(item) = vm.read_static("Shop", "first") else { panic!() };
    assert_eq!(vm.display_value(vm.read_field(item, "name")), "apple");
    assert_eq!(vm.read_field(item, "price"), Value::Int(3));
    assert_eq!(vm.read_field(item, "stock"), Value::Int(0), "new field defaults to 0");
}

#[test]
fn update_waits_for_restricted_method_to_leave_stack() {
    // A changed method is running when the update is requested: the
    // driver must install a return barrier, wait, then apply.
    let src_v1 = "
      class Main {
        static field progress: int;
        static method work(): void {
          var i: int = 0;
          while (i < 30000) { i = i + 1; }
          Main.progress = i;
        }
        static method tag(): int { return 1; }
        static method main(): void {
          Main.work();
          Sys.printInt(Main.tag());
        }
      }";
    let src_v2 = src_v1.replace("return 1;", "return 2;").replace("i < 30000", "i < 30001");
    let (mut vm, old) = vm_with(src_v1);
    let new = jvolve_lang::compile(&src_v2).unwrap();
    vm.spawn("Main", "main").unwrap();
    // Run until work() is on stack.
    let mut cfg_hit = false;
    for _ in 0..50 {
        vm.step_slice();
        if vm.threads().any(|t| t.frames.len() == 2) {
            cfg_hit = true;
            break;
        }
    }
    assert!(cfg_hit);

    let update = Update::prepare(&old, &new, "v1_").unwrap();
    let stats = apply(&mut vm, &update, &quick_opts()).unwrap();
    assert!(stats.slices_waited > 0, "had to wait for work() to return");
    assert!(stats.barriers_installed > 0, "a return barrier was used");

    assert!(vm.run_to_completion(100_000));
    // tag() ran AFTER the update, so the new version executed.
    assert_eq!(vm.output(), ["2"]);
}

#[test]
fn update_times_out_on_always_running_method() {
    // The paper's two unsupported updates: the changed method contains an
    // infinite loop that is always on stack (Jetty 5.1.3 acceptSocket,
    // JavaEmailServer 1.3 processing loops).
    let src_v1 = "
      class Server {
        static method serve(): void {
          while (true) { Sys.yieldNow(); }
        }
      }";
    let src_v2 = src_v1.replace("Sys.yieldNow();", "Sys.yieldNow(); Sys.yieldNow();");
    let (mut vm, old) = vm_with(src_v1);
    vm.spawn("Server", "serve").unwrap();
    vm.run_slices(5);

    let new = jvolve_lang::compile(&src_v2).unwrap();
    let update = Update::prepare(&old, &new, "v1_").unwrap();
    let opts = ApplyOptions { timeout_slices: 200, ..ApplyOptions::default() };
    let err = apply(&mut vm, &update, &opts).unwrap_err();
    let UpdateError::Timeout { blocking, .. } = err else {
        panic!("expected timeout, got {err}");
    };
    assert!(blocking.iter().any(|b| b.contains("serve")), "{blocking:?}");

    // The VM still runs the old version and barriers are cleared.
    assert!(vm.threads().all(|t| t.frames.iter().all(|f| !f.return_barrier)));
    vm.run_slices(5);
}

#[test]
fn category_2_methods_get_osr_when_on_stack() {
    // Main.spin() references class A (reads a field in its loop). A gains
    // a field, so spin is category-2. spin never returns until done, but
    // it is base-compiled, so OSR lifts the restriction.
    let src_v1 = "
      class A {
        field x: int;
        ctor(x: int) { this.x = x; }
      }
      class Main {
        static field result: int;
        static method spin(a: A): void {
          var i: int = 0;
          var acc: int = 0;
          while (i < 60000) { acc = acc + a.x; i = i + 1; }
          Main.result = acc;
        }
        static method main(): void { Main.spin(new A(1)); }
      }";
    // New version: field added BEFORE x (shifting its offset), and an
    // unrelated method body tweak elsewhere to make the update non-empty
    // beyond A.
    let src_v2 = "
      class A {
        field pad: int;
        field x: int;
        ctor(x: int) { this.pad = 0; this.x = x; }
      }
      class Main {
        static field result: int;
        static method spin(a: A): void {
          var i: int = 0;
          var acc: int = 0;
          while (i < 60000) { acc = acc + a.x; i = i + 1; }
          Main.result = acc;
        }
        static method main(): void { Main.spin(new A(1)); }
      }";
    let mut vm = Vm::new(VmConfig { quantum: 500, enable_opt: false, ..VmConfig::small() });
    let old = jvolve_lang::compile(src_v1).unwrap();
    vm.load_classes(&old).unwrap();
    vm.spawn("Main", "main").unwrap();
    for _ in 0..5 {
        vm.step_slice();
    }
    assert!(
        vm.threads().any(|t| t.frames.len() >= 2),
        "spin() should be running"
    );

    let new = jvolve_lang::compile(src_v2).unwrap();
    let update = Update::prepare(&old, &new, "v1_").unwrap();
    assert!(
        update.spec.indirect_methods.contains(&MethodRef::new("Main", "spin")),
        "spin must be category-2: {:?}",
        update.spec.indirect_methods
    );
    let stats = apply(&mut vm, &update, &quick_opts()).unwrap();
    assert!(stats.osr_replacements > 0, "OSR should have replaced spin's frame");

    assert!(vm.run_to_completion(1_000_000));
    // spin kept reading a.x correctly across the layout change.
    assert_eq!(vm.read_static("Main", "result"), Value::Int(60_000));
}

#[test]
fn without_osr_category_2_update_times_out() {
    // Ablation: same scenario as above but OSR disabled — the update
    // cannot be applied while spin runs.
    let src_v1 = "
      class A { field x: int; ctor(x: int) { this.x = x; } }
      class Main {
        static method spin(a: A): int {
          var i: int = 0;
          var acc: int = 0;
          while (i < 1000000) { acc = acc + a.x; i = i + 1; }
          return acc;
        }
        static method main(): void { Sys.printInt(Main.spin(new A(1))); }
      }";
    let src_v2 = src_v1.replace("field x: int; ctor", "field pad: int; field x: int; ctor");
    let mut vm = Vm::new(VmConfig { quantum: 500, enable_opt: false, ..VmConfig::small() });
    let old = jvolve_lang::compile(src_v1).unwrap();
    vm.load_classes(&old).unwrap();
    vm.spawn("Main", "main").unwrap();
    for _ in 0..5 {
        vm.step_slice();
    }

    let new = jvolve_lang::compile(&src_v2).unwrap();
    let update = Update::prepare(&old, &new, "v1_").unwrap();
    let opts = ApplyOptions { timeout_slices: 100, use_osr: false, ..ApplyOptions::default() };
    let err = apply(&mut vm, &update, &opts).unwrap_err();
    assert!(matches!(err, UpdateError::Timeout { .. }), "{err}");
}

#[test]
fn blacklisted_method_blocks_update() {
    // Paper §3.2's handle/process/cleanup version-consistency example:
    // the user restricts an otherwise-unchanged method.
    let src_v1 = "
      class H {
        static method handle(): void {
          var i: int = 0;
          while (i < 50000) { i = i + 1; }
        }
        static method tweak(): int { return 1; }
      }";
    let src_v2 = src_v1.replace("return 1;", "return 2;");
    let (mut vm, old) = vm_with(src_v1);
    vm.spawn("H", "handle").unwrap();
    vm.step_slice();

    let new = jvolve_lang::compile(&src_v2).unwrap();
    let mut update = Update::prepare(&old, &new, "v1_").unwrap();
    update.blacklist([MethodRef::new("H", "handle")]);
    let opts = ApplyOptions { timeout_slices: 30, ..ApplyOptions::default() };
    let err = apply(&mut vm, &update, &opts).unwrap_err();
    let UpdateError::Timeout { blocking, .. } = err else { panic!("{err}") };
    assert!(blocking.iter().any(|b| b.contains("handle")));
}

#[test]
fn hierarchy_update_propagates_to_subclass_instances() {
    // Deleting a parent field: subclass instances must be transformed too
    // (paper §2.2).
    let src_v1 = "
      class P { field a: int; field stale: int; ctor() { this.a = 10; this.stale = 99; } }
      class C extends P { field c: int; ctor() { super(); this.c = 30; } }
      class Keep {
        static field obj: C;
        static method init(): void { Keep.obj = new C(); }
      }";
    let src_v2 = "
      class P { field a: int; ctor() { this.a = 10; } }
      class C extends P { field c: int; ctor() { super(); this.c = 30; } }
      class Keep {
        static field obj: C;
        static method init(): void { Keep.obj = new C(); }
      }";
    let (mut vm, old) = vm_with(src_v1);
    vm.call_static_sync("Keep", "init", &[]).unwrap();
    let new = jvolve_lang::compile(src_v2).unwrap();
    let update = Update::prepare(&old, &new, "v1_").unwrap();
    let stats = apply(&mut vm, &update, &quick_opts()).unwrap();
    assert_eq!(stats.objects_transformed, 1);

    let Value::Ref(obj) = vm.read_static("Keep", "obj") else { panic!() };
    assert_eq!(vm.read_field(obj, "a"), Value::Int(10), "inherited field survived");
    assert_eq!(vm.read_field(obj, "c"), Value::Int(30), "own field survived");
    // The new layout has exactly two fields.
    let class = vm.heap().class_of(obj);
    assert_eq!(vm.registry().class(class).layout.len(), 2);
}

#[test]
fn successive_updates_compose() {
    let v1 = "class K { static field n: int;
               static method get(): int { return K.n; }
               static method set(v: int): void { K.n = v; } }";
    let v2 = "class K { static field n: int;
               static method get(): int { return K.n + 100; }
               static method set(v: int): void { K.n = v; } }";
    let v3 = "class K { static field n: int; static field extra: int;
               static method get(): int { return K.n + K.extra + 1000; }
               static method set(v: int): void { K.n = v; } }";
    let c1 = jvolve_lang::compile(v1).unwrap();
    let c2 = jvolve_lang::compile(v2).unwrap();
    let c3 = jvolve_lang::compile(v3).unwrap();

    let mut vm = Vm::new(VmConfig::small());
    vm.load_classes(&c1).unwrap();
    vm.call_static_sync("K", "set", &[Value::Int(5)]).unwrap();

    let u12 = Update::prepare(&c1, &c2, "v1_").unwrap();
    apply(&mut vm, &u12, &quick_opts()).unwrap();
    assert_eq!(vm.call_static_sync("K", "get", &[]).unwrap(), Some(Value::Int(105)));

    let u23 = Update::prepare(&c2, &c3, "v2_").unwrap();
    apply(&mut vm, &u23, &quick_opts()).unwrap();
    assert_eq!(
        vm.call_static_sync("K", "get", &[]).unwrap(),
        Some(Value::Int(1005)),
        "static state survived two updates (extra defaults to 0)"
    );
    assert_eq!(vm.update_count(), 2);
}

#[test]
fn method_deletion_and_addition() {
    let v1 = "class M {
                method old(): int { return 1; }
                method stable(): int { return this.old(); }
              }
              class D { static field m: M; static method init(): void { D.m = new M(); }
                        static method poke(): int { return D.m.stable(); } }";
    let v2 = "class M {
                method fresh(): int { return 2; }
                method stable(): int { return this.fresh(); }
              }
              class D { static field m: M; static method init(): void { D.m = new M(); }
                        static method poke(): int { return D.m.stable(); } }";
    let (mut vm, old) = vm_with(v1);
    vm.call_static_sync("D", "init", &[]).unwrap();
    assert_eq!(vm.call_static_sync("D", "poke", &[]).unwrap(), Some(Value::Int(1)));

    let new = jvolve_lang::compile(v2).unwrap();
    let update = Update::prepare(&old, &new, "v1_").unwrap();
    apply(&mut vm, &update, &quick_opts()).unwrap();
    assert_eq!(
        vm.call_static_sync("D", "poke", &[]).unwrap(),
        Some(Value::Int(2)),
        "existing instance dispatches through the new TIB"
    );
}

#[test]
fn update_with_live_threads_and_heap_churn() {
    // Update while several guest threads allocate heavily: the update GC
    // and the transformers must coexist with real heap pressure.
    let v1 = "
      class Rec { field id: int; ctor(id: int) { this.id = id; } }
      class Worker {
        ctor() { }
        method run(): void {
          var i: int = 0;
          while (i < 3000) {
            var r: Rec = new Rec(i);
            i = i + 1;
          }
        }
      }
      class Main {
        static field keep: Rec;
        static method main(): void {
          Main.keep = new Rec(42);
          var i: int = 0;
          while (i < 3) { Sys.spawn(new Worker()); i = i + 1; }
        }
      }";
    let v2 = v1.replace(
        "class Rec { field id: int; ctor(id: int) { this.id = id; } }",
        "class Rec { field id: int; field tag: int; ctor(id: int) { this.id = id; this.tag = 7; } }",
    );
    let mut vm =
        Vm::new(VmConfig { semispace_words: 64 * 1024, quantum: 200, ..VmConfig::default() });
    let old = jvolve_lang::compile(v1).unwrap();
    vm.load_classes(&old).unwrap();
    vm.spawn("Main", "main").unwrap();
    vm.run_slices(10);

    let new = jvolve_lang::compile(&v2).unwrap();
    let update = Update::prepare(&old, &new, "v1_").unwrap();
    let stats = apply(&mut vm, &update, &ApplyOptions { timeout_slices: 50_000, ..Default::default() })
        .unwrap();
    assert!(stats.objects_transformed >= 1);

    assert!(vm.run_to_completion(1_000_000));
    let Value::Ref(keep) = vm.read_static("Main", "keep") else { panic!() };
    assert_eq!(vm.read_field(keep, "id"), Value::Int(42));
    assert_eq!(vm.read_field(keep, "tag"), Value::Int(0), "default transformer zeroes new field");
}

#[test]
fn force_transform_allows_dereferencing_untransformed_referents() {
    // A transformer needs from.next's NEW version to be initialized before
    // reading it: Dsu.forceTransform makes that safe (paper §3.4).
    let v1 = "
      class Node {
        field value: int; field next: Node;
        ctor(v: int, n: Node) { this.value = v; this.next = n; }
      }
      class L {
        static field head: Node;
        static method init(): void { L.head = new Node(1, new Node(2, null)); }
      }";
    let v2 = "
      class Node {
        field value: int; field nextValue: int; field next: Node;
        ctor(v: int, n: Node) { this.value = v; this.next = n; this.nextValue = 0; }
      }
      class L {
        static field head: Node;
        static method init(): void { L.head = new Node(1, new Node(2, null)); }
      }";
    let (mut vm, old) = vm_with(v1);
    vm.call_static_sync("L", "init", &[]).unwrap();

    let new = jvolve_lang::compile(v2).unwrap();
    let mut update = Update::prepare(&old, &new, "v1_").unwrap();
    // Custom transformer caches next.value into nextValue — requires the
    // referent to be transformed first.
    update.set_transformers_source(
        "class JvolveTransformers {
           static method jvolve_class_Node(): void { }
           static method jvolve_object_Node(to: Node, from: v1_Node): void {
             to.value = from.value;
             to.next = from.next;
             if (from.next != null) {
               Dsu.forceTransform(from.next);
               to.nextValue = from.next.value;
             }
           }
         }",
    );
    apply(&mut vm, &update, &quick_opts()).unwrap();

    let Value::Ref(head) = vm.read_static("L", "head") else { panic!() };
    assert_eq!(vm.read_field(head, "value"), Value::Int(1));
    assert_eq!(vm.read_field(head, "nextValue"), Value::Int(2));
}

#[test]
fn transformer_cycle_is_detected_and_aborts() {
    // Two mutually-referencing nodes whose transformers force each other:
    // an ill-defined transformer set; the VM must detect the cycle
    // (paper §3.4: "we detect cycles with a simple check, and abort").
    let v1 = "
      class Pair {
        field other: Pair; field v: int;
        ctor() { this.v = 1; }
      }
      class G {
        static field a: Pair;
        static method init(): void {
          G.a = new Pair();
          var b: Pair = new Pair();
          G.a.other = b;
          b.other = G.a;
        }
      }";
    let v2 = v1.replace("field v: int;", "field v: int; field w: int;");
    let (mut vm, old) = vm_with(v1);
    vm.call_static_sync("G", "init", &[]).unwrap();

    let new = jvolve_lang::compile(&v2).unwrap();
    let mut update = Update::prepare(&old, &new, "v1_").unwrap();
    update.set_transformers_source(
        "class JvolveTransformers {
           static method jvolve_class_Pair(): void { }
           static method jvolve_object_Pair(to: Pair, from: v1_Pair): void {
             to.v = from.v;
             to.other = from.other;
             if (from.other != null) {
               Dsu.forceTransform(from.other);
               to.w = from.other.v;
             }
           }
         }",
    );
    let err = apply(&mut vm, &update, &quick_opts()).unwrap_err();
    assert!(
        matches!(err, UpdateError::Vm(jvolve_vm::VmError::TransformerCycle)),
        "{err}"
    );
}

#[test]
fn steady_state_code_is_untouched_when_unrelated() {
    // Updating class B must not invalidate compiled code that never
    // mentions B — the zero-steady-state-overhead story.
    let v1 = "class Hot { static method f(x: int): int { return x * 2; } }
              class B { field b: int; }";
    let v2 = "class Hot { static method f(x: int): int { return x * 2; } }
              class B { field b: int; field b2: int; }";
    let (mut vm, old) = vm_with(v1);
    // Warm Hot.f.
    for _ in 0..5 {
        vm.call_static_sync("Hot", "f", &[Value::Int(1)]).unwrap();
    }
    let hot = vm.registry().class_id(&"Hot".into()).unwrap();
    let f = vm.registry().find_method(hot, "f").unwrap();
    let invalidations_before = vm.registry().method(f).invalidations;

    let new = jvolve_lang::compile(v2).unwrap();
    let update = Update::prepare(&old, &new, "v1_").unwrap();
    apply(&mut vm, &update, &quick_opts()).unwrap();

    assert_eq!(
        vm.registry().method(f).invalidations,
        invalidations_before,
        "Hot.f does not reference B and must keep its compiled code"
    );
}

#[test]
fn update_spec_json_written_and_read_back() {
    let v1 = "class A { field x: int; }";
    let v2 = "class A { field x: int; field y: int; }";
    let old = jvolve_lang::compile(v1).unwrap();
    let new = jvolve_lang::compile(v2).unwrap();
    let update = Update::prepare(&old, &new, "v1_").unwrap();
    let json = update.spec.to_json();
    let parsed = jvolve::UpdateSpec::from_json(&json).unwrap();
    assert_eq!(parsed, update.spec);
}

#[test]
fn migration_falls_back_to_barriers_when_pc_is_unmappable() {
    // The running method's hot region is DELETED in the new version: the
    // frame's pc cannot map, so even with migration enabled the driver
    // must wait for the frame to return (barrier path).
    let src_v1 = "
      class W {
        static method work(): void {
          var i: int = 0;
          while (i < 30000) { i = i + 1; }
        }
        static method main(): void {
          W.work();
          Sys.printInt(9);
        }
      }";
    let src_v2 = "
      class W {
        static method work(): void {
          Sys.yieldNow();
        }
        static method main(): void {
          W.work();
          Sys.printInt(9);
        }
      }";
    let (mut vm, old) = vm_with(src_v1);
    vm.spawn("W", "main").unwrap();
    for _ in 0..50 {
        vm.step_slice();
        if vm.threads().any(|t| t.frames.len() == 2) {
            break;
        }
    }
    let new = jvolve_lang::compile(src_v2).unwrap();
    let update = Update::prepare(&old, &new, "v1_").unwrap();
    let opts = ApplyOptions {
        timeout_slices: 2_000,
        migrate_active_methods: true,
        ..ApplyOptions::default()
    };
    let stats = apply(&mut vm, &update, &opts).unwrap();
    assert_eq!(stats.active_migrations, 0, "the loop body is gone; no migration possible");
    assert!(stats.barriers_installed > 0, "fell back to the return-barrier path");
    assert!(vm.run_to_completion(100_000));
    assert_eq!(vm.output(), ["9"]);
}

#[test]
fn total_time_is_wall_clock_and_tracks_phase_sum() {
    let old_src = "
      class A { field x: int; ctor() { this.x = 3; } }
      class Store {
        static field a: A;
        static method init(): void { Store.a = new A(); }
      }";
    let new_src = "
      class A { field x: int; field y: int; ctor() { this.x = 3; } }
      class Store {
        static field a: A;
        static method init(): void { Store.a = new A(); }
      }";
    let (mut vm, old) = vm_with(old_src);
    vm.call_static_sync("Store", "init", &[]).unwrap();
    let new = jvolve_lang::compile(new_src).unwrap();
    let update = Update::prepare(&old, &new, "v1_").unwrap();
    let stats = apply(&mut vm, &update, &quick_opts()).unwrap();

    // total_time spans the whole apply, so it bounds the disjoint phases;
    // the remainder is untimed bookkeeping and must stay negligible.
    assert!(
        stats.total_time >= stats.phase_sum(),
        "total {:?} < phase sum {:?}",
        stats.total_time,
        stats.phase_sum()
    );
    let gap = stats.total_time - stats.phase_sum();
    assert!(
        gap < std::time::Duration::from_millis(100),
        "untimed bookkeeping gap too large: {gap:?}"
    );
}
