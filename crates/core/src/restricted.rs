//! Restricted-method analysis and DSU safe-point checking (paper §3.2).
//!
//! A DSU safe point is a VM safe point at which no thread's stack contains
//! a *restricted* method:
//!
//! 1. methods whose bytecode changed (method-body updates, plus every
//!    method of a class-updated class);
//! 2. methods whose bytecode is unchanged but whose compiled
//!    representation may change (*indirect* methods) — these don't block
//!    the update if their frame is base-compiled, because OSR can replace
//!    them in place;
//! 3. user-blacklisted methods (version-consistency, e.g. the paper's
//!    `handle`/`process`/`cleanup` example);
//!
//! plus any method that **inlined** one of the above.

use std::collections::BTreeSet;

use jvolve_classfile::{ClassSet, MethodRef};
use jvolve_vm::{ThreadId, Vm};

use crate::spec::UpdateSpec;

/// Which restriction category a method falls into.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Category {
    /// Bytecode changed (paper category 1).
    Changed,
    /// Compiled representation stale (paper category 2).
    Indirect,
    /// User-blacklisted (paper category 3).
    Blacklisted,
    /// Inlined a restricted method.
    InlinedRestricted,
}

/// The restricted sets, as symbolic method references (pre-update names).
#[derive(Clone, Debug, Default)]
pub struct RestrictedSet {
    /// Category 1.
    pub changed: BTreeSet<MethodRef>,
    /// Category 2.
    pub indirect: BTreeSet<MethodRef>,
    /// Category 3.
    pub blacklisted: BTreeSet<MethodRef>,
}

impl RestrictedSet {
    /// Computes the restricted sets for `spec`. `old_set` supplies the
    /// method lists of class-updated classes (all of whose methods are
    /// replaced by the update).
    pub fn compute(spec: &UpdateSpec, old_set: &ClassSet, blacklist: &[MethodRef]) -> Self {
        let mut changed = BTreeSet::new();
        for delta in &spec.changed {
            match delta.kind {
                crate::spec::ClassChangeKind::ClassUpdate => {
                    if let Some(class) = old_set.get(&delta.name) {
                        for m in &class.methods {
                            changed.insert(MethodRef::new(delta.name.clone(), m.name.clone()));
                        }
                    }
                }
                crate::spec::ClassChangeKind::MethodBodyOnly => {
                    for m in &delta.methods_body_changed {
                        changed.insert(MethodRef::new(delta.name.clone(), m.clone()));
                    }
                }
            }
        }
        // Methods of deleted classes may not keep running either.
        for name in &spec.deleted_classes {
            if let Some(class) = old_set.get(name) {
                for m in &class.methods {
                    changed.insert(MethodRef::new(name.clone(), m.name.clone()));
                }
            }
        }
        RestrictedSet {
            changed,
            indirect: spec.indirect_methods.iter().cloned().collect(),
            blacklisted: blacklist.iter().cloned().collect(),
        }
    }

    /// Category of `m`, if restricted at all (ignoring inlining).
    pub fn category(&self, m: &MethodRef) -> Option<Category> {
        if self.changed.contains(m) {
            Some(Category::Changed)
        } else if self.blacklisted.contains(m) {
            Some(Category::Blacklisted)
        } else if self.indirect.contains(m) {
            Some(Category::Indirect)
        } else {
            None
        }
    }

    /// Total number of restricted methods.
    pub fn len(&self) -> usize {
        self.changed.len() + self.indirect.len() + self.blacklisted.len()
    }

    /// Whether no method is restricted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One frame that prevents (or conditions) the update.
#[derive(Clone, Debug)]
pub struct FrameFinding {
    /// Owning thread.
    pub thread: ThreadId,
    /// Frame index (0 = outermost).
    pub frame: usize,
    /// The method on stack.
    pub method: MethodRef,
    /// Why it matters.
    pub category: Category,
}

/// Result of scanning all thread stacks at a VM safe point.
#[derive(Clone, Debug, Default)]
pub struct StackCheck {
    /// Frames that block the update (categories 1/3, opt-compiled
    /// category 2, and inliners of restricted methods).
    pub blocking: Vec<FrameFinding>,
    /// Base-compiled category-2 frames that OSR can replace (paper §3.2
    /// "lifting category (2) restrictions").
    pub osr_candidates: Vec<FrameFinding>,
}

impl StackCheck {
    /// Whether a DSU safe point has been reached (possibly requiring the
    /// listed OSR replacements before installing the update).
    pub fn safe(&self) -> bool {
        self.blocking.is_empty()
    }
}

/// Scans every live thread's stack against the restricted sets. Must be
/// called between scheduler slices (i.e. at a VM safe point).
pub fn check_stacks(vm: &Vm, restricted: &RestrictedSet) -> StackCheck {
    let mut check = StackCheck::default();
    check_stacks_into(vm, restricted, &mut check);
    check
}

/// [`check_stacks`] into a caller-owned scratch buffer: the update
/// controller polls once per scheduler slice while waiting for a DSU safe
/// point, and reusing the finding vectors keeps the poll free of
/// per-iteration container construction.
pub fn check_stacks_into(vm: &Vm, restricted: &RestrictedSet, check: &mut StackCheck) {
    check.blocking.clear();
    check.osr_candidates.clear();
    let registry = vm.registry();

    for thread in vm.threads() {
        if !thread.is_live() {
            continue;
        }
        for (i, frame) in thread.frames.iter().enumerate() {
            let info = registry.method(frame.method);
            let class_name = registry.class(info.class).name.clone();
            let mref = MethodRef::new(class_name, info.name.clone());

            let finding = |category| FrameFinding {
                thread: thread.id,
                frame: i,
                method: mref.clone(),
                category,
            };

            match restricted.category(&mref) {
                Some(Category::Indirect) => {
                    if frame.compiled.osr_capable() {
                        check.osr_candidates.push(finding(Category::Indirect));
                    } else {
                        check.blocking.push(finding(Category::Indirect));
                    }
                }
                Some(cat) => check.blocking.push(finding(cat)),
                None => {
                    // Inlining check: does this frame's compiled code embed
                    // a restricted method's body?
                    let inlined_restricted = frame.compiled.inlined.iter().any(|&mid| {
                        let ii = registry.method(mid);
                        let iname = registry.class(ii.class).name.clone();
                        let imref = MethodRef::new(iname, ii.name.clone());
                        restricted.category(&imref).is_some()
                    });
                    if inlined_restricted {
                        check.blocking.push(finding(Category::InlinedRestricted));
                    }
                }
            }
        }
    }
}

/// The topmost blocking frame per thread, where return barriers go
/// (paper §3.2: "installs a return barrier on the topmost restricted
/// method of each thread").
pub fn barrier_targets(check: &StackCheck) -> Vec<(ThreadId, usize)> {
    let mut targets = Vec::new();
    barrier_targets_into(check, &mut targets);
    targets
}

/// [`barrier_targets`] into a caller-owned scratch buffer (no per-poll
/// map construction; the result is sorted by thread id).
pub fn barrier_targets_into(check: &StackCheck, out: &mut Vec<(ThreadId, usize)>) {
    out.clear();
    for f in &check.blocking {
        match out.iter_mut().find(|(t, _)| *t == f.thread) {
            Some((_, frame)) => *frame = (*frame).max(f.frame),
            None => out.push((f.thread, f.frame)),
        }
    }
    out.sort_unstable_by_key(|&(t, _)| t.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::prepare_spec;
    use jvolve_classfile::ClassName;

    fn compile_set(src: &str) -> ClassSet {
        let mut set: ClassSet = jvolve_lang::compile(src).unwrap().into_iter().collect();
        for b in jvolve_lang::builtins::builtin_classes() {
            set.insert(b);
        }
        set
    }

    #[test]
    fn class_update_restricts_all_methods() {
        let old = compile_set(
            "class A { field x: int; method f(): void { } method g(): void { } }",
        );
        let new = compile_set(
            "class A { field x: int; field y: int; method f(): void { } method g(): void { } }",
        );
        let spec = prepare_spec(&old, &new, "v1_");
        let r = RestrictedSet::compute(&spec, &old, &[]);
        assert!(r.changed.contains(&MethodRef::new("A", "f")));
        assert!(r.changed.contains(&MethodRef::new("A", "g")));
        // Constructors count too.
        assert!(r.changed.contains(&MethodRef::new("A", "<init>")));
    }

    #[test]
    fn body_update_restricts_only_changed_methods() {
        let old = compile_set("class A { method f(): int { return 1; } method g(): void { } }");
        let new = compile_set("class A { method f(): int { return 2; } method g(): void { } }");
        let spec = prepare_spec(&old, &new, "v1_");
        let r = RestrictedSet::compute(&spec, &old, &[]);
        assert_eq!(r.category(&MethodRef::new("A", "f")), Some(Category::Changed));
        assert_eq!(r.category(&MethodRef::new("A", "g")), None);
    }

    #[test]
    fn blacklist_is_category_3() {
        let old = compile_set("class A { method handle(): void { } }");
        let spec = prepare_spec(&old, &old, "v1_");
        let bl = vec![MethodRef::new("A", "handle")];
        let r = RestrictedSet::compute(&spec, &old, &bl);
        assert_eq!(r.category(&bl[0]), Some(Category::Blacklisted));
    }

    #[test]
    fn stack_check_flags_running_restricted_method() {
        use jvolve_vm::{Vm, VmConfig};
        let src = "class Main {
            static method spin(): int {
              var i: int = 0;
              while (i < 100000) { i = i + 1; }
              return i;
            }
            static method main(): void { Sys.printInt(Main.spin()); }
          }";
        let mut vm = Vm::new(VmConfig { quantum: 10, enable_opt: false, ..VmConfig::small() });
        vm.load_source(src).unwrap();
        vm.spawn("Main", "main").unwrap();
        // Get spin() onto the stack.
        for _ in 0..20 {
            vm.step_slice();
        }

        // Pretend spin's body changed.
        let old = compile_set(src);
        let new = compile_set(&src.replace("i + 1", "i + 1 + 0"));
        let spec = prepare_spec(&old, &new, "v1_");
        let r = RestrictedSet::compute(&spec, &old, &[]);
        let check = check_stacks(&vm, &r);
        assert!(!check.safe(), "spin() is on stack and restricted");
        let targets = barrier_targets(&check);
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].1, 1, "barrier goes on the topmost restricted frame");
    }

    #[test]
    fn stack_check_allows_unrelated_updates() {
        use jvolve_vm::{Vm, VmConfig};
        let mut vm = Vm::new(VmConfig { quantum: 10, ..VmConfig::small() });
        vm.load_source(
            "class Main {
               static method main(): void {
                 var i: int = 0;
                 while (i < 100000) { i = i + 1; }
               }
             }
             class Unrelated { method f(): int { return 1; } }",
        )
        .unwrap();
        vm.spawn("Main", "main").unwrap();
        vm.step_slice();

        let mut r = RestrictedSet::default();
        r.changed.insert(MethodRef::new(ClassName::from("Unrelated"), "f"));
        let check = check_stacks(&vm, &r);
        assert!(check.safe());
    }
}
