//! Release-summary reporting: the rows of the paper's Tables 2–4.
//!
//! Each table row summarizes one release transition: classes added /
//! deleted / changed, changed methods (body-only `x` vs signature-changed
//! `y`, printed `x/y` as in the paper), methods added / deleted, and
//! fields added / deleted.

use std::fmt;

use crate::spec::UpdateSpec;

/// Counts for one release transition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReleaseSummary {
    /// Version label, e.g. "5.1.3".
    pub version: String,
    /// Classes added.
    pub classes_added: usize,
    /// Classes deleted.
    pub classes_deleted: usize,
    /// Classes changed (either kind).
    pub classes_changed: usize,
    /// Methods whose body changed (the paper's `x` in `x/y`).
    pub methods_body_changed: usize,
    /// Methods whose signature changed (the paper's `y`).
    pub methods_sig_changed: usize,
    /// Methods added.
    pub methods_added: usize,
    /// Methods deleted.
    pub methods_deleted: usize,
    /// Fields (instance + static) added.
    pub fields_added: usize,
    /// Fields deleted.
    pub fields_deleted: usize,
    /// Fields whose type or modifiers changed.
    pub fields_changed: usize,
}

impl ReleaseSummary {
    /// Summarizes a spec under a version label.
    pub fn from_spec(version: impl Into<String>, spec: &UpdateSpec) -> Self {
        let mut s = ReleaseSummary { version: version.into(), ..Default::default() };
        s.classes_added = spec.added_classes.len();
        s.classes_deleted = spec.deleted_classes.len();
        // `inherited_only` deltas are bookkeeping, not developer changes;
        // the paper's tables count actually-edited classes.
        s.classes_changed = spec.changed.iter().filter(|d| !d.inherited_only).count();
        for d in &spec.changed {
            s.methods_body_changed += d.methods_body_changed.len();
            s.methods_sig_changed += d.methods_sig_changed.len();
            s.methods_added += d.methods_added.len();
            s.methods_deleted += d.methods_deleted.len();
            s.fields_added += d.fields_added.len() + d.statics_added.len();
            s.fields_deleted += d.fields_deleted.len() + d.statics_deleted.len();
            s.fields_changed += d.fields_changed.len() + d.statics_changed.len();
        }
        s
    }

    /// The paper's `x/y` notation for changed methods.
    pub fn methods_changed_xy(&self) -> String {
        format!("{}/{}", self.methods_body_changed, self.methods_sig_changed)
    }

    /// Header matching [`fmt::Display`]'s row layout.
    pub fn table_header() -> String {
        format!(
            "{:<9} {:>5} {:>5} {:>5} | {:>5} {:>5} {:>7} | {:>5} {:>5}",
            "Ver.", "cls+", "cls-", "chg", "m+", "m-", "m chg", "f+", "f-"
        )
    }
}

impl fmt::Display for ReleaseSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<9} {:>5} {:>5} {:>5} | {:>5} {:>5} {:>7} | {:>5} {:>5}",
            self.version,
            self.classes_added,
            self.classes_deleted,
            self.classes_changed,
            self.methods_added,
            self.methods_deleted,
            self.methods_changed_xy(),
            self.fields_added,
            self.fields_deleted,
        )
    }
}

/// Outcome of attempting one release's dynamic update, for the §4 summary
/// ("JVolve can support 20 of the 22 updates").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// Applied at a DSU safe point.
    Applied {
        /// Whether OSR was needed to lift category-2 restrictions.
        used_osr: bool,
        /// Return barriers installed while waiting.
        barriers: usize,
    },
    /// Timed out: some restricted method never left the stacks.
    TimedOut {
        /// The offending methods.
        blocking: Vec<String>,
    },
    /// Failed for another reason.
    Failed {
        /// Description.
        reason: String,
    },
}

impl UpdateOutcome {
    /// Whether the update was applied.
    pub fn supported(&self) -> bool {
        matches!(self, UpdateOutcome::Applied { .. })
    }
}

impl fmt::Display for UpdateOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateOutcome::Applied { used_osr, barriers } => {
                write!(f, "applied")?;
                if *used_osr {
                    write!(f, " (OSR)")?;
                }
                if *barriers > 0 {
                    write!(f, " ({barriers} barriers)")?;
                }
                Ok(())
            }
            UpdateOutcome::TimedOut { blocking } => {
                write!(f, "UNSUPPORTED: always on stack: {}", blocking.join(", "))
            }
            UpdateOutcome::Failed { reason } => write!(f, "failed: {reason}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClassChangeKind, ClassDelta};
    use jvolve_classfile::ClassName;

    #[test]
    fn summary_counts_and_xy_format() {
        let mut delta = ClassDelta::empty(ClassName::from("User"), ClassChangeKind::ClassUpdate);
        delta.methods_body_changed = vec!["loadUser".into()];
        delta.methods_sig_changed = vec!["setForwardedAddresses".into()];
        delta.fields_changed = vec!["forwardAddresses".into()];
        let mut inherited =
            ClassDelta::empty(ClassName::from("Sub"), ClassChangeKind::ClassUpdate);
        inherited.inherited_only = true;
        let spec = UpdateSpec {
            version_prefix: "v131_".into(),
            changed: vec![delta, inherited],
            added_classes: vec![ClassName::from("EmailAddress")],
            deleted_classes: vec![],
            indirect_methods: vec![],
        };
        let s = ReleaseSummary::from_spec("1.3.2", &spec);
        assert_eq!(s.classes_added, 1);
        assert_eq!(s.classes_changed, 1, "inherited-only deltas not counted");
        assert_eq!(s.methods_changed_xy(), "1/1");
        assert_eq!(s.fields_changed, 1);
        let row = s.to_string();
        assert!(row.starts_with("1.3.2"), "{row}");
    }

    #[test]
    fn outcome_display() {
        let ok = UpdateOutcome::Applied { used_osr: true, barriers: 2 };
        assert!(ok.supported());
        assert!(ok.to_string().contains("OSR"));
        let bad = UpdateOutcome::TimedOut { blocking: vec!["S.run".into()] };
        assert!(!bad.supported());
        assert!(bad.to_string().contains("S.run"));
    }
}
