//! On-disk update bundles — the artifact the UPT hands to the VM operator.
//!
//! The paper's workflow (Figure 1) has the Update Preparation Tool write
//! an update specification plus transformer sources to disk; the operator
//! later signals a running VM with those files. This module is that file
//! format: a directory holding
//!
//! ```text
//! bundle/
//!   spec.json         # UpdateSpec (see crate::spec)
//!   transformers.mj   # the JvolveTransformers MJ source
//!   old/<Class>.mjc   # codec-encoded old-version class files
//!   new/<Class>.mjc   # codec-encoded new-version class files
//! ```
//!
//! Builtin classes are never written — both sides re-insert them on load,
//! exactly as [`Update::prepare`] does. Loading re-verifies the payload
//! and cross-checks the spec against a fresh diff
//! ([`Update::from_parts`]), so a bundle is safe to accept from the same
//! trust boundary as any other update payload.

use std::fmt;
use std::fs;
use std::path::Path;

use jvolve_classfile::{codec, ClassFile};

use crate::driver::Update;
use crate::error::UpdateError;
use crate::spec::UpdateSpec;

/// File name of the serialized [`UpdateSpec`].
pub const SPEC_FILE: &str = "spec.json";
/// File name of the transformer class source.
pub const TRANSFORMERS_FILE: &str = "transformers.mj";
/// Subdirectory holding the old-version class payloads.
pub const OLD_DIR: &str = "old";
/// Subdirectory holding the new-version class payloads.
pub const NEW_DIR: &str = "new";
/// Extension of encoded class-file payloads.
pub const CLASS_EXT: &str = "mjc";

/// Why a bundle could not be written or read back.
#[derive(Clone, Debug)]
pub enum BundleError {
    /// A filesystem operation failed.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error, rendered.
        error: String,
    },
    /// A class payload failed to decode.
    Decode {
        /// The offending payload file.
        path: String,
        /// The codec's error, rendered.
        error: String,
    },
    /// `spec.json` failed to parse.
    Spec {
        /// The parse error.
        error: String,
    },
    /// The decoded parts do not form a valid update (verification failure,
    /// spec/payload mismatch, empty diff).
    Update(UpdateError),
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::Io { path, error } => write!(f, "{path}: {error}"),
            BundleError::Decode { path, error } => write!(f, "{path}: bad class payload: {error}"),
            BundleError::Spec { error } => write!(f, "spec.json: {error}"),
            BundleError::Update(e) => write!(f, "bundle does not form a valid update: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

fn io_err(path: &Path, error: std::io::Error) -> BundleError {
    BundleError::Io { path: path.display().to_string(), error: error.to_string() }
}

/// Writes `update` as a bundle directory at `dir` (created if needed).
/// Builtin classes are skipped on both sides.
///
/// # Errors
///
/// Returns [`BundleError::Io`] on any filesystem failure.
pub fn emit(dir: &Path, update: &Update) -> Result<(), BundleError> {
    for (sub, set) in [(OLD_DIR, &update.old_classes), (NEW_DIR, &update.new_classes)] {
        let side = dir.join(sub);
        fs::create_dir_all(&side).map_err(|e| io_err(&side, e))?;
        for class in set.iter() {
            if jvolve_lang::builtins::is_builtin(class.name.as_str()) {
                continue;
            }
            let path = side.join(format!("{}.{CLASS_EXT}", class.name));
            fs::write(&path, codec::encode(class)).map_err(|e| io_err(&path, e))?;
        }
    }
    let spec_path = dir.join(SPEC_FILE);
    fs::write(&spec_path, update.spec.to_json()).map_err(|e| io_err(&spec_path, e))?;
    let t_path = dir.join(TRANSFORMERS_FILE);
    fs::write(&t_path, &update.transformers_source).map_err(|e| io_err(&t_path, e))?;
    Ok(())
}

/// Reads one payload side (`old/` or `new/`) in sorted file order.
fn load_side(dir: &Path) -> Result<Vec<ClassFile>, BundleError> {
    let mut paths: Vec<_> = fs::read_dir(dir)
        .map_err(|e| io_err(dir, e))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == CLASS_EXT))
        .collect();
    paths.sort();
    let mut classes = Vec::with_capacity(paths.len());
    for path in paths {
        let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
        let class = codec::decode(&bytes).map_err(|e| BundleError::Decode {
            path: path.display().to_string(),
            error: e.to_string(),
        })?;
        classes.push(class);
    }
    Ok(classes)
}

/// Loads a bundle directory back into a prepared [`Update`], re-verifying
/// the payload and cross-checking the spec ([`Update::from_parts`]).
///
/// # Errors
///
/// Any [`BundleError`] variant, depending on which part is broken.
pub fn load(dir: &Path) -> Result<Update, BundleError> {
    let spec_path = dir.join(SPEC_FILE);
    let spec_json = fs::read_to_string(&spec_path).map_err(|e| io_err(&spec_path, e))?;
    let spec = UpdateSpec::from_json(&spec_json).map_err(|error| BundleError::Spec { error })?;
    let t_path = dir.join(TRANSFORMERS_FILE);
    let transformers = fs::read_to_string(&t_path).map_err(|e| io_err(&t_path, e))?;
    let old = load_side(&dir.join(OLD_DIR))?;
    let new = load_side(&dir.join(NEW_DIR))?;
    Update::from_parts(spec, &old, &new, transformers).map_err(BundleError::Update)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_update() -> Update {
        let old = jvolve_lang::compile(
            "class User { field name: String; }
             class Main { static method main(): void { } }",
        )
        .unwrap();
        let new = jvolve_lang::compile(
            "class User { field name: String; field age: int; }
             class Main { static method main(): void { } }",
        )
        .unwrap();
        Update::prepare(&old, &new, "v1_").unwrap()
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("jvolve-bundle-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn emit_and_load_roundtrip() {
        let update = sample_update();
        let dir = temp_dir("roundtrip");
        emit(&dir, &update).unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.spec, update.spec);
        assert_eq!(loaded.transformers_source, update.transformers_source);
        assert_eq!(loaded.old_classes.len(), update.old_classes.len());
        assert_eq!(loaded.new_classes.len(), update.new_classes.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn builtins_are_not_written() {
        let update = sample_update();
        let dir = temp_dir("nobuiltins");
        emit(&dir, &update).unwrap();
        for sub in [OLD_DIR, NEW_DIR] {
            assert!(!dir.join(sub).join("Sys.mjc").exists());
            assert!(dir.join(sub).join("User.mjc").exists());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_spec_is_rejected() {
        let update = sample_update();
        let dir = temp_dir("stalespec");
        emit(&dir, &update).unwrap();
        // Corrupt the spec: claim an extra added class.
        let mut spec = update.spec.clone();
        spec.added_classes.push(jvolve_classfile::ClassName::from("Ghost"));
        fs::write(dir.join(SPEC_FILE), spec.to_json()).unwrap();
        let err = load(&dir).unwrap_err();
        assert!(
            matches!(err, BundleError::Update(UpdateError::BadSpec { .. })),
            "got {err:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_payload_is_a_typed_error() {
        let update = sample_update();
        let dir = temp_dir("corrupt");
        emit(&dir, &update).unwrap();
        fs::write(dir.join(NEW_DIR).join("User.mjc"), b"not a classfile").unwrap();
        let err = load(&dir).unwrap_err();
        assert!(matches!(err, BundleError::Decode { .. }), "got {err:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
