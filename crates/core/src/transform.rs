//! Transformer generation: old-class stubs and default class/object
//! transformers (paper §2.3).
//!
//! For every class update the UPT emits:
//!
//! * an **old-class stub** — the old class renamed with the version prefix
//!   and reduced to field definitions ("all methods have been removed
//!   since the updated program may not call them");
//! * a **default object transformer** `jvolve_object_X(to, from)` that
//!   copies fields whose name and type are unchanged and leaves the rest
//!   at their default values (fresh objects are zero/null-initialized);
//! * a **default class transformer** `jvolve_class_X()` that does the same
//!   for static fields.
//!
//! The paper distinguishes transformers by Java overloading; MJ has no
//! overloading, so the names are mangled with the class name instead (see
//! DESIGN.md). Developers may customize the generated source before the
//! update is applied, exactly as in the paper's workflow (Figure 1).
//!
//! Object transformers run serially over the update GC's log, which both
//! the serial and parallel collectors emit in one canonical order (sorted
//! by the old object's from-space address — see DESIGN.md §5 "Parallel
//! update-GC"). Transformers with order-dependent effects on shared
//! state therefore behave identically for any `VmConfig::gc_threads`.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use jvolve_classfile::{ClassFile, ClassName, ClassResolver, ClassSet, FieldDef, Type};

use crate::spec::{ClassChangeKind, UpdateSpec};

/// Name of the generated transformer class.
pub const TRANSFORMERS_CLASS: &str = "JvolveTransformers";

/// Name of the object transformer method for `class`.
pub fn object_transformer_name(class: &ClassName) -> String {
    format!("jvolve_object_{class}")
}

/// Name of the class (static-field) transformer method for `class`.
pub fn class_transformer_name(class: &ClassName) -> String {
    format!("jvolve_class_{class}")
}

/// Maps an old field type to its stub-world spelling: references to
/// classes that survive keep their name (old objects' fields point at
/// *transformed* referents after the update GC, paper §3.4); references to
/// deleted classes also keep their name because deleted classes remain
/// loaded (renamed only when updated).
fn stub_type(ty: &Type) -> Type {
    ty.clone()
}

/// Builds the fields-only stub for an updated class (renamed with the
/// version prefix) or for a deleted class (same name).
pub fn old_class_stub(spec: &UpdateSpec, old_set: &ClassSet, class: &ClassFile) -> ClassFile {
    let updated: BTreeSet<&ClassName> = spec
        .changed
        .iter()
        .filter(|d| d.kind == ClassChangeKind::ClassUpdate)
        .map(|d| &d.name)
        .collect();
    let rename = |name: &ClassName| -> ClassName {
        if updated.contains(name) {
            spec.old_name(name)
        } else {
            name.clone()
        }
    };

    let name = rename(&class.name);
    let superclass = class.superclass.as_ref().map(|s| {
        // Keep the chain meaningful inside the stub world so inherited
        // fields resolve during transformer compilation.
        if old_set.get(s).is_some() {
            rename(s)
        } else {
            s.clone()
        }
    });
    ClassFile {
        name,
        superclass,
        fields: class
            .fields
            .iter()
            .map(|f| FieldDef { ty: stub_type(&f.ty), ..f.clone() })
            .collect(),
        static_fields: class
            .static_fields
            .iter()
            .map(|f| FieldDef { ty: stub_type(&f.ty), ..f.clone() })
            .collect(),
        methods: Vec::new(),
        flags: class.flags,
    }
}

/// All stubs needed to compile transformers: one per class update (with
/// the version prefix) and one per deleted class (fields only).
pub fn all_stubs(spec: &UpdateSpec, old_set: &ClassSet) -> Vec<ClassFile> {
    let mut out = Vec::new();
    for delta in spec.class_updates() {
        if let Some(class) = old_set.get(&delta.name) {
            out.push(old_class_stub(spec, old_set, class));
        }
    }
    for name in &spec.deleted_classes {
        if let Some(class) = old_set.get(name) {
            out.push(old_class_stub(spec, old_set, class));
        }
    }
    out
}

/// The extern class set against which the transformer class compiles:
/// every class of the new version plus the old stubs.
pub fn transformer_externs(
    spec: &UpdateSpec,
    old_set: &ClassSet,
    new_set: &ClassSet,
) -> ClassSet {
    let mut externs = ClassSet::new();
    for c in new_set.iter() {
        if !jvolve_lang::builtins::is_builtin(c.name.as_str()) {
            externs.insert(c.clone());
        }
    }
    for stub in all_stubs(spec, old_set) {
        externs.insert(stub);
    }
    externs
}

/// Flattened instance fields of `class` (inherited first), resolved
/// against `set`.
fn flattened_fields<'a>(set: &'a ClassSet, class: &ClassName) -> Vec<&'a FieldDef> {
    let mut chain: Vec<&ClassFile> = Vec::new();
    let mut cur = Some(class.clone());
    while let Some(name) = cur {
        let Some(c) = set.resolve(&name) else { break };
        chain.push(c);
        cur = c.superclass.clone();
    }
    chain.reverse();
    chain.iter().flat_map(|c| c.fields.iter()).collect()
}

/// The generated transformer pair for one class update: the
/// `jvolve_class_X` and `jvolve_object_X` method definitions, as MJ source
/// ready to be placed inside the `JvolveTransformers` class body. The UPT
/// emits one of these per class update so user-supplied transformers can
/// replace the defaults *per class* instead of rewriting the whole file.
#[derive(Clone, Debug)]
pub struct TransformerMethods {
    /// The updated class these methods transform.
    pub class: ClassName,
    /// MJ source of the two method definitions (class-body level).
    pub source: String,
}

/// Generates the default transformer method pair for every class update in
/// `spec`, one entry per class, in spec order.
pub fn default_transformer_methods(
    spec: &UpdateSpec,
    old_set: &ClassSet,
    new_set: &ClassSet,
) -> Vec<TransformerMethods> {
    let mut out = Vec::new();
    for delta in spec.class_updates() {
        let name = &delta.name;
        let old_name = spec.old_name(name);
        let Some(old_class) = old_set.get(name) else { continue };
        let Some(new_class) = new_set.get(name) else { continue };
        let mut src = String::new();

        // Class transformer: copy same-name same-type statics declared on
        // this class.
        let _ = writeln!(src, "  static method {}(): void {{", class_transformer_name(name));
        for f in &new_class.static_fields {
            if old_class.find_static_field(&f.name).is_some_and(|of| of.ty == f.ty) {
                let _ = writeln!(src, "    {name}.{f} = {old_name}.{f};", f = f.name);
            }
        }
        src.push_str("  }\n");

        // Object transformer: copy same-name same-type instance fields
        // over the full flattened layout.
        let _ = writeln!(
            src,
            "  static method {}(to: {name}, from: {old_name}): void {{",
            object_transformer_name(name)
        );
        let old_fields = flattened_fields(old_set, name);
        for f in flattened_fields(new_set, name) {
            if old_fields.iter().any(|of| of.name == f.name && of.ty == f.ty) {
                let _ = writeln!(src, "    to.{f} = from.{f};", f = f.name);
            }
        }
        src.push_str("  }\n");
        out.push(TransformerMethods { class: name.clone(), source: src });
    }
    out
}

/// Assembles per-class transformer method sources into the complete
/// `JvolveTransformers` class source.
pub fn assemble_transformers_source<'a>(parts: impl IntoIterator<Item = &'a str>) -> String {
    let mut src = String::from("class JvolveTransformers {\n");
    for part in parts {
        src.push_str(part);
    }
    src.push_str("}\n");
    src
}

/// Generates the default `JvolveTransformers` MJ source for `spec`.
///
/// The developer may edit the returned source (e.g. the paper's Figure 3
/// customization for `User`) before the update is applied — or, through
/// the UPT, override individual classes' methods while keeping the
/// generated defaults for the rest (see
/// [`default_transformer_methods`]).
pub fn default_transformers_source(
    spec: &UpdateSpec,
    old_set: &ClassSet,
    new_set: &ClassSet,
) -> String {
    let parts = default_transformer_methods(spec, old_set, new_set);
    assemble_transformers_source(parts.iter().map(|p| p.source.as_str()))
}

/// Compiles a transformer source against the update's externs, in
/// access-override mode (the paper's modified-compiler path, §2.3).
///
/// # Errors
///
/// Propagates compile errors (e.g. from a hand-edited transformer).
pub fn compile_transformers(
    source: &str,
    spec: &UpdateSpec,
    old_set: &ClassSet,
    new_set: &ClassSet,
) -> Result<Vec<ClassFile>, jvolve_lang::CompileError> {
    let externs = transformer_externs(spec, old_set, new_set);
    jvolve_lang::compile_with(
        source,
        &jvolve_lang::CompileOptions { externs, override_access: true },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::prepare_spec;

    fn compile_set(src: &str) -> ClassSet {
        let mut set: ClassSet = jvolve_lang::compile(src).unwrap().into_iter().collect();
        for b in jvolve_lang::builtins::builtin_classes() {
            set.insert(b);
        }
        set
    }

    #[test]
    fn stub_is_fields_only_and_renamed() {
        let old = compile_set("class User { private final field name: String; method f(): void { } }");
        let new = compile_set("class User { private final field name: String; field age: int; }");
        let spec = prepare_spec(&old, &new, "v1_");
        let stubs = all_stubs(&spec, &old);
        assert_eq!(stubs.len(), 1);
        let stub = &stubs[0];
        assert_eq!(stub.name.as_str(), "v1_User");
        assert!(stub.methods.is_empty(), "all methods removed (paper §2.3)");
        assert_eq!(stub.fields.len(), 1);
    }

    #[test]
    fn default_object_transformer_copies_matching_fields() {
        let old = compile_set("class User { field name: String; field age: int; }");
        let new = compile_set(
            "class User { field name: String; field age: int; field score: int; }",
        );
        let spec = prepare_spec(&old, &new, "v1_");
        let src = default_transformers_source(&spec, &old, &new);
        assert!(src.contains("to.name = from.name;"), "{src}");
        assert!(src.contains("to.age = from.age;"), "{src}");
        assert!(!src.contains("to.score"), "new field stays default: {src}");
        // And it compiles in transformer mode.
        compile_transformers(&src, &spec, &old, &new).unwrap();
    }

    #[test]
    fn default_transformer_skips_type_changed_fields() {
        // The paper's default for forwardAddresses (type changed) is null.
        let old = compile_set("class User { field forwardAddresses: String[]; }");
        let new = compile_set(
            "class EmailAddress { }
             class User { field forwardAddresses: EmailAddress[]; }",
        );
        let spec = prepare_spec(&old, &new, "v131_");
        let src = default_transformers_source(&spec, &old, &new);
        assert!(!src.contains("forwardAddresses"), "{src}");
        compile_transformers(&src, &spec, &old, &new).unwrap();
    }

    #[test]
    fn class_transformer_copies_statics() {
        let old = compile_set("class C { static field count: int; }");
        let new = compile_set("class C { static field count: int; static field extra: int; }");
        let spec = prepare_spec(&old, &new, "v1_");
        let src = default_transformers_source(&spec, &old, &new);
        assert!(src.contains("C.count = v1_C.count;"), "{src}");
        assert!(!src.contains("extra"), "{src}");
        compile_transformers(&src, &spec, &old, &new).unwrap();
    }

    #[test]
    fn inherited_fields_are_copied_for_tainted_subclasses() {
        let old = compile_set(
            "class P { field a: int; field gone: int; }
             class C extends P { field c: int; }",
        );
        let new = compile_set(
            "class P { field a: int; }
             class C extends P { field c: int; }",
        );
        let spec = prepare_spec(&old, &new, "v1_");
        let src = default_transformers_source(&spec, &old, &new);
        // C's transformer copies both its own and the surviving inherited
        // field.
        assert!(src.contains("jvolve_object_C"), "{src}");
        assert!(src.contains("to.a = from.a;"), "{src}");
        assert!(src.contains("to.c = from.c;"), "{src}");
        assert!(!src.contains("to.gone"), "{src}");
        compile_transformers(&src, &spec, &old, &new).unwrap();
    }

    #[test]
    fn custom_transformer_like_paper_figure_3_compiles() {
        // Figure 3: the programmer replaces the default null with an
        // element-wise conversion of String[] to EmailAddress[].
        let old = compile_set(
            "class User {
               private final field username: String;
               private field forwardAddresses: String[];
             }",
        );
        let new = compile_set(
            "class EmailAddress {
               field username: String; field domain: String;
               ctor(u: String, d: String) { this.username = u; this.domain = d; }
             }
             class User {
               private final field username: String;
               private field forwardAddresses: EmailAddress[];
             }",
        );
        let spec = prepare_spec(&old, &new, "v131_");
        let custom = "
          class JvolveTransformers {
            static method jvolve_class_User(): void { }
            static method jvolve_object_User(to: User, from: v131_User): void {
              to.username = from.username;
              var len: int = from.forwardAddresses.length;
              to.forwardAddresses = new EmailAddress[len];
              var i: int = 0;
              while (i < len) {
                var parts: String[] = Str.split(from.forwardAddresses[i], \"@\");
                to.forwardAddresses[i] = new EmailAddress(parts[0], parts[1]);
                i = i + 1;
              }
            }
          }";
        let classes = compile_transformers(custom, &spec, &old, &new).unwrap();
        assert!(classes[0].flags.access_override);
    }

    #[test]
    fn transformer_names_are_stable() {
        let name = ClassName::from("User");
        assert_eq!(object_transformer_name(&name), "jvolve_object_User");
        assert_eq!(class_transformer_name(&name), "jvolve_class_User");
    }
}
