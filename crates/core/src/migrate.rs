//! Active-method migration: the paper's §3.5 future work, implemented.
//!
//! "We plan to further extend OSR to support changed methods on the
//! stack, similar to what is provided by UpStare … the user would map the
//! yield point at the end of the old loop to the yield point at the end
//! of the new loop."
//!
//! Instead of a hand-written map, this module *derives* the program-point
//! correspondence by aligning the old and new bytecode with a longest-
//! common-subsequence over instruction tokens (branch targets are ignored
//! during matching — the new code carries its own correct targets). An
//! on-stack pc that lands on a matched instruction migrates to the
//! matched position; a pc on a deleted instruction is unmappable and the
//! method stays restricted, falling back to the paper's return-barrier
//! path. Locals carry over by slot and the operand stack is preserved —
//! the analogue of UpStare's (identity) stack-frame transformer, asserted
//! by the developer when enabling [`migrate_active_methods`].
//!
//! Migration runs during install, before the update GC, and only touches
//! stack frames — so it is independent of `VmConfig::gc_threads`; the
//! parallel collector sees the already-migrated frames as roots exactly
//! as the serial one does.
//!
//! [`migrate_active_methods`]: crate::ApplyOptions::migrate_active_methods

use std::collections::HashMap;

use jvolve_classfile::bytecode::Instr;
use jvolve_classfile::{ClassSet, MethodRef};

/// A pc-level correspondence between two versions of a method body.
#[derive(Debug, Clone, Default)]
pub struct PcMap {
    map: HashMap<u32, u32>,
}

impl PcMap {
    /// The new-code pc corresponding to old-code `pc`, if the instruction
    /// survived the edit.
    pub fn lookup(&self, pc: u32) -> Option<u32> {
        self.map.get(&pc).copied()
    }

    /// Number of mapped program points.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing maps.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Token used for alignment: branches match by kind (their targets shift
/// whenever instructions are inserted or deleted); everything else must
/// match exactly.
fn tokens_match(a: &Instr, b: &Instr) -> bool {
    use Instr::*;
    match (a, b) {
        (Jump(_), Jump(_)) | (JumpIfTrue(_), JumpIfTrue(_)) | (JumpIfFalse(_), JumpIfFalse(_)) => {
            true
        }
        _ => a == b,
    }
}

/// Aligns two bodies with a longest common subsequence and returns the
/// old-pc → new-pc map over matched instructions.
pub fn align(old: &[Instr], new: &[Instr]) -> PcMap {
    let n = old.len();
    let m = new.len();
    // lcs[i][j] = LCS length of old[i..], new[j..].
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if tokens_match(&old[i], &new[j]) {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut map = HashMap::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if tokens_match(&old[i], &new[j]) && lcs[i][j] == lcs[i + 1][j + 1] + 1 {
            map.insert(i as u32, j as u32);
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    PcMap { map }
}

/// Computes the pc map for one method across the update, when migration
/// is possible at all: the method must exist in both versions with an
/// identical signature.
pub fn method_pc_map(old_set: &ClassSet, new_set: &ClassSet, method: &MethodRef) -> Option<PcMap> {
    let old_class = old_set.get(&method.class)?;
    let new_class = new_set.get(&method.class)?;
    let old_m = old_class.find_method(&method.method)?;
    let new_m = new_class.find_method(&method.method)?;
    if old_m.signature() != new_m.signature() {
        return None;
    }
    let old_code = old_m.code.as_ref()?;
    let new_code = new_m.code.as_ref()?;
    Some(align(&old_code.instrs, &new_code.instrs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvolve_classfile::ClassName;

    fn bodies(old_src: &str, new_src: &str, class: &str, method: &str) -> (Vec<Instr>, Vec<Instr>) {
        let take = |src: &str| {
            jvolve_lang::compile(src)
                .unwrap()
                .into_iter()
                .find(|c| c.name.as_str() == class)
                .unwrap()
                .find_method(method)
                .unwrap()
                .code
                .clone()
                .unwrap()
                .instrs
        };
        (take(old_src), take(new_src))
    }

    #[test]
    fn identity_alignment_maps_everything() {
        let src = "class A { static method f(n: int): int {
            var i: int = 0;
            while (i < n) { i = i + 1; }
            return i;
        } }";
        let (old, new) = bodies(src, src, "A", "f");
        let map = align(&old, &new);
        assert_eq!(map.len(), old.len());
        for pc in 0..old.len() as u32 {
            assert_eq!(map.lookup(pc), Some(pc));
        }
    }

    #[test]
    fn insertion_shifts_later_pcs() {
        let old_src = "class A { static field c: int;
          static method f(n: int): int {
            var i: int = 0;
            while (i < n) { i = i + 1; }
            return i;
        } }";
        let new_src = "class A { static field c: int;
          static method f(n: int): int {
            var i: int = 0;
            while (i < n) { A.c = A.c + 1; i = i + 1; }
            return i;
        } }";
        let (old, new) = bodies(old_src, new_src, "A", "f");
        let map = align(&old, &new);
        // Every old instruction survives the insertion.
        assert_eq!(map.len(), old.len());
        // The loop-head (pc of the condition's first instruction) is
        // matched, and later pcs shift right.
        let last_old = old.len() as u32 - 1;
        let last_new = new.len() as u32 - 1;
        assert_eq!(map.lookup(last_old), Some(last_new));
    }

    #[test]
    fn deleted_instructions_are_unmappable() {
        let old_src = "class A { static method f(x: int): int {
            var y: int = x * 3;
            var z: int = y + 7;
            return z;
        } }";
        let new_src = "class A { static method f(x: int): int {
            var z: int = x + 7;
            return z;
        } }";
        let (old, new) = bodies(old_src, new_src, "A", "f");
        let map = align(&old, &new);
        assert!(map.len() < old.len(), "some old pcs must be unmappable");
    }

    #[test]
    fn branch_targets_do_not_break_matching() {
        // An insertion before a loop changes the back-edge target; the
        // jump must still align by kind.
        let old_src = "class A { static method f(n: int): int {
            var acc: int = 0;
            var i: int = 0;
            while (i < n) { acc = acc + i; i = i + 1; }
            return acc;
        } }";
        let new_src = "class A { static method f(n: int): int {
            var acc: int = 100;
            var pad: int = acc * 2;
            var i: int = 0;
            while (i < n) { acc = acc + i; i = i + 1; }
            return acc + pad;
        } }";
        let (old, new) = bodies(old_src, new_src, "A", "f");
        let map = align(&old, &new);
        // The back-edge jump of the loop aligns even though its target
        // moved.
        let old_jump = old
            .iter()
            .position(|i| matches!(i, Instr::Jump(t) if (*t as usize) < old.len()))
            .expect("old back edge") as u32;
        assert!(map.lookup(old_jump).is_some());
    }

    #[test]
    fn signature_change_prevents_migration() {
        let old = jvolve_lang::compile("class A { method f(x: int): void { } }").unwrap();
        let new = jvolve_lang::compile("class A { method f(x: int, y: int): void { } }").unwrap();
        let old_set: ClassSet = old.into_iter().collect();
        let new_set: ClassSet = new.into_iter().collect();
        let mref = MethodRef::new(ClassName::from("A"), "f");
        assert!(method_pc_map(&old_set, &new_set, &mref).is_none());
    }
}
