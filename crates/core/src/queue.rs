//! Serialized update queue: back-to-back and overlapping update arrivals.
//!
//! A release stream delivers updates faster than one can finish applying —
//! in particular, a new version can arrive while the previous update's
//! *lazy epoch is still draining* (the controller sits in
//! [`UpdatePhase::LazyMigrating`] with the read barrier armed and stale
//! objects outstanding). Starting a second controller there would race two
//! version prefixes over one heap, so the queue strictly serializes:
//! an update pushed while another is in flight waits, tagged with the
//! phase it arrived during, and starts only after the current controller
//! commits or aborts. Arrival order is preserved (FIFO).
//!
//! [`UpdateQueue::drain`] is the driving loop: it steps one controller at
//! a time and calls the embedder's `pump` whenever the guest may run
//! (safe-point wait, lazy epoch) — the pump serves requests and may push
//! further updates, which is exactly how the release-stream harness feeds
//! a 20-version chain through a single VM under load.

use std::collections::VecDeque;

use jvolve_vm::Vm;

use crate::controller::{StepProgress, UpdateController, UpdatePhase};
use crate::driver::{ApplyOptions, Update, UpdateStats};
use crate::error::UpdateError;

/// One entry awaiting its turn.
struct PendingUpdate {
    ticket: u64,
    update: Update,
    /// Phase the in-flight update was in when this one arrived, if any.
    enqueued_during: Option<UpdatePhase>,
}

/// The result of one queued update after [`UpdateQueue::drain`] ran it.
#[derive(Clone, Debug)]
pub struct QueuedOutcome {
    /// Arrival order (monotonic, starting at 0).
    pub ticket: u64,
    /// The update's version prefix, for reporting.
    pub version_prefix: String,
    /// Phase of the then-in-flight update when this one arrived: `None`
    /// for back-to-back arrivals on an idle queue,
    /// `Some(UpdatePhase::LazyMigrating)` when it arrived mid-drain.
    pub enqueued_during: Option<UpdatePhase>,
    /// Commit stats or the typed abort error.
    pub result: Result<UpdateStats, UpdateError>,
}

impl QueuedOutcome {
    /// Whether this update committed.
    pub fn committed(&self) -> bool {
        self.result.is_ok()
    }
}

/// FIFO queue of prepared updates, applied strictly one at a time.
#[derive(Default)]
pub struct UpdateQueue {
    pending: VecDeque<PendingUpdate>,
    next_ticket: u64,
    /// Phase of the update currently being applied by [`UpdateQueue::drain`].
    in_flight: Option<UpdatePhase>,
}

impl UpdateQueue {
    /// An empty queue.
    pub fn new() -> Self {
        UpdateQueue::default()
    }

    /// Enqueues a prepared update, recording the phase of the in-flight
    /// update it arrived during (if any). Returns the arrival ticket.
    pub fn push(&mut self, update: Update) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.pending.push_back(PendingUpdate {
            ticket,
            update,
            enqueued_during: self.in_flight,
        });
        ticket
    }

    /// Number of updates waiting (not counting one currently applying).
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no updates are waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Phase of the update currently being applied by
    /// [`UpdateQueue::drain`], or `None` when the queue is idle. A pump
    /// checks this to detect that the system is mid-drain
    /// (`Some(UpdatePhase::LazyMigrating)`) before pushing the next
    /// release.
    pub fn in_flight_phase(&self) -> Option<UpdatePhase> {
        self.in_flight
    }

    /// Applies every queued update in arrival order, strictly serialized:
    /// the next controller is constructed only after the previous one
    /// commits or aborts — even when the previous update's lazy epoch is
    /// still draining, a newly pushed update waits its turn.
    ///
    /// `pump` runs whenever the guest may run (the controller is waiting
    /// for a safe point or draining a lazy epoch); it receives the queue
    /// so it can push further updates mid-flight. Updates pushed by the
    /// pump are drained in the same call. An aborted update does not stop
    /// the queue: later entries still run (against the rolled-back
    /// version) and record their own outcomes.
    pub fn drain(
        &mut self,
        vm: &mut Vm,
        opts: &ApplyOptions,
        mut pump: impl FnMut(&mut Vm, &mut UpdateQueue),
    ) -> Vec<QueuedOutcome> {
        let mut outcomes = Vec::new();
        while let Some(entry) = self.pending.pop_front() {
            let PendingUpdate { ticket, update, enqueued_during } = entry;
            self.in_flight = Some(UpdatePhase::Pending);
            let mut controller = UpdateController::new(&update, opts.clone());
            let result = loop {
                match controller.step(vm) {
                    StepProgress::Pending(phase) => {
                        self.in_flight = Some(phase);
                        if matches!(
                            phase,
                            UpdatePhase::WaitingForSafePoint | UpdatePhase::LazyMigrating
                        ) {
                            pump(vm, self);
                        }
                    }
                    StepProgress::Committed => break Ok(controller.stats().clone()),
                    StepProgress::Aborted => {
                        break Err(controller.error().cloned().unwrap_or_else(|| {
                            UpdateError::Compile("aborted without error".into())
                        }))
                    }
                }
            };
            self.in_flight = None;
            outcomes.push(QueuedOutcome {
                ticket,
                version_prefix: update.spec.version_prefix.clone(),
                enqueued_during,
                result,
            });
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvolve_vm::VmConfig;

    fn counter_source(bump: i64, extra_field: bool) -> String {
        format!(
            "class Counter {{
               static field hits: int;
               {extra}
               static method bump(): int {{
                 Counter.hits = Counter.hits + {bump};
                 return Counter.hits;
               }}
             }}",
            extra = if extra_field { "static field seen: int;" } else { "" },
        )
    }

    fn prepare(old: &str, new: &str, prefix: &str) -> Update {
        let old = jvolve_lang::compile(old).unwrap();
        let new = jvolve_lang::compile(new).unwrap();
        Update::prepare(&old, &new, prefix).unwrap()
    }

    #[test]
    fn back_to_back_updates_apply_in_fifo_order() {
        let v1 = counter_source(1, false);
        let v2 = counter_source(2, false);
        let v3 = counter_source(3, true);
        let mut vm = Vm::new(VmConfig::small());
        vm.load_classes(&jvolve_lang::compile(&v1).unwrap()).unwrap();

        let mut queue = UpdateQueue::new();
        queue.push(prepare(&v1, &v2, "v1_"));
        queue.push(prepare(&v2, &v3, "v2_"));
        assert_eq!(queue.len(), 2);

        let outcomes = queue.drain(&mut vm, &ApplyOptions::default(), |_, _| {});
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(QueuedOutcome::committed));
        assert_eq!(outcomes[0].version_prefix, "v1_");
        assert_eq!(outcomes[1].version_prefix, "v2_");
        assert_eq!(outcomes[0].enqueued_during, None);
        assert_eq!(outcomes[1].enqueued_during, None);
        // The final version's code runs.
        let got = vm.call_static_sync("Counter", "bump", &[]).unwrap();
        assert_eq!(got, Some(jvolve_vm::Value::Int(3)));
    }

    #[test]
    fn update_pushed_mid_flight_waits_for_commit() {
        // Lazy migration keeps the first update in LazyMigrating while the
        // heap drains; the second update arrives there and must wait.
        let v1 = "class Box { field n: int; ctor(n: int) { this.n = n; } }
                  class Main {
                    static field boxes: Box[];
                    static method main(): void {
                      Main.boxes = new Box[64];
                      var i: int = 0;
                      while (i < 64) { Main.boxes[i] = new Box(i); i = i + 1; }
                      while (true) { Sys.yieldNow(); }
                    }
                  }";
        let v2 = v1.replace("field n: int;", "field n: int; field pad: int;");
        let v3 = v2.replace("this.n = n;", "this.n = n + 0;");

        let mut vm = Vm::new(VmConfig { lazy_migration: true, ..VmConfig::small() });
        vm.load_classes(&jvolve_lang::compile(v1).unwrap()).unwrap();
        vm.spawn("Main", "main").unwrap();
        vm.run_slices(50);

        let mut queue = UpdateQueue::new();
        queue.push(prepare(v1, &v2, "v1_"));
        let next = prepare(&v2, &v3, "v2_");
        let mut next = Some(next);
        let outcomes = queue.drain(
            &mut vm,
            &ApplyOptions { lazy_scavenge_batch: 1, lazy_step_cells: 8, ..Default::default() },
            |vm, q| {
                vm.run_slices(1);
                if q.in_flight_phase() == Some(UpdatePhase::LazyMigrating) {
                    if let Some(u) = next.take() {
                        q.push(u);
                    }
                }
            },
        );
        assert_eq!(outcomes.len(), 2, "{outcomes:?}");
        assert!(outcomes.iter().all(QueuedOutcome::committed), "{outcomes:?}");
        assert_eq!(
            outcomes[1].enqueued_during,
            Some(UpdatePhase::LazyMigrating),
            "second update must have arrived while the first epoch drained"
        );
    }

    #[test]
    fn aborted_update_does_not_stop_the_queue() {
        let v1 = counter_source(1, false);
        let v2 = counter_source(2, false);
        let mut vm = Vm::new(VmConfig::small());
        vm.load_classes(&jvolve_lang::compile(&v1).unwrap()).unwrap();

        let mut queue = UpdateQueue::new();
        // First update carries a transformer source that fails to compile —
        // the controller rolls it back; the second still applies.
        let mut broken = prepare(&v1, &counter_source(9, true), "vX_");
        broken.set_transformers_source("class JvolveTransformers { nonsense");
        queue.push(broken);
        queue.push(prepare(&v1, &v2, "v1_"));
        let outcomes = queue.drain(&mut vm, &ApplyOptions::default(), |_, _| {});
        assert_eq!(outcomes.len(), 2);
        assert!(!outcomes[0].committed());
        assert!(outcomes[1].committed(), "{:?}", outcomes[1].result);
    }
}
