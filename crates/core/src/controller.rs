//! The resumable update controller: the paper's §3 protocol as an
//! explicit phase machine.
//!
//! [`crate::driver::apply`] used to be one straight-line function that
//! spun the VM synchronously until a safe point and treated any install
//! failure as "the VM is poisoned". The controller decomposes it into
//! states —
//!
//! ```text
//! Pending → WaitingForSafePoint → Installing → TransformingHeap
//!                 │      │              │              │
//!                 │      └── timeout ───┤              └──→ Committed
//!                 └──── (re-check) ─────┴──→ Aborted (rolled back)
//! ```
//!
//! — advanced one phase at a time by [`UpdateController::step`], so the
//! safe-point wait is *interleaved* with VM scheduling: the embedder (the
//! apps harness, a server loop) keeps draining requests between polls
//! instead of the driver freezing the world from the outside. A timeout
//! or an install failure runs a real **rollback** — un-rename old
//! classes, restore stripped methods, restore swapped bodies and OSR'd
//! frames, clear barriers, drop the half-loaded batch — leaving the VM
//! verifiably on the old version.
//!
//! Every transition emits a typed [`UpdateEvent`] through pluggable
//! [`UpdateEventSink`]s. The built-in default sink folds events into
//! [`UpdateStats`], so `table1`/`fig6`/`summary` are unchanged; a
//! [`JsonTraceSink`] serializes the trace (see `results/update_trace.json`).
//!
//! # Pause contract
//!
//! Guest slices may run between `step` calls **only while the controller
//! is waiting for a safe point or draining a lazy epoch** (the controller
//! re-checks stacks when entering `Installing` and falls back to waiting
//! if the safe point was lost). From `Installing` through `Committed` the
//! embedder must not run the VM: install + heap transformation are a
//! single pause, exactly the paper's stop-the-world step 4–5.
//!
//! With [`jvolve_vm::VmConfig::lazy_migration`] the pause ends early: the
//! `TransformingHeap` phase only arms the read barrier (one linear scan,
//! no copying) and runs class transformers, then the controller enters
//! `LazyMigrating`. In that phase the guest runs freely — stale objects
//! migrate on first touch through the barrier — while each `step` call
//! additionally scavenges a batch of untouched objects. When the worklist
//! drains, the controller disarms the barrier, collapses the forwarding
//! words with one ordinary collection, and commits.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use jvolve_classfile::{ClassName, MethodRef};
use jvolve_json::Json;
use jvolve_vm::compiled::CompiledMethod;
use jvolve_vm::{ClassId, ClassMethodsSnapshot, LazyStage, MethodId, RegistryMark, ThreadId, Vm};

use crate::driver::{ApplyOptions, Update, UpdateStats};
use crate::error::UpdateError;
use crate::migrate::method_pc_map;
use crate::restricted::{
    barrier_targets_into, check_stacks_into, Category, RestrictedSet, StackCheck,
};
use crate::transform::{
    class_transformer_name, compile_transformers, object_transformer_name, TRANSFORMERS_CLASS,
};

/// The controller's phases (the paper's §3 steps 3–5 plus terminals).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UpdatePhase {
    /// Constructed; nothing touched the VM yet.
    Pending,
    /// Polling thread stacks for a DSU safe point (paper step 3). One of
    /// the two phases (with [`UpdatePhase::LazyMigrating`]) during which
    /// the embedder may run guest slices between `step` calls.
    WaitingForSafePoint,
    /// Installing modified classes: renames, strips, loads, body swaps,
    /// invalidation, OSR (paper step 4).
    Installing,
    /// Update GC + class/object transformers (paper step 5). In lazy
    /// mode ([`jvolve_vm::VmConfig::lazy_migration`]) this phase is only
    /// the commit scan + class transformers; object transformation is
    /// deferred to [`UpdatePhase::LazyMigrating`].
    TransformingHeap,
    /// A lazy-migration epoch is draining: the read barrier migrates
    /// objects the guest touches, and each `step` call runs one scavenger
    /// batch over the rest. Like the safe-point wait, the embedder may
    /// run guest slices between `step` calls in this phase.
    LazyMigrating,
    /// The VM runs the new version.
    Committed,
    /// The update failed; if it failed before the heap transformation,
    /// the rollback left the VM on the old version.
    Aborted,
}

impl fmt::Display for UpdatePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UpdatePhase::Pending => "pending",
            UpdatePhase::WaitingForSafePoint => "waiting-for-safe-point",
            UpdatePhase::Installing => "installing",
            UpdatePhase::TransformingHeap => "transforming-heap",
            UpdatePhase::LazyMigrating => "lazy-migrating",
            UpdatePhase::Committed => "committed",
            UpdatePhase::Aborted => "aborted",
        })
    }
}

/// One typed event from the controller's structured event stream.
#[derive(Clone, Debug)]
pub enum UpdateEvent {
    /// A phase began (scheduler tick included for correlation).
    PhaseEntered {
        /// The phase.
        phase: UpdatePhase,
        /// VM scheduler tick at entry.
        tick: u64,
    },
    /// A phase ended; `elapsed` is controller time spent inside it.
    PhaseExited {
        /// The phase.
        phase: UpdatePhase,
        /// Accumulated in-phase time.
        elapsed: Duration,
    },
    /// One safe-point poll found blocking frames. Only constructed when a
    /// sink opts in via [`UpdateEventSink::wants_polls`] — the default
    /// polling path allocates nothing per iteration.
    SafePointPoll {
        /// Slices waited so far.
        slices_waited: u64,
        /// Methods still blocking, one entry per distinct method.
        blocking: Vec<String>,
        /// Base-compiled indirect frames OSR could replace.
        osr_candidates: usize,
        /// Return barriers installed so far.
        barriers: usize,
    },
    /// A DSU safe point was reached.
    SafePointReached {
        /// Slices waited.
        slices_waited: u64,
        /// Return barriers installed while waiting.
        barriers_installed: usize,
        /// OSR replacements planned for the install phase.
        osr_candidates: usize,
        /// Active-method migrations planned (§3.5 mode).
        planned_migrations: usize,
    },
    /// An old class version was renamed out of the way.
    ClassRenamed {
        /// Its pre-update name.
        class: ClassName,
        /// Its versioned name (e.g. `v131_User`).
        renamed_to: ClassName,
    },
    /// A batch of class files was loaded.
    ClassesLoaded {
        /// Classes in the batch.
        count: usize,
        /// Whether this was the generated transformers class.
        transformers: bool,
    },
    /// Method bodies were swapped in place for one class.
    MethodBodiesSwapped {
        /// The class.
        class: ClassName,
        /// Bodies swapped.
        count: usize,
    },
    /// Compiled methods were invalidated.
    MethodsInvalidated {
        /// Indirect (category-2) methods invalidated directly.
        direct: usize,
        /// Compiled inliners of restricted methods invalidated.
        inliners: usize,
    },
    /// On-stack frames were moved to fresh code.
    OsrApplied {
        /// Frames OSR-replaced in place.
        replaced: usize,
        /// Frames migrated to a changed method version (§3.5 mode).
        migrated: usize,
    },
    /// The update GC finished.
    GcCompleted {
        /// Cells copied (duplicated objects count twice).
        copied_cells: usize,
        /// Words copied, headers included.
        copied_words: usize,
        /// (old, new) pairs in the update log.
        objects_logged: usize,
    },
    /// Object transformers ran over the update log.
    TransformersRun {
        /// Objects transformed.
        objects_transformed: usize,
    },
    /// A lazy-migration epoch began: the read barrier is armed and the
    /// allocation watermark recorded (lazy mode only). Stale objects are
    /// not known yet — the SATB scan discovers them incrementally.
    LazyEpochBegun {
        /// Heap words below the watermark (what the SATB scan will
        /// cover).
        watermark_words: usize,
        /// The arm pause: `Vm::begin_lazy_migration` wall time, the
        /// entire in-pause heap cost of the lazy commit.
        arm: Duration,
    },
    /// One SATB discovery batch ran over the watermarked region (lazy
    /// mode only).
    LazyScanStep {
        /// Heap cells the batch stepped over.
        cells: usize,
        /// Stale objects discovered and queued.
        found: usize,
        /// Whether the scan reached the watermark.
        done: bool,
    },
    /// One scavenger batch ran over the lazy worklist (lazy mode only).
    LazyScavengeStep {
        /// Objects this batch transformed (barrier-migrated entries are
        /// skipped, not counted).
        transformed: usize,
        /// Worklist entries still pending after the batch.
        remaining: usize,
    },
    /// One forwarding-collapse batch ran (lazy mode only).
    LazyCollapseStep {
        /// Heap cells the batch swept.
        cells: usize,
        /// Reference slots rewritten through forwarding words.
        rewritten: usize,
        /// Whether the sweep reached the epoch's allocation horizon.
        done: bool,
    },
    /// The rollback ledger was replayed; the VM is on the old version.
    RolledBack {
        /// Why the update aborted.
        reason: String,
        /// Ledger entries undone.
        actions_undone: usize,
    },
    /// The update committed.
    Committed {
        /// Total controller time.
        wall: Duration,
    },
    /// The update aborted.
    Aborted {
        /// Why.
        reason: String,
        /// Whether a rollback restored the old version (`false` only for
        /// failures during heap transformation, where the paper too
        /// considers the VM lost).
        rolled_back: bool,
    },
}

/// A pluggable consumer of [`UpdateEvent`]s.
///
/// Sinks are `Send` so a controller (and the sinks wired into it) can be
/// owned by a shard's OS thread and forward events across a channel to a
/// fleet coordinator.
pub trait UpdateEventSink: Send {
    /// Receives one event.
    fn event(&mut self, event: &UpdateEvent);

    /// Opt-in to per-poll [`UpdateEvent::SafePointPoll`] events. The
    /// default is `false` so the safe-point polling hot path constructs
    /// no event payloads.
    fn wants_polls(&self) -> bool {
        false
    }
}

/// An in-memory sink: records every event (tests, benches).
#[derive(Default)]
pub struct MemorySink {
    /// The recorded stream, in emission order.
    pub events: Vec<UpdateEvent>,
    /// Whether to request per-poll events.
    pub record_polls: bool,
}

impl UpdateEventSink for MemorySink {
    fn event(&mut self, event: &UpdateEvent) {
        self.events.push(event.clone());
    }
    fn wants_polls(&self) -> bool {
        self.record_polls
    }
}

/// The trace document schema emitted by [`JsonTraceSink::to_json`].
/// `v2` wrapped the bare event array of `v1` in an object carrying the
/// migration `mode` ("eager" or "lazy"), so trace consumers can
/// distinguish the two commit protocols. `v3` adds a `shard_id` envelope
/// field identifying which fleet shard produced the trace; single-VM
/// runs emit `shard_id: 0`.
pub const TRACE_SCHEMA: &str = "jvolve-update-trace-v3";

/// A sink that serializes the event stream to JSON (via `jvolve-json`),
/// for `results/update_trace.json`. Consecutive safe-point polls with an
/// unchanged blocking set are collapsed so timeouts don't produce
/// multi-thousand-entry traces.
#[derive(Default)]
pub struct JsonTraceSink {
    events: Vec<Json>,
    last_blocking: Option<Vec<String>>,
    saw_lazy: bool,
    shard_id: u64,
}

impl JsonTraceSink {
    /// Creates an empty trace sink for a single-VM run (`shard_id: 0`).
    pub fn new() -> Self {
        JsonTraceSink::default()
    }

    /// Creates an empty trace sink stamped with a fleet shard id.
    pub fn with_shard(shard_id: u64) -> Self {
        JsonTraceSink { shard_id, ..JsonTraceSink::default() }
    }

    /// The trace document: schema tag, shard id, migration mode, event
    /// array.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(TRACE_SCHEMA)),
            ("shard_id", Json::from(self.shard_id)),
            ("mode", Json::from(if self.saw_lazy { "lazy" } else { "eager" })),
            ("events", Json::Arr(self.events.clone())),
        ])
    }

    /// Writes the pretty-printed trace to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().pretty())
    }
}

fn duration_ms(d: Duration) -> Json {
    Json::from(d.as_secs_f64() * 1e3)
}

fn event_to_json(event: &UpdateEvent) -> Json {
    match event {
        UpdateEvent::PhaseEntered { phase, tick } => Json::obj([
            ("event", Json::from("phase_entered")),
            ("phase", Json::from(phase.to_string())),
            ("tick", Json::from(*tick)),
        ]),
        UpdateEvent::PhaseExited { phase, elapsed } => Json::obj([
            ("event", Json::from("phase_exited")),
            ("phase", Json::from(phase.to_string())),
            ("elapsed_ms", duration_ms(*elapsed)),
        ]),
        UpdateEvent::SafePointPoll { slices_waited, blocking, osr_candidates, barriers } => {
            Json::obj([
                ("event", Json::from("safe_point_poll")),
                ("slices_waited", Json::from(*slices_waited)),
                (
                    "blocking",
                    Json::Arr(blocking.iter().map(|b| Json::from(b.as_str())).collect()),
                ),
                ("osr_candidates", Json::from(*osr_candidates)),
                ("barriers", Json::from(*barriers)),
            ])
        }
        UpdateEvent::SafePointReached {
            slices_waited,
            barriers_installed,
            osr_candidates,
            planned_migrations,
        } => Json::obj([
            ("event", Json::from("safe_point_reached")),
            ("slices_waited", Json::from(*slices_waited)),
            ("barriers_installed", Json::from(*barriers_installed)),
            ("osr_candidates", Json::from(*osr_candidates)),
            ("planned_migrations", Json::from(*planned_migrations)),
        ]),
        UpdateEvent::ClassRenamed { class, renamed_to } => Json::obj([
            ("event", Json::from("class_renamed")),
            ("class", Json::from(class.as_str())),
            ("renamed_to", Json::from(renamed_to.as_str())),
        ]),
        UpdateEvent::ClassesLoaded { count, transformers } => Json::obj([
            ("event", Json::from("classes_loaded")),
            ("count", Json::from(*count)),
            ("transformers", Json::from(*transformers)),
        ]),
        UpdateEvent::MethodBodiesSwapped { class, count } => Json::obj([
            ("event", Json::from("method_bodies_swapped")),
            ("class", Json::from(class.as_str())),
            ("count", Json::from(*count)),
        ]),
        UpdateEvent::MethodsInvalidated { direct, inliners } => Json::obj([
            ("event", Json::from("methods_invalidated")),
            ("direct", Json::from(*direct)),
            ("inliners", Json::from(*inliners)),
        ]),
        UpdateEvent::OsrApplied { replaced, migrated } => Json::obj([
            ("event", Json::from("osr_applied")),
            ("replaced", Json::from(*replaced)),
            ("migrated", Json::from(*migrated)),
        ]),
        UpdateEvent::GcCompleted { copied_cells, copied_words, objects_logged } => Json::obj([
            ("event", Json::from("gc_completed")),
            ("copied_cells", Json::from(*copied_cells)),
            ("copied_words", Json::from(*copied_words)),
            ("objects_logged", Json::from(*objects_logged)),
        ]),
        UpdateEvent::TransformersRun { objects_transformed } => Json::obj([
            ("event", Json::from("transformers_run")),
            ("objects_transformed", Json::from(*objects_transformed)),
        ]),
        UpdateEvent::LazyEpochBegun { watermark_words, arm } => Json::obj([
            ("event", Json::from("lazy_epoch_begun")),
            ("watermark_words", Json::from(*watermark_words)),
            ("arm_ms", duration_ms(*arm)),
        ]),
        UpdateEvent::LazyScanStep { cells, found, done } => Json::obj([
            ("event", Json::from("lazy_scan_step")),
            ("cells", Json::from(*cells)),
            ("found", Json::from(*found)),
            ("done", Json::from(*done)),
        ]),
        UpdateEvent::LazyScavengeStep { transformed, remaining } => Json::obj([
            ("event", Json::from("lazy_scavenge_step")),
            ("transformed", Json::from(*transformed)),
            ("remaining", Json::from(*remaining)),
        ]),
        UpdateEvent::LazyCollapseStep { cells, rewritten, done } => Json::obj([
            ("event", Json::from("lazy_collapse_step")),
            ("cells", Json::from(*cells)),
            ("rewritten", Json::from(*rewritten)),
            ("done", Json::from(*done)),
        ]),
        UpdateEvent::RolledBack { reason, actions_undone } => Json::obj([
            ("event", Json::from("rolled_back")),
            ("reason", Json::from(reason.as_str())),
            ("actions_undone", Json::from(*actions_undone)),
        ]),
        UpdateEvent::Committed { wall } => Json::obj([
            ("event", Json::from("committed")),
            ("wall_ms", duration_ms(*wall)),
        ]),
        UpdateEvent::Aborted { reason, rolled_back } => Json::obj([
            ("event", Json::from("aborted")),
            ("reason", Json::from(reason.as_str())),
            ("rolled_back", Json::from(*rolled_back)),
        ]),
    }
}

impl UpdateEventSink for JsonTraceSink {
    fn event(&mut self, event: &UpdateEvent) {
        if let UpdateEvent::SafePointPoll { blocking, .. } = event {
            if self.last_blocking.as_ref() == Some(blocking) {
                return;
            }
            self.last_blocking = Some(blocking.clone());
        }
        if matches!(event, UpdateEvent::LazyEpochBegun { .. }) {
            self.saw_lazy = true;
        }
        self.events.push(event_to_json(event));
    }
    fn wants_polls(&self) -> bool {
        true
    }
}

/// What one [`UpdateController::step`] call produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepProgress {
    /// More steps needed; the payload is the phase now current.
    Pending(UpdatePhase),
    /// The update committed.
    Committed,
    /// The update aborted; see [`UpdateController::error`].
    Aborted,
}

/// Instrumentation counters (consumed by the safepoint bench's
/// no-per-poll-construction regression check).
#[derive(Clone, Copy, Debug, Default)]
pub struct ControllerCounters {
    /// Safe-point polls performed.
    pub polls: u64,
    /// Times the restricted set was built. Must stay 1 no matter how many
    /// polls run: the set is hoisted into the waiting state.
    pub restricted_builds: u64,
    /// OS workers the update GC ran on (`VmConfig::gc_threads` after
    /// clamping; 1 = serial path). Instrumentation only — the event
    /// stream and `UpdateStats` are identical for any worker count.
    pub gc_workers: u64,
}

/// A planned active-method migration (paper §3.5 future work).
#[derive(Debug, Clone)]
struct PlannedMigration {
    thread: ThreadId,
    frame: usize,
    method: MethodRef,
    new_pc: u32,
}

/// One reversible mutation recorded during installation. Undo replays the
/// ledger in reverse: frames first, then body swaps and invalidations,
/// then the batch truncation, then method restores, then renames.
enum UndoAction {
    /// Rename the class back to `name`.
    Rename { id: ClassId, name: ClassName },
    /// Restore a stripped class's method tables.
    RestoreClassMethods { id: ClassId, snap: ClassMethodsSnapshot },
    /// Drop everything loaded after `mark`.
    Truncate { mark: RegistryMark },
    /// Restore one method's definition/code/counters.
    RestoreMethod {
        mid: MethodId,
        def: jvolve_classfile::MethodDef,
        compiled: Option<Arc<CompiledMethod>>,
        invocations: u32,
        invalidations: u32,
    },
    /// Restore an OSR'd/migrated frame to its old code.
    RestoreFrame {
        thread: ThreadId,
        frame: usize,
        method: MethodId,
        compiled: Arc<CompiledMethod>,
        pc: u32,
        locals_len: usize,
    },
}

/// Scratch owned by the waiting phase: the restricted set is computed
/// once on entry, and the check/target buffers are reused every poll.
/// `migrations` holds the plans from the poll that found the safe point.
struct WaitState {
    restricted: RestrictedSet,
    check: StackCheck,
    targets: Vec<(ThreadId, usize)>,
    migrations: Vec<PlannedMigration>,
}

/// Inputs carried from a completed install into the heap transformation.
struct TransformInputs {
    remap: HashMap<ClassId, ClassId>,
    transformer_for: HashMap<ClassId, MethodId>,
}

enum State {
    Pending,
    Waiting(WaitState),
    Installing(WaitState),
    Transforming(TransformInputs),
    /// A lazy epoch is draining; each step runs one scavenger batch.
    LazyMigrating,
    Committed,
    Aborted,
}

enum PollVerdict {
    /// Safe; the (possibly migration-filtered) check is left in the wait
    /// state's scratch buffer.
    Safe { migrations: Vec<PlannedMigration> },
    /// The timeout elapsed; `blocking` is the deduplicated offender list.
    TimedOut { blocking: Vec<String> },
    /// Still blocked; barriers were installed and one slice ran.
    NotYet,
}

/// The resumable update controller. See the module docs for the phase
/// diagram and the pause contract.
pub struct UpdateController<'u> {
    update: &'u Update,
    opts: ApplyOptions,
    state: State,
    stats: UpdateStats,
    error: Option<UpdateError>,
    counters: ControllerCounters,
    ledger: Vec<UndoAction>,
    sinks: Vec<&'u mut dyn UpdateEventSink>,
    phase_elapsed: Duration,
}

impl<'u> UpdateController<'u> {
    /// Creates a controller for `update`. Nothing touches the VM until
    /// the first [`UpdateController::step`].
    pub fn new(update: &'u Update, opts: ApplyOptions) -> Self {
        UpdateController {
            update,
            opts,
            state: State::Pending,
            stats: UpdateStats::default(),
            error: None,
            counters: ControllerCounters::default(),
            ledger: Vec::new(),
            sinks: Vec::new(),
            phase_elapsed: Duration::ZERO,
        }
    }

    /// Attaches an event sink; every subsequent event is fanned out to it.
    pub fn attach_sink(&mut self, sink: &'u mut dyn UpdateEventSink) {
        self.sinks.push(sink);
    }

    /// The current phase.
    pub fn phase(&self) -> UpdatePhase {
        match self.state {
            State::Pending => UpdatePhase::Pending,
            State::Waiting(_) => UpdatePhase::WaitingForSafePoint,
            State::Installing(_) => UpdatePhase::Installing,
            State::Transforming(_) => UpdatePhase::TransformingHeap,
            State::LazyMigrating => UpdatePhase::LazyMigrating,
            State::Committed => UpdatePhase::Committed,
            State::Aborted => UpdatePhase::Aborted,
        }
    }

    /// Phase timings and counters accumulated so far (the default sink's
    /// output; complete once [`StepProgress::Committed`] is returned).
    pub fn stats(&self) -> &UpdateStats {
        &self.stats
    }

    /// Why the update aborted, once it has.
    pub fn error(&self) -> Option<&UpdateError> {
        self.error.as_ref()
    }

    /// Instrumentation counters.
    pub fn counters(&self) -> ControllerCounters {
        self.counters
    }

    /// Advances the protocol by one phase step. During
    /// [`UpdatePhase::WaitingForSafePoint`] one call performs one
    /// stack-check poll (running one scheduler slice when blocked), so the
    /// embedder can interleave its own work — serving requests, timers —
    /// between calls. See the module docs for the pause contract from
    /// `Installing` onward.
    pub fn step(&mut self, vm: &mut Vm) -> StepProgress {
        let t = Instant::now();
        let state = std::mem::replace(&mut self.state, State::Pending);
        match state {
            State::Pending => {
                // Cross-validate the (untrusted) spec against its payload
                // before anything touches the VM: abort here costs nothing
                // to roll back (the ledger is empty).
                if let Err(e) = crate::validate::validate_update(self.update) {
                    return self.abort(vm, e, t);
                }
                self.emit(UpdateEvent::PhaseEntered {
                    phase: UpdatePhase::WaitingForSafePoint,
                    tick: vm.tick(),
                });
                let restricted = RestrictedSet::compute(
                    &self.update.spec,
                    &self.update.old_classes,
                    &self.update.blacklist,
                );
                self.counters.restricted_builds += 1;
                let ws = WaitState {
                    restricted,
                    check: StackCheck::default(),
                    targets: Vec::new(),
                    migrations: Vec::new(),
                };
                self.state = State::Waiting(ws);
                self.account_safepoint(t, true);
                StepProgress::Pending(UpdatePhase::WaitingForSafePoint)
            }
            State::Waiting(mut ws) => match self.poll(vm, &mut ws) {
                PollVerdict::Safe { migrations } => {
                    vm.clear_return_barriers();
                    self.emit(UpdateEvent::SafePointReached {
                        slices_waited: self.stats.slices_waited,
                        barriers_installed: self.stats.barriers_installed,
                        osr_candidates: ws.check.osr_candidates.len(),
                        planned_migrations: migrations.len(),
                    });
                    self.exit_phase(UpdatePhase::WaitingForSafePoint, t);
                    self.emit(UpdateEvent::PhaseEntered {
                        phase: UpdatePhase::Installing,
                        tick: vm.tick(),
                    });
                    ws.migrations = migrations;
                    self.state = State::Installing(ws);
                    self.account_safepoint(t, false);
                    StepProgress::Pending(UpdatePhase::Installing)
                }
                PollVerdict::TimedOut { blocking } => {
                    let err = UpdateError::Timeout {
                        blocking,
                        slices_waited: self.stats.slices_waited,
                    };
                    self.abort(vm, err, t)
                }
                PollVerdict::NotYet => {
                    self.state = State::Waiting(ws);
                    self.account_safepoint(t, true);
                    StepProgress::Pending(UpdatePhase::WaitingForSafePoint)
                }
            },
            State::Installing(mut ws) => match self.poll(vm, &mut ws) {
                PollVerdict::Safe { migrations } => {
                    vm.clear_return_barriers();
                    ws.migrations = migrations;
                    match self.install(vm, &ws) {
                        Ok(inputs) => {
                            self.exit_phase(UpdatePhase::Installing, t);
                            self.emit(UpdateEvent::PhaseEntered {
                                phase: UpdatePhase::TransformingHeap,
                                tick: vm.tick(),
                            });
                            self.state = State::Transforming(inputs);
                            let elapsed = t.elapsed();
                            self.stats.classload_time += elapsed;
                            self.stats.total_time += elapsed;
                            StepProgress::Pending(UpdatePhase::TransformingHeap)
                        }
                        Err(e) => self.abort(vm, e, t),
                    }
                }
                PollVerdict::TimedOut { blocking } => {
                    let err = UpdateError::Timeout {
                        blocking,
                        slices_waited: self.stats.slices_waited,
                    };
                    self.abort(vm, err, t)
                }
                PollVerdict::NotYet => {
                    // The embedder ran slices after the safe point was
                    // found and it has been lost again: fall back to
                    // waiting rather than installing over live frames.
                    self.exit_phase(UpdatePhase::Installing, t);
                    self.emit(UpdateEvent::PhaseEntered {
                        phase: UpdatePhase::WaitingForSafePoint,
                        tick: vm.tick(),
                    });
                    self.state = State::Waiting(ws);
                    self.account_safepoint(t, false);
                    StepProgress::Pending(UpdatePhase::WaitingForSafePoint)
                }
            },
            State::Transforming(inputs) if vm.config().lazy_migration => {
                match self.begin_lazy(vm, inputs) {
                    Ok(()) => {
                        self.exit_phase(UpdatePhase::TransformingHeap, t);
                        self.emit(UpdateEvent::PhaseEntered {
                            phase: UpdatePhase::LazyMigrating,
                            tick: vm.tick(),
                        });
                        self.state = State::LazyMigrating;
                        self.stats.total_time += t.elapsed();
                        StepProgress::Pending(UpdatePhase::LazyMigrating)
                    }
                    // The barrier may already be armed and class
                    // transformers may have run: past the point of no
                    // return, like an eager transform failure.
                    Err(e) => self.abort_no_rollback(e, t),
                }
            }
            State::Transforming(inputs) => match self.transform_heap(vm, inputs) {
                Ok(()) => {
                    self.exit_phase(UpdatePhase::TransformingHeap, t);
                    self.stats.total_time += t.elapsed();
                    self.emit(UpdateEvent::Committed { wall: self.stats.total_time });
                    self.state = State::Committed;
                    StepProgress::Committed
                }
                // Past the point of no return: the heap may hold
                // half-transformed objects, so no rollback is attempted
                // (the paper's VM equally treats this as fatal).
                Err(e) => self.abort_no_rollback(e, t),
            },
            State::LazyMigrating => match vm.lazy_stage() {
                LazyStage::Scan => {
                    let out = vm.lazy_scan(self.opts.lazy_step_cells.max(1));
                    self.emit(UpdateEvent::LazyScanStep {
                        cells: out.cells,
                        found: out.found,
                        done: out.done,
                    });
                    self.state = State::LazyMigrating;
                    let elapsed = t.elapsed();
                    self.stats.lazy_scan_time += elapsed;
                    self.stats.lazy_time += elapsed;
                    self.stats.total_time += elapsed;
                    self.phase_elapsed += elapsed;
                    StepProgress::Pending(UpdatePhase::LazyMigrating)
                }
                LazyStage::Drain => {
                    let batch = self.opts.lazy_scavenge_batch.max(1);
                    match vm.lazy_scavenge(batch) {
                        Ok(out) => {
                            self.emit(UpdateEvent::LazyScavengeStep {
                                transformed: out.transformed,
                                remaining: out.remaining,
                            });
                            self.state = State::LazyMigrating;
                            let elapsed = t.elapsed();
                            self.stats.lazy_time += elapsed;
                            self.stats.total_time += elapsed;
                            self.phase_elapsed += elapsed;
                            StepProgress::Pending(UpdatePhase::LazyMigrating)
                        }
                        Err(e) => self.abort_no_rollback(e.into(), t),
                    }
                }
                LazyStage::Collapse => {
                    let out = vm.lazy_collapse(self.opts.lazy_step_cells.max(1));
                    self.emit(UpdateEvent::LazyCollapseStep {
                        cells: out.cells,
                        rewritten: out.rewritten,
                        done: out.done,
                    });
                    self.state = State::LazyMigrating;
                    let elapsed = t.elapsed();
                    self.stats.lazy_collapse_time += elapsed;
                    self.stats.lazy_time += elapsed;
                    self.stats.total_time += elapsed;
                    self.phase_elapsed += elapsed;
                    StepProgress::Pending(UpdatePhase::LazyMigrating)
                }
                LazyStage::Done => {
                    // Disarms the barrier; no finishing collection runs.
                    // Garbage forwards are reclaimed by the next natural
                    // GC, so no `GcCompleted` is emitted here.
                    let transformed = vm.finish_lazy_migration();
                    self.emit(UpdateEvent::TransformersRun { objects_transformed: transformed });
                    retire_transformer_class(vm, &self.update.spec.version_prefix);
                    self.exit_phase(UpdatePhase::LazyMigrating, t);
                    let elapsed = t.elapsed();
                    self.stats.lazy_time += elapsed;
                    self.stats.total_time += elapsed;
                    self.emit(UpdateEvent::Committed { wall: self.stats.total_time });
                    self.state = State::Committed;
                    StepProgress::Committed
                }
                LazyStage::Inactive => {
                    unreachable!("LazyMigrating state requires an active epoch")
                }
            },
            State::Committed => {
                self.state = State::Committed;
                StepProgress::Committed
            }
            State::Aborted => {
                self.state = State::Aborted;
                StepProgress::Aborted
            }
        }
    }

    /// Books one waiting-side step: its wall time goes to the safe-point
    /// bucket and, when the step stayed in its phase, to the running
    /// per-phase total (a phase transition already flushed it via
    /// [`UpdateController::exit_phase`]).
    fn account_safepoint(&mut self, step_start: Instant, same_phase: bool) {
        let elapsed = step_start.elapsed();
        self.stats.safepoint_time += elapsed;
        self.stats.total_time += elapsed;
        if same_phase {
            self.phase_elapsed += elapsed;
        }
    }

    /// Steps the controller until it commits or aborts (the synchronous
    /// [`crate::driver::apply`] behavior).
    ///
    /// # Errors
    ///
    /// Returns the abort reason; unless the failure happened during heap
    /// transformation, the VM has been rolled back to the old version.
    pub fn run_to_completion(&mut self, vm: &mut Vm) -> Result<UpdateStats, UpdateError> {
        loop {
            match self.step(vm) {
                StepProgress::Pending(_) => {}
                StepProgress::Committed => return Ok(self.stats.clone()),
                StepProgress::Aborted => {
                    return Err(self
                        .error
                        .clone()
                        .unwrap_or_else(|| UpdateError::Compile("aborted without error".into())))
                }
            }
        }
    }

    // ---- internals ---------------------------------------------------------

    fn emit(&mut self, event: UpdateEvent) {
        self.stats_feed(&event);
        for sink in &mut self.sinks {
            sink.event(&event);
        }
    }

    /// The built-in default sink: folds counter events into [`UpdateStats`]
    /// so the stats consumers (`table1`, `fig6`, `summary`) see exactly
    /// the numbers the old monolithic driver produced.
    fn stats_feed(&mut self, event: &UpdateEvent) {
        match event {
            UpdateEvent::ClassesLoaded { count, .. } => self.stats.classes_loaded += count,
            UpdateEvent::MethodBodiesSwapped { count, .. } => self.stats.bodies_swapped += count,
            UpdateEvent::MethodsInvalidated { direct, inliners } => {
                self.stats.methods_invalidated += direct + inliners;
            }
            UpdateEvent::OsrApplied { replaced, migrated } => {
                self.stats.osr_replacements += replaced;
                self.stats.active_migrations += migrated;
            }
            UpdateEvent::GcCompleted { copied_cells, copied_words, .. } => {
                self.stats.gc_copied_cells = *copied_cells;
                self.stats.gc_copied_words = *copied_words;
            }
            UpdateEvent::TransformersRun { objects_transformed } => {
                self.stats.objects_transformed = *objects_transformed;
            }
            _ => {}
        }
    }

    fn exit_phase(&mut self, phase: UpdatePhase, step_start: Instant) {
        let elapsed = self.phase_elapsed + step_start.elapsed();
        self.emit(UpdateEvent::PhaseExited { phase, elapsed });
        self.phase_elapsed = Duration::ZERO;
    }

    fn abort(&mut self, vm: &mut Vm, error: UpdateError, t: Instant) -> StepProgress {
        let undone = self.rollback(vm);
        self.emit(UpdateEvent::RolledBack {
            reason: error.to_string(),
            actions_undone: undone,
        });
        self.emit(UpdateEvent::Aborted { reason: error.to_string(), rolled_back: true });
        self.error = Some(error);
        self.stats.total_time += t.elapsed();
        self.state = State::Aborted;
        StepProgress::Aborted
    }

    /// Aborts without touching the ledger: the heap transformation (or
    /// lazy epoch) already mutated objects, so the VM cannot be restored
    /// to the old version (the paper's VM equally treats this as fatal).
    fn abort_no_rollback(&mut self, error: UpdateError, t: Instant) -> StepProgress {
        self.emit(UpdateEvent::Aborted { reason: error.to_string(), rolled_back: false });
        self.error = Some(error);
        self.stats.total_time += t.elapsed();
        self.state = State::Aborted;
        StepProgress::Aborted
    }

    /// Lazy-mode commit: arm the read barrier and snapshot the allocation
    /// watermark — no heap walk, no copying, no object transformers; the
    /// O(roots) pause the mode exists for. Stale objects are discovered
    /// later by the controller-stepped SATB scan. The barrier is armed
    /// *first* so any stale object a class transformer touches migrates
    /// through the ordinary first-touch path.
    fn begin_lazy(&mut self, vm: &mut Vm, inputs: TransformInputs) -> Result<(), UpdateError> {
        let t_arm = Instant::now();
        let watermark_words = vm.begin_lazy_migration(inputs.remap, inputs.transformer_for);
        self.stats.arm_time = t_arm.elapsed();
        self.emit(UpdateEvent::LazyEpochBegun { watermark_words, arm: self.stats.arm_time });

        let t_tf = Instant::now();
        for delta in self.update.spec.class_updates() {
            let tname = class_transformer_name(&delta.name);
            let tclass = vm
                .registry()
                .class_id(&ClassName::from(TRANSFORMERS_CLASS))
                .ok_or_else(|| UpdateError::Compile("transformer class missing".into()))?;
            if vm.registry().find_method(tclass, &tname).is_some() {
                vm.call_static_sync(TRANSFORMERS_CLASS, &tname, &[])?;
            }
        }
        self.stats.transform_time = t_tf.elapsed();
        Ok(())
    }

    /// Replays the rollback ledger in reverse and clears return barriers.
    /// Returns the number of actions undone.
    fn rollback(&mut self, vm: &mut Vm) -> usize {
        let n = self.ledger.len();
        for action in self.ledger.drain(..).rev() {
            match action {
                UndoAction::Rename { id, name } => {
                    let _ = vm.registry_mut().rename_class(id, name);
                }
                UndoAction::RestoreClassMethods { id, snap } => {
                    vm.registry_mut().restore_class_methods(id, snap);
                }
                UndoAction::Truncate { mark } => {
                    vm.registry_mut().truncate_to(&mark);
                }
                UndoAction::RestoreMethod { mid, def, compiled, invocations, invalidations } => {
                    vm.registry_mut().restore_method_state(
                        mid,
                        def,
                        compiled,
                        invocations,
                        invalidations,
                    );
                }
                UndoAction::RestoreFrame { thread, frame, method, compiled, pc, locals_len } => {
                    let _ = vm.osr_restore(thread, frame, method, compiled, pc, locals_len);
                }
            }
        }
        // The individual registry restores bump the dispatch epoch, but a
        // ledger holding only `RestoreFrame` actions would not: `osr_restore`
        // writes frames directly, bypassing the registry. Bump once more so
        // every inline cache filled mid-update is guaranteed stale after a
        // rollback, regardless of what the ledger contained.
        vm.registry_mut().bump_code_epoch();
        vm.clear_return_barriers();
        n
    }

    /// One safe-point poll (paper §3.2): scan stacks, plan OSR and
    /// migrations, and — when still blocked — install return barriers and
    /// run one scheduler slice.
    fn poll(&mut self, vm: &mut Vm, ws: &mut WaitState) -> PollVerdict {
        self.counters.polls += 1;
        check_stacks_into(vm, &ws.restricted, &mut ws.check);
        if !self.opts.use_osr {
            // Ablation: treat OSR candidates as blocking.
            let mut osr = std::mem::take(&mut ws.check.osr_candidates);
            ws.check.blocking.append(&mut osr);
        }

        let mut migrations = Vec::new();
        if self.opts.migrate_active_methods {
            let mut residual = Vec::new();
            for finding in ws.check.blocking.drain(..) {
                let plan = (finding.category == Category::Changed)
                    .then(|| {
                        let frame = vm
                            .thread(finding.thread)
                            .and_then(|t| t.frames.get(finding.frame))?;
                        if !frame.compiled.osr_capable() {
                            return None;
                        }
                        let map = method_pc_map(
                            &self.update.old_classes,
                            &self.update.new_classes,
                            &finding.method,
                        )?;
                        // A template-JIT frame's pc indexes the fused
                        // stream; the yield-point map is keyed by base
                        // (1:1) pcs, so translate first.
                        let new_pc = map.lookup(frame.compiled.base_pc_of(frame.pc))?;
                        Some(PlannedMigration {
                            thread: finding.thread,
                            frame: finding.frame,
                            method: finding.method.clone(),
                            new_pc,
                        })
                    })
                    .flatten();
                match plan {
                    Some(p) => migrations.push(p),
                    None => residual.push(finding),
                }
            }
            ws.check.blocking = residual;
        }

        if ws.check.safe() {
            return PollVerdict::Safe { migrations };
        }
        if self.stats.slices_waited >= self.opts.timeout_slices {
            return PollVerdict::TimedOut { blocking: blocking_methods(&ws.check) };
        }
        if self.sinks.iter().any(|s| s.wants_polls()) {
            let event = UpdateEvent::SafePointPoll {
                slices_waited: self.stats.slices_waited,
                blocking: blocking_methods(&ws.check),
                osr_candidates: ws.check.osr_candidates.len(),
                barriers: self.stats.barriers_installed,
            };
            self.emit(event);
        }
        if self.opts.use_return_barriers {
            barrier_targets_into(&ws.check, &mut ws.targets);
            for &(tid, frame) in &ws.targets {
                let already = vm
                    .thread(tid)
                    .and_then(|t| t.frames.get(frame))
                    .is_some_and(|f| f.return_barrier);
                if !already && vm.install_return_barrier(tid, frame).is_ok() {
                    self.stats.barriers_installed += 1;
                }
            }
        }
        vm.step_slice();
        self.stats.slices_waited += 1;
        PollVerdict::NotYet
    }

    /// Paper step 4: install modified classes, recording every mutation in
    /// the rollback ledger.
    fn install(&mut self, vm: &mut Vm, ws: &WaitState) -> Result<TransformInputs, UpdateError> {
        let check = &ws.check;
        let migrations = &ws.migrations;
        let update = self.update;
        let mut remap = HashMap::new();
        let mut invalidated: Vec<MethodId> = Vec::new();

        // Rename old versions out of the way and strip their methods
        // (paper §2.3/§3.3).
        let mut old_ids = HashMap::new();
        for delta in update.spec.class_updates() {
            let old_id = vm.registry().class_id(&delta.name).ok_or_else(|| {
                UpdateError::Vm(jvolve_vm::VmError::ResolutionError {
                    message: format!("updated class {} not loaded", delta.name),
                })
            })?;
            let renamed_to = update.spec.old_name(&delta.name);
            self.ledger.push(UndoAction::Rename { id: old_id, name: delta.name.clone() });
            vm.registry_mut().rename_class(old_id, renamed_to.clone())?;
            self.emit(UpdateEvent::ClassRenamed { class: delta.name.clone(), renamed_to });
            old_ids.insert(delta.name.clone(), old_id);
        }
        for &old_id in old_ids.values() {
            invalidated.extend(vm.registry().methods_of(old_id));
            self.ledger.push(UndoAction::RestoreClassMethods {
                id: old_id,
                snap: vm.registry().snapshot_class_methods(old_id),
            });
            vm.registry_mut().strip_methods(old_id);
        }

        // Load the new versions of updated classes plus added classes, as
        // one batch (they may reference each other). Everything loaded
        // from here on sits above the mark and is dropped on rollback.
        let mut batch = Vec::new();
        for delta in update.spec.class_updates() {
            let file = update.new_classes.get(&delta.name).ok_or_else(|| {
                UpdateError::BadSpec {
                    message: format!("updated class {} missing from the new version", delta.name),
                }
            })?;
            batch.push(file.clone());
        }
        for name in &update.spec.added_classes {
            let file = update.new_classes.get(name).ok_or_else(|| UpdateError::BadSpec {
                message: format!("added class {name} missing from the new version"),
            })?;
            batch.push(file.clone());
        }
        self.ledger.push(UndoAction::Truncate { mark: vm.registry().mark() });
        let new_ids = vm.load_classes(&batch)?;
        self.emit(UpdateEvent::ClassesLoaded { count: new_ids.len(), transformers: false });
        for (file, id) in batch.iter().zip(&new_ids) {
            if let Some(&old_id) = old_ids.get(&file.name) {
                remap.insert(old_id, *id);
            }
        }

        // Method-body updates: swap bytecode in place and invalidate.
        for delta in update.spec.body_only_updates() {
            let class_id = vm.registry().class_id(&delta.name).ok_or_else(|| {
                UpdateError::BadSpec {
                    message: format!("body-updated class {} is not loaded", delta.name),
                }
            })?;
            let new_class = update.new_classes.get(&delta.name).ok_or_else(|| {
                UpdateError::BadSpec {
                    message: format!("body-updated class {} missing from the new version", delta.name),
                }
            })?;
            for mname in &delta.methods_body_changed {
                let def = new_class
                    .find_method(mname)
                    .ok_or_else(|| UpdateError::BadSpec {
                        message: format!("changed method {}.{mname} missing from the new version", delta.name),
                    })?
                    .clone();
                if let Some(mid) = vm.registry().find_method(class_id, mname) {
                    if vm.registry().method(mid).class == class_id {
                        self.ledger.push(capture_method(vm, mid));
                    }
                }
                let mid = vm.registry_mut().replace_method_body(class_id, mname, def)?;
                invalidated.push(mid);
            }
            self.emit(UpdateEvent::MethodBodiesSwapped {
                class: delta.name.clone(),
                count: delta.methods_body_changed.len(),
            });
        }

        // Indirect (category-2) methods: invalidate so the JIT re-resolves
        // offsets on next invocation.
        let mut direct = 0;
        for mref in &update.spec.indirect_methods {
            if let Some(cid) = vm.registry().class_id(&mref.class) {
                if let Some(mid) = vm.registry().find_method(cid, &mref.method) {
                    self.ledger.push(capture_method(vm, mid));
                    vm.registry_mut().invalidate(mid);
                    invalidated.push(mid);
                    direct += 1;
                }
            }
        }
        // Inlined copies of anything invalidated must go too (paper §3.2).
        let victims = vm.registry().inliners_of(&invalidated);
        for &mid in &victims {
            self.ledger.push(capture_method(vm, mid));
        }
        let inliners = vm.registry_mut().invalidate_inliners(&invalidated);
        debug_assert_eq!(victims, inliners);
        self.emit(UpdateEvent::MethodsInvalidated { direct, inliners: inliners.len() });

        // OSR-replace on-stack base-compiled category-2 frames now that
        // the new metadata is installed (paper: "the exact timing of OSR
        // for DSU requires the VM to first load modified classes").
        let mut replaced = 0;
        if self.opts.use_osr {
            for f in &check.osr_candidates {
                // OSR recompiles and republishes the method's code, so both
                // the frame and the method entry go on the ledger.
                if let Some(mid) = vm
                    .thread(f.thread)
                    .and_then(|t| t.frames.get(f.frame))
                    .map(|fr| fr.method)
                {
                    self.ledger.push(capture_method(vm, mid));
                }
                self.capture_frame(vm, f.thread, f.frame);
                vm.osr_replace(f.thread, f.frame)?;
                replaced += 1;
            }
        }

        // §3.5 future work: migrate changed methods while they run. The
        // new method version is looked up through the *current* name (the
        // new class for class updates, the same class for body updates).
        let mut migrated = 0;
        for m in migrations {
            let class_id = vm.registry().class_id(&m.method.class).ok_or_else(|| {
                UpdateError::Vm(jvolve_vm::VmError::ResolutionError {
                    message: format!("migration target class {} missing", m.method.class),
                })
            })?;
            let new_mid = vm.registry().find_method(class_id, &m.method.method).ok_or_else(
                || {
                    UpdateError::Vm(jvolve_vm::VmError::ResolutionError {
                        message: format!("migration target method {} missing", m.method),
                    })
                },
            )?;
            self.capture_frame(vm, m.thread, m.frame);
            vm.osr_migrate(m.thread, m.frame, new_mid, m.new_pc)?;
            migrated += 1;
        }
        self.emit(UpdateEvent::OsrApplied { replaced, migrated });

        // Compile and load the transformer class (access-override mode).
        let transformer_classes = compile_transformers(
            &update.transformers_source,
            &update.spec,
            &update.old_classes,
            &update.new_classes,
        )
        .map_err(|e| UpdateError::Compile(e.to_string()))?;
        // Pin the transformer calling conventions before loading: the
        // heap-transformation phase invokes jvolve_object_X(to, from) /
        // jvolve_class_X() blindly, so a retyped transformer must abort
        // here (with a full ledger rollback) rather than push mistyped
        // values into the VM.
        crate::validate::check_transformer_signatures(&update.spec, &transformer_classes)?;
        vm.load_classes(&transformer_classes)?;
        self.emit(UpdateEvent::ClassesLoaded {
            count: transformer_classes.len(),
            transformers: true,
        });

        // Map each new class to its object transformer.
        let mut transformer_for = HashMap::new();
        for delta in update.spec.class_updates() {
            let new_id = vm.registry().class_id(&delta.name).ok_or_else(|| {
                UpdateError::BadSpec {
                    message: format!("new class {} vanished after load", delta.name),
                }
            })?;
            let tclass = vm
                .registry()
                .class_id(&ClassName::from(TRANSFORMERS_CLASS))
                .ok_or_else(|| UpdateError::Compile("transformer class missing".into()))?;
            let tname = object_transformer_name(&delta.name);
            let mid = vm.registry().find_method(tclass, &tname).ok_or_else(|| {
                UpdateError::Compile(format!("transformer {tname} missing from source"))
            })?;
            transformer_for.insert(new_id, mid);
        }
        Ok(TransformInputs { remap, transformer_for })
    }

    /// Paper step 5: the update GC, then class transformers, then object
    /// transformers over the update log.
    fn transform_heap(&mut self, vm: &mut Vm, inputs: TransformInputs) -> Result<(), UpdateError> {
        let t_gc = Instant::now();
        let gc_out = vm.collect_for_update(inputs.remap, inputs.transformer_for)?;
        self.stats.gc_time = t_gc.elapsed();
        self.counters.gc_workers = gc_out.workers as u64;
        self.emit(UpdateEvent::GcCompleted {
            copied_cells: gc_out.copied_cells,
            copied_words: gc_out.copied_words,
            objects_logged: vm.pending_transforms(),
        });

        let t_tf = Instant::now();
        for delta in self.update.spec.class_updates() {
            let tname = class_transformer_name(&delta.name);
            // Class transformers are optional in customized sources.
            let tclass = vm
                .registry()
                .class_id(&ClassName::from(TRANSFORMERS_CLASS))
                .ok_or_else(|| UpdateError::Compile("transformer class missing".into()))?;
            if vm.registry().find_method(tclass, &tname).is_some() {
                vm.call_static_sync(TRANSFORMERS_CLASS, &tname, &[])?;
            }
        }
        let objects_transformed = vm.pending_transforms();
        vm.transform_pending()?;
        self.stats.transform_time = t_tf.elapsed();
        self.emit(UpdateEvent::TransformersRun { objects_transformed });

        // The transformer class is only meaningful during the update;
        // rename it out of the way so the next update can load a fresh
        // one (the paper's VM deletes it).
        retire_transformer_class(vm, &self.update.spec.version_prefix);
        Ok(())
    }

    /// Captures a frame's pre-OSR state for the ledger.
    fn capture_frame(&mut self, vm: &Vm, thread: ThreadId, frame: usize) {
        if let Some(f) = vm.thread(thread).and_then(|t| t.frames.get(frame)) {
            self.ledger.push(UndoAction::RestoreFrame {
                thread,
                frame,
                method: f.method,
                compiled: f.compiled.clone(),
                pc: f.pc,
                locals_len: f.locals.len(),
            });
        }
    }
}

/// Captures a method's pre-mutation state for the rollback ledger.
fn capture_method(vm: &Vm, mid: MethodId) -> UndoAction {
    let info = vm.registry().method(mid);
    UndoAction::RestoreMethod {
        mid,
        def: info.def.clone(),
        compiled: info.compiled.clone(),
        invocations: info.invocations,
        invalidations: info.invalidations,
    }
}

/// Sorted, deduplicated method names from a check's blocking set.
fn blocking_methods(check: &StackCheck) -> Vec<String> {
    let mut blocking: Vec<String> =
        check.blocking.iter().map(|f| f.method.to_string()).collect();
    blocking.sort();
    blocking.dedup();
    blocking
}

/// Renames the spent transformer class out of the global namespace.
fn retire_transformer_class(vm: &mut Vm, prefix: &str) {
    let name = ClassName::from(TRANSFORMERS_CLASS);
    if let Some(id) = vm.registry().class_id(&name) {
        let retired = ClassName::from(format!("{prefix}{TRANSFORMERS_CLASS}"));
        let _ = vm.registry_mut().rename_class(id, retired);
        vm.registry_mut().strip_methods(id);
    }
}

// Fleet shards own one `Vm` + `UpdateController` per OS thread, so the
// controller (sinks included — `UpdateEventSink: Send`) and the prepared
// update it borrows must cross thread boundaries. Compile-time checks so
// a regression fails the build, not a fleet test.
const fn _assert_send<T: Send>() {}
const fn _assert_sync<T: Sync>() {}
const _: () = _assert_send::<UpdateController<'static>>();
const _: () = _assert_send::<crate::driver::Update>();
const _: () = _assert_sync::<crate::driver::Update>();
const _: () = _assert_send::<JsonTraceSink>();
const _: () = _assert_send::<MemorySink>();
