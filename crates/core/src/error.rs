//! Update-driver errors.

use std::fmt;

use jvolve_vm::VmError;

/// Why an update could not be applied.
#[derive(Clone, Debug)]
pub enum UpdateError {
    /// No DSU safe point was reached before the timeout (the paper's two
    /// unsupported updates fail this way: a changed method sits inside an
    /// always-running loop, §4).
    Timeout {
        /// The methods that stayed on stacks, with thread names.
        blocking: Vec<String>,
        /// Scheduler slices waited.
        slices_waited: u64,
    },
    /// The transformer class (or an update payload) failed to compile.
    Compile(String),
    /// The update specification is malformed: it names classes or methods
    /// that do not exist in the update payload or the running VM. The
    /// update aborts (and rolls back) instead of panicking the host.
    BadSpec {
        /// Description, e.g. "updated class Foo missing from the new version".
        message: String,
    },
    /// A transformer method exists but has the wrong shape: not static,
    /// wrong parameter types, or a non-void return. Invoking it anyway
    /// would push mistyped values into the VM, so the update aborts (and
    /// rolls back) instead.
    BadTransformer {
        /// Description, e.g. "jvolve_object_User must take (User, v1_User)".
        message: String,
    },
    /// A VM operation failed (load, GC overflow, transformer trap, …).
    Vm(VmError),
    /// The update changes nothing.
    Empty,
    /// The update needs capabilities the selected updater mode lacks
    /// (e.g. a class update under the method-body-only baseline).
    Unsupported {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::Timeout { blocking, slices_waited } => write!(
                f,
                "no DSU safe point reached after {slices_waited} slices; still on stack: {}",
                blocking.join(", ")
            ),
            UpdateError::Compile(msg) => write!(f, "update compilation failed: {msg}"),
            UpdateError::BadSpec { message } => write!(f, "malformed update spec: {message}"),
            UpdateError::BadTransformer { message } => {
                write!(f, "ill-typed transformer: {message}")
            }
            UpdateError::Vm(e) => write!(f, "VM error during update: {e}"),
            UpdateError::Empty => f.write_str("update changes nothing"),
            UpdateError::Unsupported { reason } => write!(f, "update unsupported: {reason}"),
        }
    }
}

impl std::error::Error for UpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpdateError::Vm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VmError> for UpdateError {
    fn from(e: VmError) -> Self {
        UpdateError::Vm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_blockers() {
        let e = UpdateError::Timeout {
            blocking: vec!["Jetty.acceptSocket".into()],
            slices_waited: 1500,
        };
        assert!(e.to_string().contains("acceptSocket"));
    }

    #[test]
    fn vm_error_converts() {
        let e: UpdateError = VmError::TransformerCycle.into();
        assert!(matches!(e, UpdateError::Vm(VmError::TransformerCycle)));
    }
}
