//! Spec/payload cross-validation for untrusted updates.
//!
//! [`Update::prepare`] always produces a spec that matches its payload,
//! but the spec file is JSON and the payload is a classfile batch — both
//! can arrive from outside the process, be edited by hand, or be
//! corrupted in transit. The paper "relies on bytecode verification to
//! statically type-check updated classes" (§1); the dataflow verifier
//! covers each class file in isolation, but nothing used to check that
//! the *spec agrees with the payload*. A desynchronized pair is exactly
//! as dangerous as ill-typed bytecode: a `ClassUpdate` relabeled
//! `MethodBodyOnly` swaps in code compiled against a new layout while
//! instances keep the old one, and a dropped indirect method leaves
//! compiled code holding stale field offsets.
//!
//! [`validate_update`] runs in the controller's `Pending` phase, before
//! anything touches the VM, and re-derives the UPT diff from the payload
//! to confirm the spec's shape. [`check_transformer_signatures`] runs at
//! install time, after the transformer class compiles, and pins the
//! `jvolve_object_X(to, from)` / `jvolve_class_X()` calling conventions
//! the heap-transformation phase later relies on blindly.

use jvolve_classfile::{ClassFile, ClassName, Type};

use crate::diff::prepare_spec;
use crate::driver::Update;
use crate::error::UpdateError;
use crate::spec::ClassChangeKind;
use crate::transform::{class_transformer_name, object_transformer_name, TRANSFORMERS_CLASS};

fn bad(message: String) -> UpdateError {
    UpdateError::BadSpec { message }
}

/// Cross-checks an update's spec against its payload before the VM is
/// touched: every name resolves, no class is double-booked, the version
/// prefix cannot collide with a live class, and the spec's shape (change
/// kinds, changed-method lists, added/deleted sets, indirect closure)
/// agrees with a freshly recomputed diff of the payload.
///
/// # Errors
///
/// [`UpdateError::BadSpec`] naming the first offending class or method.
pub fn validate_update(update: &Update) -> Result<(), UpdateError> {
    let spec = &update.spec;
    if spec.version_prefix.is_empty() {
        return Err(bad("empty version prefix".into()));
    }

    for (i, d) in spec.changed.iter().enumerate() {
        if spec.changed[..i].iter().any(|e| e.name == d.name) {
            return Err(bad(format!("duplicate delta for class {}", d.name)));
        }
        if update.old_classes.get(&d.name).is_none() {
            return Err(bad(format!("changed class {} missing from the old version", d.name)));
        }
        if update.new_classes.get(&d.name).is_none() {
            return Err(bad(format!("updated class {} missing from the new version", d.name)));
        }
        if spec.added_classes.contains(&d.name) {
            return Err(bad(format!("class {} listed as both changed and added", d.name)));
        }
        if spec.deleted_classes.contains(&d.name) {
            return Err(bad(format!("class {} listed as both changed and deleted", d.name)));
        }
        let old_name = spec.old_name(&d.name);
        if update.old_classes.get(&old_name).is_some()
            || update.new_classes.get(&old_name).is_some()
        {
            return Err(bad(format!(
                "version prefix {} collides with existing class {old_name}",
                spec.version_prefix
            )));
        }
    }
    for name in &spec.added_classes {
        if update.new_classes.get(name).is_none() {
            return Err(bad(format!("added class {name} missing from the new version")));
        }
        if update.old_classes.get(name).is_some() {
            return Err(bad(format!("added class {name} already exists in the old version")));
        }
    }
    for name in &spec.deleted_classes {
        if update.old_classes.get(name).is_none() {
            return Err(bad(format!("deleted class {name} missing from the old version")));
        }
        if update.new_classes.get(name).is_some() {
            return Err(bad(format!("deleted class {name} still present in the new version")));
        }
    }
    for mref in &spec.indirect_methods {
        let class = update
            .old_classes
            .get(&mref.class)
            .ok_or_else(|| bad(format!("indirect method {mref} names an unknown class")))?;
        if class.find_method(&mref.method).is_none() {
            return Err(bad(format!("indirect method {mref} does not exist in the old version")));
        }
    }

    // Batch-shape check: re-derive the UPT diff from the payload and
    // require the spec to agree. A spec that *under*-reports (a missing
    // delta, a relabeled kind, a dropped changed-method or indirect
    // entry) would install code compiled against metadata the running
    // heap does not have.
    let expected = prepare_spec(&update.old_classes, &update.new_classes, &spec.version_prefix);
    for ed in &expected.changed {
        let Some(sd) = spec.changed.iter().find(|d| d.name == ed.name) else {
            return Err(bad(format!(
                "class {} differs between versions but the spec has no delta for it",
                ed.name
            )));
        };
        if sd.kind != ed.kind {
            return Err(match ed.kind {
                ClassChangeKind::ClassUpdate => bad(format!(
                    "class {}'s signature or layout changed but the spec labels it MethodBodyOnly",
                    ed.name
                )),
                ClassChangeKind::MethodBodyOnly => bad(format!(
                    "class {} has only method-body changes but the spec labels it ClassUpdate",
                    ed.name
                )),
            });
        }
        let mut listed = sd.methods_body_changed.clone();
        let mut actual = ed.methods_body_changed.clone();
        listed.sort();
        actual.sort();
        if listed != actual {
            return Err(bad(format!(
                "changed-method list for {} does not match the payload diff",
                ed.name
            )));
        }
    }
    for sd in &spec.changed {
        if !expected.changed.iter().any(|d| d.name == sd.name) {
            return Err(bad(format!(
                "spec has a delta for {} but the class is identical in both versions",
                sd.name
            )));
        }
    }
    if let Some(name) = set_difference(&spec.added_classes, &expected.added_classes) {
        return Err(bad(format!("spec lists {name} as added but the payload diff does not")));
    }
    if let Some(name) = set_difference(&expected.added_classes, &spec.added_classes) {
        return Err(bad(format!("class {name} is new in the payload but not listed as added")));
    }
    if let Some(name) = set_difference(&spec.deleted_classes, &expected.deleted_classes) {
        return Err(bad(format!("spec lists {name} as deleted but the payload diff does not")));
    }
    if let Some(name) = set_difference(&expected.deleted_classes, &spec.deleted_classes) {
        return Err(bad(format!("class {name} is gone from the payload but not listed as deleted")));
    }
    for mref in &expected.indirect_methods {
        if !spec.indirect_methods.contains(mref) {
            return Err(bad(format!(
                "indirect method {mref} missing from the spec (its compiled code would keep \
                 stale offsets)"
            )));
        }
    }
    Ok(())
}

/// First element of `a` not present in `b`.
fn set_difference<'a>(a: &'a [ClassName], b: &[ClassName]) -> Option<&'a ClassName> {
    a.iter().find(|n| !b.contains(n))
}

/// Pins the transformer calling conventions on the *compiled* transformer
/// class, before it is loaded: `jvolve_object_X` must be a static
/// `(X, <prefix>X) -> void` method and `jvolve_class_X`, when present,
/// a static `() -> void` method. The heap-transformation phase invokes
/// these with exactly those argument shapes and never rechecks.
///
/// # Errors
///
/// [`UpdateError::Compile`] when a required transformer is absent (the
/// long-standing contract for a forgotten transformer), or
/// [`UpdateError::BadTransformer`] when one exists with the wrong shape.
pub fn check_transformer_signatures(
    spec: &crate::spec::UpdateSpec,
    classes: &[ClassFile],
) -> Result<(), UpdateError> {
    let tclass = classes
        .iter()
        .find(|c| c.name.as_str() == TRANSFORMERS_CLASS)
        .ok_or_else(|| UpdateError::Compile("transformer class missing".into()))?;
    for delta in spec.class_updates() {
        let tname = object_transformer_name(&delta.name);
        let def = tclass.find_method(&tname).ok_or_else(|| {
            UpdateError::Compile(format!("transformer {tname} missing from source"))
        })?;
        let want: [Type; 2] =
            [Type::Class(delta.name.clone()), Type::Class(spec.old_name(&delta.name))];
        if !def.is_static || def.params != want || def.ret != Type::Void {
            return Err(UpdateError::BadTransformer {
                message: format!(
                    "{tname} must be a static ({}, {}) -> void method, found {}",
                    delta.name,
                    spec.old_name(&delta.name),
                    def.signature()
                ),
            });
        }
        let cname = class_transformer_name(&delta.name);
        if let Some(def) = tclass.find_method(&cname) {
            if !def.is_static || !def.params.is_empty() || def.ret != Type::Void {
                return Err(UpdateError::BadTransformer {
                    message: format!(
                        "{cname} must be a static () -> void method, found {}",
                        def.signature()
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Update;
    use crate::spec::ClassChangeKind;
    use crate::transform::compile_transformers;
    use jvolve_classfile::MethodRef;

    fn prepared(old_src: &str, new_src: &str) -> Update {
        let old = jvolve_lang::compile(old_src).unwrap();
        let new = jvolve_lang::compile(new_src).unwrap();
        Update::prepare(&old, &new, "v1_").unwrap()
    }

    fn base_update() -> Update {
        prepared(
            "class P { field a: int; method get(): int { return this.a; } }
             class Q { method use(p: P): int { return p.get(); } }",
            "class P { field a: int; field b: int; method get(): int { return this.a; } }
             class Q { method use(p: P): int { return p.get(); } }",
        )
    }

    #[test]
    fn prepared_updates_validate() {
        assert!(validate_update(&base_update()).is_ok());
    }

    #[test]
    fn missing_payload_class_is_rejected() {
        let mut u = base_update();
        u.new_classes.remove(&ClassName::from("P"));
        let err = validate_update(&u).unwrap_err();
        assert!(matches!(&err, UpdateError::BadSpec { message } if message.contains("P")), "{err}");
    }

    #[test]
    fn flipped_kind_is_rejected() {
        let mut u = base_update();
        let d = u.spec.changed.iter_mut().find(|d| d.name.as_str() == "P").unwrap();
        assert_eq!(d.kind, ClassChangeKind::ClassUpdate);
        d.kind = ClassChangeKind::MethodBodyOnly;
        let err = validate_update(&u).unwrap_err();
        assert!(
            matches!(&err, UpdateError::BadSpec { message } if message.contains("MethodBodyOnly")),
            "{err}"
        );
    }

    #[test]
    fn dropped_delta_is_rejected() {
        let mut u = base_update();
        u.spec.changed.retain(|d| d.name.as_str() != "P");
        let err = validate_update(&u).unwrap_err();
        assert!(matches!(&err, UpdateError::BadSpec { message } if message.contains("P")), "{err}");
    }

    #[test]
    fn dangling_indirect_method_is_rejected() {
        let mut u = base_update();
        u.spec.indirect_methods.push(MethodRef::new("Ghost", "haunt"));
        let err = validate_update(&u).unwrap_err();
        assert!(
            matches!(&err, UpdateError::BadSpec { message } if message.contains("Ghost")),
            "{err}"
        );
    }

    #[test]
    fn dropped_indirect_method_is_rejected() {
        let mut u = prepared(
            "class A { field x: int; }
             class B { method get(a: A): int { return a.x; } }",
            "class A { field pad: int; field x: int; }
             class B { method get(a: A): int { return a.x; } }",
        );
        assert!(!u.spec.indirect_methods.is_empty());
        u.spec.indirect_methods.clear();
        let err = validate_update(&u).unwrap_err();
        assert!(
            matches!(&err, UpdateError::BadSpec { message } if message.contains("B.get")),
            "{err}"
        );
    }

    #[test]
    fn prefix_collision_is_rejected() {
        let old = jvolve_lang::compile(
            "class v1_P { } class P { field a: int; }",
        )
        .unwrap();
        let new = jvolve_lang::compile(
            "class v1_P { } class P { field a: int; field b: int; }",
        )
        .unwrap();
        let u = Update::prepare(&old, &new, "v1_").unwrap();
        let err = validate_update(&u).unwrap_err();
        assert!(
            matches!(&err, UpdateError::BadSpec { message } if message.contains("v1_P")),
            "{err}"
        );
    }

    #[test]
    fn retyped_object_transformer_is_rejected() {
        let u = base_update();
        // Wrong `from` type: takes the *new* P twice.
        let src = "class JvolveTransformers {
            static method jvolve_object_P(to: P, from: P): void { to.a = from.a; }
        }";
        let classes =
            compile_transformers(src, &u.spec, &u.old_classes, &u.new_classes).unwrap();
        let err = check_transformer_signatures(&u.spec, &classes).unwrap_err();
        assert!(
            matches!(&err, UpdateError::BadTransformer { message } if message.contains("jvolve_object_P")),
            "{err}"
        );
    }

    #[test]
    fn nonstatic_class_transformer_is_rejected() {
        let u = base_update();
        let src = "class JvolveTransformers {
            static method jvolve_object_P(to: P, from: v1_P): void { to.a = from.a; }
            method jvolve_class_P(): void { }
        }";
        let classes =
            compile_transformers(src, &u.spec, &u.old_classes, &u.new_classes).unwrap();
        let err = check_transformer_signatures(&u.spec, &classes).unwrap_err();
        assert!(matches!(err, UpdateError::BadTransformer { .. }), "{err}");
    }

    #[test]
    fn missing_object_transformer_stays_a_compile_error() {
        let u = base_update();
        let classes = compile_transformers(
            "class JvolveTransformers { }",
            &u.spec,
            &u.old_classes,
            &u.new_classes,
        )
        .unwrap();
        let err = check_transformer_signatures(&u.spec, &classes).unwrap_err();
        assert!(matches!(err, UpdateError::Compile(_)), "{err}");
    }

    #[test]
    fn default_transformers_pass_the_signature_check() {
        let u = base_update();
        let classes = compile_transformers(
            &u.transformers_source,
            &u.spec,
            &u.old_classes,
            &u.new_classes,
        )
        .unwrap();
        check_transformer_signatures(&u.spec, &classes).unwrap();
    }
}
