//! `upt` — the update preparation tool as a CLI (paper §3.1 / Figure 1).
//!
//! ```text
//! upt <old.mj> <new.mj> [--prefix vN_] [--spec spec.json] [--transformers t.mj]
//! ```
//!
//! Diffs two program versions, prints the per-release summary row and the
//! classification, and writes the update specification (JSON) and the
//! generated default `JvolveTransformers` source for the developer to
//! customize.

use std::process::ExitCode;

use jvolve::{ReleaseSummary, Update};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Positional arguments: everything that is neither a flag nor the
    // value following one.
    let mut positional: Vec<&String> = Vec::new();
    let mut skip = false;
    for a in &args {
        if skip {
            skip = false;
        } else if a.starts_with("--") {
            skip = true;
        } else {
            positional.push(a);
        }
    }
    if positional.len() != 2 {
        eprintln!(
            "usage: upt <old.mj> <new.mj> [--prefix vN_] [--spec out.json] [--transformers out.mj]"
        );
        return ExitCode::from(2);
    }
    let flag = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
    };
    let prefix = flag("--prefix").unwrap_or_else(|| "v1_".to_string());

    let old_src = match std::fs::read_to_string(positional[0]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("upt: cannot read {}: {e}", positional[0]);
            return ExitCode::FAILURE;
        }
    };
    let new_src = match std::fs::read_to_string(positional[1]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("upt: cannot read {}: {e}", positional[1]);
            return ExitCode::FAILURE;
        }
    };

    let old = match jvolve_lang::compile(&old_src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("upt: old version does not compile: {e}");
            return ExitCode::FAILURE;
        }
    };
    let new = match jvolve_lang::compile(&new_src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("upt: new version does not compile: {e}");
            return ExitCode::FAILURE;
        }
    };

    let update = match Update::prepare(&old, &new, &prefix) {
        Ok(u) => u,
        Err(e) => {
            eprintln!("upt: {e}");
            return ExitCode::FAILURE;
        }
    };

    let summary = ReleaseSummary::from_spec(&prefix, &update.spec);
    println!("{}", ReleaseSummary::table_header());
    println!("{summary}");
    println!();
    for delta in &update.spec.changed {
        println!("{}: {:?}{}", delta.name, delta.kind, if delta.inherited_only {
            " (inherited layout change)"
        } else {
            ""
        });
    }
    for name in &update.spec.added_classes {
        println!("{name}: Added");
    }
    for name in &update.spec.deleted_classes {
        println!("{name}: Deleted");
    }
    println!(
        "\nindirect (category-2) methods: {}",
        update
            .spec
            .indirect_methods
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "method-body-only (E&C) systems could apply this update: {}",
        if update.spec.is_body_only() { "yes" } else { "no" }
    );

    if let Some(path) = flag("--spec") {
        if let Err(e) = std::fs::write(&path, update.spec.to_json()) {
            eprintln!("upt: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = flag("--transformers") {
        if let Err(e) = std::fs::write(&path, &update.transformers_source) {
            eprintln!("upt: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
