//! `jvolve_run` — run an MJ program on the VM, optionally applying a
//! dynamic update while it runs (the paper's Figure 1 workflow as one
//! command).
//!
//! ```text
//! jvolve_run <v1.mj> --main Class.method [--slices N] [--gc-threads N|auto]
//!            [--no-inline-caches] [--no-jit | --jit-threshold N]
//!            [--update <v2.mj> --after N [--prefix vN_] [--transformers t.mj]
//!             [--lazy] [--lazy-batch N] [--trace results/update_trace.json]]
//! ```
//!
//! With `--lazy` the update commits in lazy-migration mode
//! (`VmConfig::lazy_migration`): the pause is O(roots) — the read barrier
//! arms against an allocation watermark, a controller-stepped SATB scan
//! discovers stale objects, they transform on first touch or by scavenger
//! batch, and a final incremental collapse rewrites forwarded references
//! — all interleaved with the running program. `--lazy-batch` scales the
//! per-step budgets. `--gc-threads auto` picks the collector's worker
//! count per collection from the live-heap size.
//!
//! When an update is applied, the controller's structured event stream
//! (phase transitions, safe-point polls, install counts, GC outcome) is
//! written as JSON to `--trace` (default `results/update_trace.json`).
//!
//! `--no-jit` disables the template-JIT tier (`VmConfig::enable_jit`);
//! `--jit-threshold N` tunes the combined invocation + loop-trip count
//! that promotes a method to it.
//!
//! Unknown flags, missing flag values, malformed numbers, duplicate
//! flags, and conflicting combinations (`--lazy` without `--update`,
//! `--jit-threshold` with `--no-jit`) are all rejected with the usage
//! message and exit code 2.

use std::process::ExitCode;

use jvolve::{
    ApplyOptions, JsonTraceSink, StepProgress, Update, UpdateController, UpdateError, UpdatePhase,
};
use jvolve_vm::{Vm, VmConfig, GC_THREADS_AUTO};

const USAGE: &str = "usage: jvolve_run <v1.mj> --main Class.method [--slices N] [--gc-threads N|auto] \
     [--no-inline-caches] [--no-jit | --jit-threshold N] \
     [(--update <v2.mj> [--prefix vN_] [--transformers t.mj] | --update-bundle dir/) \
      --after N [--lazy] [--lazy-batch N] [--trace out.json]]";

/// Parsed command line. Every flag is strict: unknown names, missing or
/// malformed values, duplicates, and conflicts are parse errors.
struct Cli {
    program: String,
    main_spec: String,
    slices: usize,
    after: usize,
    prefix: String,
    gc_threads: usize,
    inline_caches: bool,
    jit: bool,
    jit_threshold: Option<u32>,
    lazy: bool,
    lazy_batch: Option<usize>,
    update: Option<String>,
    update_bundle: Option<String>,
    transformers: Option<String>,
    trace: String,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut program: Option<String> = None;
    let mut values: [(&str, Option<String>); 11] = [
        ("--main", None),
        ("--slices", None),
        ("--after", None),
        ("--prefix", None),
        ("--gc-threads", None),
        ("--jit-threshold", None),
        ("--lazy-batch", None),
        ("--update", None),
        ("--update-bundle", None),
        ("--transformers", None),
        ("--trace", None),
    ];
    let mut inline_caches = true;
    let mut jit = true;
    let mut lazy = false;

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--no-inline-caches" => {
                if !inline_caches {
                    return Err("duplicate flag --no-inline-caches".into());
                }
                inline_caches = false;
                i += 1;
            }
            "--no-jit" => {
                if !jit {
                    return Err("duplicate flag --no-jit".into());
                }
                jit = false;
                i += 1;
            }
            "--lazy" => {
                if lazy {
                    return Err("duplicate flag --lazy".into());
                }
                lazy = true;
                i += 1;
            }
            _ if arg.starts_with("--") => {
                // All value-taking flags share one fetch-and-dedup path.
                let slot = values
                    .iter_mut()
                    .find(|(name, _)| *name == arg)
                    .map(|(_, slot)| slot)
                    .ok_or_else(|| format!("unknown flag {arg}"))?;
                if slot.is_some() {
                    return Err(format!("duplicate flag {arg}"));
                }
                let v = args.get(i + 1).ok_or_else(|| format!("{arg} needs a value"))?;
                if v.starts_with("--") {
                    return Err(format!("{arg} needs a value, got flag {v}"));
                }
                *slot = Some(v.clone());
                i += 2;
            }
            _ => {
                if program.is_some() {
                    return Err(format!("unexpected extra argument {arg}"));
                }
                program = Some(arg.to_string());
                i += 1;
            }
        }
    }
    let mut take = |name: &str| {
        values.iter_mut().find(|(n, _)| *n == name).expect("known flag").1.take()
    };
    let program = program.ok_or_else(|| "no program file given".to_string())?;
    let main_spec = take("--main");
    let slices = take("--slices");
    let after = take("--after");
    let prefix = take("--prefix");
    let gc_threads = take("--gc-threads");
    let jit_threshold = take("--jit-threshold");
    let lazy_batch = take("--lazy-batch");
    let update = take("--update");
    let update_bundle = take("--update-bundle");
    let transformers = take("--transformers");
    let trace = take("--trace");

    if update.is_some() && update_bundle.is_some() {
        return Err("--update-bundle conflicts with --update".into());
    }
    if update_bundle.is_some() {
        // A bundle carries its own prefix and transformers.
        for (flag, set) in
            [("--prefix", prefix.is_some()), ("--transformers", transformers.is_some())]
        {
            if set {
                return Err(format!("{flag} conflicts with --update-bundle"));
            }
        }
    }
    if update.is_none() && update_bundle.is_none() {
        for (flag, set) in [
            ("--after", after.is_some()),
            ("--prefix", prefix.is_some()),
            ("--transformers", transformers.is_some()),
            ("--trace", trace.is_some()),
            ("--lazy", lazy),
        ] {
            if set {
                return Err(format!("{flag} requires --update"));
            }
        }
    }
    if lazy_batch.is_some() && !lazy {
        return Err("--lazy-batch requires --lazy".into());
    }
    if jit_threshold.is_some() && !jit {
        // There is no tier for the threshold to tune.
        return Err("--jit-threshold conflicts with --no-jit".into());
    }
    Ok(Cli {
        program,
        main_spec: main_spec.unwrap_or_else(|| "Main.main".to_string()),
        slices: parse_num("--slices", slices)?.unwrap_or(100_000),
        after: parse_num("--after", after)?.unwrap_or(0),
        prefix: prefix.unwrap_or_else(|| "v1_".to_string()),
        gc_threads: match gc_threads.as_deref() {
            // `auto` defers the worker count to each collection: serial
            // for small live heaps, the default fan-out for large ones.
            Some("auto") => GC_THREADS_AUTO,
            _ => parse_num("--gc-threads", gc_threads)?
                .unwrap_or_else(VmConfig::default_gc_threads)
                .max(1),
        },
        inline_caches,
        jit,
        jit_threshold: parse_num("--jit-threshold", jit_threshold)?
            .map(|n| u32::try_from(n.max(1)).unwrap_or(u32::MAX)),
        lazy,
        lazy_batch: parse_num("--lazy-batch", lazy_batch)?.map(|n| n.max(1)),
        update,
        update_bundle,
        transformers,
        trace: trace.unwrap_or_else(|| "results/update_trace.json".to_string()),
    })
}

fn parse_num(flag: &str, value: Option<String>) -> Result<Option<usize>, String> {
    value
        .map(|v| v.parse().map_err(|_| format!("{flag} expects a number, got {v}")))
        .transpose()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("jvolve_run: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (main_class, main_method) =
        cli.main_spec.split_once('.').unwrap_or((cli.main_spec.as_str(), "main"));

    let v1 = match std::fs::read_to_string(&cli.program)
        .map_err(|e| e.to_string())
        .and_then(|s| jvolve_lang::compile(&s).map_err(|e| e.to_string()))
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("jvolve_run: {}: {e}", cli.program);
            return ExitCode::FAILURE;
        }
    };

    let default_config = VmConfig::default();
    let mut vm = Vm::new(VmConfig {
        echo_output: true,
        gc_threads: cli.gc_threads,
        enable_inline_caches: cli.inline_caches,
        enable_jit: cli.jit,
        jit_threshold: cli.jit_threshold.unwrap_or(default_config.jit_threshold),
        lazy_migration: cli.lazy,
        ..default_config
    });
    if let Err(e) = vm.load_classes(&v1) {
        eprintln!("jvolve_run: load failed: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = vm.spawn(main_class, main_method) {
        eprintln!("jvolve_run: {e}");
        return ExitCode::FAILURE;
    }

    let update = match (&cli.update, &cli.update_bundle) {
        // A UPT-emitted bundle: spec + transformers + payloads, verified
        // and cross-checked against a fresh diff on load.
        (None, Some(dir)) => match jvolve::bundle::load(std::path::Path::new(dir)) {
            Ok(update) => Some(update),
            Err(e) => {
                eprintln!("jvolve_run: {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, None) => None,
        (Some(path), _) => {
            let v2 = match std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|s| jvolve_lang::compile(&s).map_err(|e| e.to_string()))
            {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("jvolve_run: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut update = match Update::prepare(&v1, &v2, &cli.prefix) {
                Ok(u) => u,
                Err(e) => {
                    eprintln!("jvolve_run: prepare failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(tpath) = &cli.transformers {
                match std::fs::read_to_string(tpath) {
                    Ok(src) => update.set_transformers_source(src),
                    Err(e) => {
                        eprintln!("jvolve_run: {tpath}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Some(update)
        }
    };

    vm.run_slices(cli.after.max(1));
    if let Some(update) = update {
        eprintln!("jvolve_run: applying update after {} slices ...", cli.after);
        let mut trace = JsonTraceSink::new();
        // `--lazy-batch N` scales both per-step budgets from their
        // defaults: N objects per scavenge batch and proportionally many
        // heap cells per SATB-scan/collapse batch (the default ratio is
        // 128 objects : 4096 cells).
        let opts = match cli.lazy_batch {
            Some(n) => ApplyOptions {
                lazy_scavenge_batch: n,
                lazy_step_cells: n.saturating_mul(32),
                ..ApplyOptions::default()
            },
            None => ApplyOptions::default(),
        };
        let mut controller = UpdateController::new(&update, opts);
        controller.attach_sink(&mut trace);
        // Like `run_to_completion`, but interleaves guest slices with the
        // scavenger while a lazy epoch drains — the mode's whole point.
        let result = loop {
            match controller.step(&mut vm) {
                StepProgress::Pending(UpdatePhase::LazyMigrating) => {
                    vm.run_slices(1);
                }
                StepProgress::Pending(_) => {}
                StepProgress::Committed => break Ok(controller.stats().clone()),
                StepProgress::Aborted => {
                    break Err(controller.error().cloned().unwrap_or_else(|| {
                        UpdateError::Compile("aborted without error".into())
                    }))
                }
            }
        };
        if let Some(dir) = std::path::Path::new(&cli.trace).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match trace.write(&cli.trace) {
            Ok(()) => eprintln!("jvolve_run: phase-event trace written to {}", cli.trace),
            Err(e) => eprintln!("jvolve_run: could not write {}: {e}", cli.trace),
        }
        match result {
            Ok(stats) => eprintln!(
                "jvolve_run: updated ({} objects transformed, pause {:?})",
                stats.objects_transformed, stats.total_time
            ),
            Err(e) => {
                eprintln!("jvolve_run: update failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    vm.run_to_completion(cli.slices);
    ExitCode::SUCCESS
}
