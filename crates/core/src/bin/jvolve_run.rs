//! `jvolve_run` — run an MJ program on the VM, optionally applying a
//! dynamic update while it runs (the paper's Figure 1 workflow as one
//! command).
//!
//! ```text
//! jvolve_run <v1.mj> --main Class.method [--slices N] [--gc-threads N]
//!            [--no-inline-caches]
//!            [--update <v2.mj> --after N [--prefix vN_] [--transformers t.mj]
//!             [--trace results/update_trace.json]]
//! ```
//!
//! When an update is applied, the controller's structured event stream
//! (phase transitions, safe-point polls, install counts, GC outcome) is
//! written as JSON to `--trace` (default `results/update_trace.json`).

use std::process::ExitCode;

use jvolve::{ApplyOptions, JsonTraceSink, Update, UpdateController};
use jvolve_vm::{Vm, VmConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(program) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: jvolve_run <v1.mj> --main Class.method [--slices N] [--gc-threads N] \
             [--no-inline-caches] \
             [--update <v2.mj> --after N [--prefix vN_] [--transformers t.mj]]"
        );
        return ExitCode::from(2);
    };
    let flag = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
    };
    let main_spec = flag("--main").unwrap_or_else(|| "Main.main".to_string());
    let (main_class, main_method) =
        main_spec.split_once('.').unwrap_or((main_spec.as_str(), "main"));
    let slices: usize = flag("--slices").and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let after: usize = flag("--after").and_then(|s| s.parse().ok()).unwrap_or(0);
    let prefix = flag("--prefix").unwrap_or_else(|| "v1_".to_string());

    let v1 = match std::fs::read_to_string(program)
        .map_err(|e| e.to_string())
        .and_then(|s| jvolve_lang::compile(&s).map_err(|e| e.to_string()))
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("jvolve_run: {program}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Update-GC parallelism; defaults to one worker per core (capped).
    let gc_threads: usize = flag("--gc-threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(VmConfig::default_gc_threads)
        .max(1);

    // Dispatch inline caches are on by default; `--no-inline-caches` holds
    // the caches-off baseline (Fig. 5's "stock" configuration).
    let enable_inline_caches = !args.iter().any(|a| a == "--no-inline-caches");

    let mut vm = Vm::new(VmConfig {
        echo_output: true,
        gc_threads,
        enable_inline_caches,
        ..VmConfig::default()
    });
    if let Err(e) = vm.load_classes(&v1) {
        eprintln!("jvolve_run: load failed: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = vm.spawn(main_class, main_method) {
        eprintln!("jvolve_run: {e}");
        return ExitCode::FAILURE;
    }

    let update = match flag("--update") {
        None => None,
        Some(path) => {
            let v2 = match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|s| jvolve_lang::compile(&s).map_err(|e| e.to_string()))
            {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("jvolve_run: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut update = match Update::prepare(&v1, &v2, &prefix) {
                Ok(u) => u,
                Err(e) => {
                    eprintln!("jvolve_run: prepare failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(tpath) = flag("--transformers") {
                match std::fs::read_to_string(&tpath) {
                    Ok(src) => update.set_transformers_source(src),
                    Err(e) => {
                        eprintln!("jvolve_run: {tpath}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Some(update)
        }
    };

    vm.run_slices(after.max(1));
    if let Some(update) = update {
        eprintln!("jvolve_run: applying update after {after} slices ...");
        let trace_path =
            flag("--trace").unwrap_or_else(|| "results/update_trace.json".to_string());
        let mut trace = JsonTraceSink::new();
        let mut controller = UpdateController::new(&update, ApplyOptions::default());
        controller.attach_sink(&mut trace);
        let result = controller.run_to_completion(&mut vm);
        if let Some(dir) = std::path::Path::new(&trace_path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match trace.write(&trace_path) {
            Ok(()) => eprintln!("jvolve_run: phase-event trace written to {trace_path}"),
            Err(e) => eprintln!("jvolve_run: could not write {trace_path}: {e}"),
        }
        match result {
            Ok(stats) => eprintln!(
                "jvolve_run: updated ({} objects transformed, pause {:?})",
                stats.objects_transformed, stats.total_time
            ),
            Err(e) => {
                eprintln!("jvolve_run: update failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    vm.run_to_completion(slices);
    ExitCode::SUCCESS
}
