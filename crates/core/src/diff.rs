//! The update preparation tool (UPT): diffing two program versions.
//!
//! "To determine the changed and transitively-affected classes for a given
//! release, we wrote a simple Update Preparation Tool that examines
//! differences between the old and new classes provided by the user"
//! (paper §3.1). The UPT classifies each class as a *class update* or a
//! *method body update*, propagates layout changes down the class
//! hierarchy, and computes the *indirect methods* whose compiled
//! representation embeds offsets of updated classes.

use std::collections::BTreeSet;

use jvolve_classfile::{ClassFile, ClassName, ClassSet, MethodRef};

use crate::spec::{ClassChangeKind, ClassDelta, UpdateSpec};

/// Diffs two program versions into an [`UpdateSpec`].
///
/// `version_prefix` names the old version, e.g. `"v131_"`.
pub fn prepare_spec(old: &ClassSet, new: &ClassSet, version_prefix: &str) -> UpdateSpec {
    let mut changed: Vec<ClassDelta> = Vec::new();
    let mut added_classes = Vec::new();
    let mut deleted_classes = Vec::new();

    for class in new.iter() {
        match old.get(&class.name) {
            None => added_classes.push(class.name.clone()),
            Some(old_class) => {
                if let Some(delta) = diff_class(old_class, class) {
                    changed.push(delta);
                }
            }
        }
    }
    for class in old.iter() {
        if new.get(&class.name).is_none() {
            deleted_classes.push(class.name.clone());
        }
    }

    propagate_layout_changes(new, &mut changed);

    let indirect_methods = indirect_methods(old, &changed, &added_classes, &deleted_classes);

    UpdateSpec {
        version_prefix: version_prefix.to_string(),
        changed,
        added_classes,
        deleted_classes,
        indirect_methods,
    }
}

/// Diffs one class present in both versions. `None` when identical.
fn diff_class(old: &ClassFile, new: &ClassFile) -> Option<ClassDelta> {
    let mut d = ClassDelta::empty(new.name.clone(), ClassChangeKind::MethodBodyOnly);

    d.superclass_changed = old.superclass != new.superclass;

    // Instance fields.
    for f in &new.fields {
        match old.find_field(&f.name) {
            None => d.fields_added.push(f.name.clone()),
            Some(of) if of != f => d.fields_changed.push(f.name.clone()),
            Some(_) => {}
        }
    }
    for f in &old.fields {
        if new.find_field(&f.name).is_none() {
            d.fields_deleted.push(f.name.clone());
        }
    }
    // Field *order* changes shift offsets even when the set is unchanged.
    let old_order: Vec<&str> = old.fields.iter().map(|f| f.name.as_str()).collect();
    let new_order: Vec<&str> = new.fields.iter().map(|f| f.name.as_str()).collect();
    if d.fields_added.is_empty()
        && d.fields_deleted.is_empty()
        && d.fields_changed.is_empty()
        && old_order != new_order
    {
        d.fields_changed.extend(
            old_order
                .iter()
                .zip(&new_order)
                .filter(|(a, b)| a != b)
                .map(|(a, _)| a.to_string()),
        );
    }

    // Static fields.
    for f in &new.static_fields {
        match old.find_static_field(&f.name) {
            None => d.statics_added.push(f.name.clone()),
            Some(of) if of != f => d.statics_changed.push(f.name.clone()),
            Some(_) => {}
        }
    }
    for f in &old.static_fields {
        if new.find_static_field(&f.name).is_none() {
            d.statics_deleted.push(f.name.clone());
        }
    }

    // Methods.
    for m in &new.methods {
        match old.find_method(&m.name) {
            None => d.methods_added.push(m.name.clone()),
            Some(om) => {
                if om.signature() != m.signature() {
                    d.methods_sig_changed.push(m.name.clone());
                } else if om.code != m.code {
                    d.methods_body_changed.push(m.name.clone());
                }
            }
        }
    }
    for m in &old.methods {
        if new.find_method(&m.name).is_none() {
            d.methods_deleted.push(m.name.clone());
        }
    }

    if d.signature_changed() {
        d.kind = ClassChangeKind::ClassUpdate;
    } else if d.methods_body_changed.is_empty() {
        return None; // identical
    }
    Some(d)
}

/// A class whose *ancestor* had a layout change is itself a class update:
/// its instance layout (inherited prefix) shifts, so its instances must be
/// transformed and its metadata reinstalled. The paper supports changes
/// "at any level of the class hierarchy" (§2.2) via exactly this
/// propagation.
fn propagate_layout_changes(new: &ClassSet, changed: &mut Vec<ClassDelta>) {
    // Fixpoint over the hierarchy: layout-affecting classes taint their
    // subclasses.
    let mut tainted: BTreeSet<ClassName> = changed
        .iter()
        .filter(|d| d.layout_changed())
        .map(|d| d.name.clone())
        .collect();

    loop {
        let mut grew = false;
        for class in new.iter() {
            if tainted.contains(&class.name) {
                continue;
            }
            if let Some(sup) = &class.superclass {
                if tainted.contains(sup) {
                    tainted.insert(class.name.clone());
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }

    for name in tainted {
        match changed.iter_mut().find(|d| d.name == name) {
            Some(d) => {
                if d.kind == ClassChangeKind::MethodBodyOnly {
                    d.kind = ClassChangeKind::ClassUpdate;
                    d.inherited_only = false;
                }
            }
            None => {
                if new.get(&name).is_some() {
                    let mut d = ClassDelta::empty(name, ClassChangeKind::ClassUpdate);
                    d.inherited_only = true;
                    changed.push(d);
                }
            }
        }
    }
    changed.sort_by(|a, b| a.name.cmp(&b.name));
}

/// Category-(2) methods: *old-version* methods whose bytecode is unchanged
/// but references a class whose compiled representation changes (class
/// updates, added classes shadowing nothing, deleted classes). Their
/// compiled code holds stale offsets and must be recompiled (paper §3.1).
fn indirect_methods(
    old: &ClassSet,
    changed: &[ClassDelta],
    added: &[ClassName],
    deleted: &[ClassName],
) -> Vec<MethodRef> {
    let mut updated: BTreeSet<&ClassName> = changed
        .iter()
        .filter(|d| d.kind == ClassChangeKind::ClassUpdate)
        .map(|d| &d.name)
        .collect();
    for name in added.iter().chain(deleted) {
        updated.insert(name);
    }

    let mut out = Vec::new();
    for class in old.iter() {
        let delta = changed.iter().find(|d| d.name == class.name);
        // Every method of a class-updated class is already category (1).
        if delta.is_some_and(|d| d.kind == ClassChangeKind::ClassUpdate) {
            continue;
        }
        for m in &class.methods {
            // Body-changed methods are category (1) too.
            if delta.is_some_and(|d| d.methods_body_changed.contains(&m.name)) {
                continue;
            }
            let Some(code) = &m.code else { continue };
            let touches_updated = code
                .instrs
                .iter()
                .filter_map(|i| i.referenced_class())
                .any(|c| updated.contains(c));
            if touches_updated {
                out.push(MethodRef::new(class.name.clone(), m.name.clone()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClassChangeKind::*;

    fn compile_set(src: &str) -> ClassSet {
        let mut set: ClassSet = jvolve_lang::compile(src).unwrap().into_iter().collect();
        for b in jvolve_lang::builtins::builtin_classes() {
            set.insert(b);
        }
        set
    }

    fn spec(old_src: &str, new_src: &str) -> UpdateSpec {
        // Builtins are excluded from the diff by compiling them into both
        // sides (identical → no delta).
        prepare_spec(&compile_set(old_src), &compile_set(new_src), "v1_")
    }

    fn delta<'a>(s: &'a UpdateSpec, name: &str) -> &'a ClassDelta {
        s.changed.iter().find(|d| d.name.as_str() == name).unwrap()
    }

    #[test]
    fn identical_versions_give_empty_spec() {
        let src = "class A { field x: int; method f(): int { return this.x; } }";
        let s = spec(src, src);
        assert!(s.is_empty());
    }

    #[test]
    fn body_change_is_method_body_update() {
        let s = spec(
            "class A { method f(): int { return 1; } }",
            "class A { method f(): int { return 2; } }",
        );
        let d = delta(&s, "A");
        assert_eq!(d.kind, MethodBodyOnly);
        assert_eq!(d.methods_body_changed, ["f"]);
        assert!(s.is_body_only());
    }

    #[test]
    fn field_addition_is_class_update() {
        let s = spec(
            "class A { field x: int; }",
            "class A { field x: int; field y: int; }",
        );
        let d = delta(&s, "A");
        assert_eq!(d.kind, ClassUpdate);
        assert_eq!(d.fields_added, ["y"]);
        assert!(!s.is_body_only());
    }

    #[test]
    fn field_type_change_is_class_update() {
        // The paper's running example: forwardAddresses changes from
        // String[] to EmailAddress[] (Figure 2).
        let s = spec(
            "class User { field forwardAddresses: String[]; }",
            "class EmailAddress { field user: String; field domain: String; }
             class User { field forwardAddresses: EmailAddress[]; }",
        );
        let d = delta(&s, "User");
        assert_eq!(d.kind, ClassUpdate);
        assert_eq!(d.fields_changed, ["forwardAddresses"]);
        assert_eq!(s.added_classes, [ClassName::from("EmailAddress")]);
    }

    #[test]
    fn method_signature_change_is_class_update() {
        let s = spec(
            "class A { method f(x: int): void { } }",
            "class A { method f(x: int, y: int): void { } }",
        );
        let d = delta(&s, "A");
        assert_eq!(d.kind, ClassUpdate);
        assert_eq!(d.methods_sig_changed, ["f"]);
    }

    #[test]
    fn method_addition_and_deletion_are_class_updates() {
        let s = spec(
            "class A { method f(): void { } }",
            "class A { method g(): void { } }",
        );
        let d = delta(&s, "A");
        assert_eq!(d.kind, ClassUpdate);
        assert_eq!(d.methods_added, ["g"]);
        assert_eq!(d.methods_deleted, ["f"]);
    }

    #[test]
    fn layout_change_propagates_to_subclasses() {
        // Deleting a parent field shifts the subclass layout: the paper's
        // "delete a field from a parent class and this change will
        // propagate correctly to the class's descendants" (§2.2).
        let s = spec(
            "class P { field a: int; field b: int; }
             class C extends P { field c: int; }",
            "class P { field b: int; }
             class C extends P { field c: int; }",
        );
        let d = delta(&s, "C");
        assert_eq!(d.kind, ClassUpdate);
        assert!(d.inherited_only, "C's own source is unchanged");
    }

    #[test]
    fn static_changes_are_class_updates() {
        let s = spec(
            "class A { static field n: int; }",
            "class A { static field n: int; static field m: int; }",
        );
        assert_eq!(delta(&s, "A").statics_added, ["m"]);
        assert_eq!(delta(&s, "A").kind, ClassUpdate);
    }

    #[test]
    fn field_reorder_is_class_update() {
        let s = spec(
            "class A { field x: int; field y: int; }",
            "class A { field y: int; field x: int; }",
        );
        let d = delta(&s, "A");
        assert_eq!(d.kind, ClassUpdate);
        assert!(!d.fields_changed.is_empty());
    }

    #[test]
    fn indirect_methods_reference_updated_classes() {
        // B.get reads A.x; A gains a field, so B.get's compiled code holds
        // a stale offset — category (2).
        let s = spec(
            "class A { field x: int; }
             class B { method get(a: A): int { return a.x; } }",
            "class A { field pad: int; field x: int; }
             class B { method get(a: A): int { return a.x; } }",
        );
        assert!(s
            .indirect_methods
            .contains(&MethodRef::new("B", "get")));
        // B itself is unchanged.
        assert!(s.changed.iter().all(|d| d.name.as_str() != "B"));
    }

    #[test]
    fn body_changed_methods_are_not_indirect() {
        let s = spec(
            "class A { field x: int; }
             class B { method get(a: A): int { return a.x; } }",
            "class A { field pad: int; field x: int; }
             class B { method get(a: A): int { return a.x + 0; } }",
        );
        // B.get's bytecode changed → category (1), not (2).
        assert!(!s.indirect_methods.contains(&MethodRef::new("B", "get")));
        assert_eq!(delta(&s, "B").methods_body_changed, ["get"]);
    }

    #[test]
    fn deleted_class_is_recorded() {
        let s = spec("class A { } class B { }", "class A { }");
        assert_eq!(s.deleted_classes, [ClassName::from("B")]);
    }

    #[test]
    fn paper_example_user_configuration_manager() {
        // Figure 2 of the paper, reconstructed in MJ: between 1.3.1 and
        // 1.3.2, User's field type and setter signature change, and
        // ConfigurationManager.loadUser's body changes accordingly.
        let old = "
          class User {
            field forwardAddresses: String[];
            method setForwardedAddresses(f: String[]): void { this.forwardAddresses = f; }
          }
          class ConfigurationManager {
            method loadUser(): User {
              var user: User = new User();
              var f: String[] = new String[1];
              user.setForwardedAddresses(f);
              return user;
            }
          }";
        let new = "
          class EmailAddress {
            field username: String; field domain: String;
            ctor(u: String, d: String) { this.username = u; this.domain = d; }
          }
          class User {
            field forwardAddresses: EmailAddress[];
            method setForwardedAddresses(f: EmailAddress[]): void { this.forwardAddresses = f; }
          }
          class ConfigurationManager {
            method loadUser(): User {
              var user: User = new User();
              var f: EmailAddress[] = new EmailAddress[1];
              user.setForwardedAddresses(f);
              return user;
            }
          }";
        let s = spec(old, new);
        assert_eq!(delta(&s, "User").kind, ClassUpdate);
        assert_eq!(delta(&s, "User").methods_sig_changed, ["setForwardedAddresses"]);
        // loadUser's bytecode changed (new types), so ConfigurationManager
        // is a method-body update, category (1) — matching the paper's
        // description of this exact update.
        assert_eq!(delta(&s, "ConfigurationManager").kind, MethodBodyOnly);
        assert!(!s.is_body_only(), "E&C systems cannot apply this update");
    }
}
