//! The update driver: the paper's five-step protocol (§3).
//!
//! 1. the UPT produces a specification and default transformers
//!    ([`Update::prepare`]);
//! 2. the user signals the VM ([`apply`]);
//! 3. the driver stops threads at a DSU safe point, installing return
//!    barriers and performing OSR as needed, with a timeout;
//! 4. it installs the modified classes: renames old versions, strips
//!    their methods, loads new class files, swaps method bodies, and
//!    invalidates every affected compiled method (inliners included);
//! 5. it runs the update GC, then class transformers, then object
//!    transformers over the update log.
//!
//! Steps 3–5 are implemented by the resumable
//! [`UpdateController`](crate::controller::UpdateController) phase
//! machine; [`apply`] is the synchronous convenience wrapper that steps a
//! controller to completion.

use std::time::Duration;

use jvolve_classfile::{verify, ClassFile, ClassSet, MethodRef};
use jvolve_vm::Vm;

use crate::controller::UpdateController;
use crate::diff::prepare_spec;
use crate::error::UpdateError;
use crate::spec::UpdateSpec;
use crate::transform::default_transformers_source;

/// A prepared update: specification, payload, transformers.
#[derive(Clone, Debug)]
pub struct Update {
    /// The UPT's diff.
    pub spec: UpdateSpec,
    /// The old program version (used for stubs and restricted sets).
    pub old_classes: ClassSet,
    /// The new program version.
    pub new_classes: ClassSet,
    /// MJ source of the `JvolveTransformers` class. Initialized to the
    /// generated defaults; edit before applying to customize (paper
    /// Figure 3).
    pub transformers_source: String,
    /// User-restricted methods (paper category 3).
    pub blacklist: Vec<MethodRef>,
}

impl Update {
    /// Runs the update preparation tool over two program versions.
    ///
    /// # Errors
    ///
    /// Returns [`UpdateError::Empty`] when the versions are identical, or
    /// a compile/verify error if the new version is ill-formed.
    pub fn prepare(
        old: &[ClassFile],
        new: &[ClassFile],
        version_prefix: &str,
    ) -> Result<Update, UpdateError> {
        let mut old_set: ClassSet = old.iter().cloned().collect();
        let mut new_set: ClassSet = new.iter().cloned().collect();
        for b in jvolve_lang::builtins::builtin_classes() {
            old_set.insert(b.clone());
            new_set.insert(b);
        }

        // The paper relies on bytecode verification of updated classes.
        verify::verify_all(&new_set, new.iter())
            .map_err(|e| UpdateError::Compile(e.to_string()))?;

        let spec = prepare_spec(&old_set, &new_set, version_prefix);
        if spec.is_empty() {
            return Err(UpdateError::Empty);
        }
        let transformers_source = default_transformers_source(&spec, &old_set, &new_set);
        Ok(Update {
            spec,
            old_classes: old_set,
            new_classes: new_set,
            transformers_source,
            blacklist: Vec::new(),
        })
    }

    /// Rebuilds an update from previously emitted parts — a spec, the two
    /// payload class lists, and a transformer source (the UPT's on-disk
    /// bundle, see [`crate::bundle`]). The payload is re-verified and the
    /// spec is cross-checked against a fresh diff of the payload, so a
    /// stale or tampered spec is rejected before anything touches a VM.
    ///
    /// # Errors
    ///
    /// Returns [`UpdateError::Compile`] if the new version fails
    /// verification, [`UpdateError::Empty`] when the versions are
    /// identical, or [`UpdateError::BadSpec`] when `spec` does not match
    /// the payload diff.
    pub fn from_parts(
        spec: UpdateSpec,
        old: &[ClassFile],
        new: &[ClassFile],
        transformers_source: impl Into<String>,
    ) -> Result<Update, UpdateError> {
        let mut update = Update::prepare(old, new, &spec.version_prefix)?;
        if update.spec != spec {
            return Err(UpdateError::BadSpec {
                message: "spec does not match a fresh diff of the payload".into(),
            });
        }
        update.transformers_source = transformers_source.into();
        Ok(update)
    }

    /// Replaces the transformer source (developer customization).
    pub fn set_transformers_source(&mut self, source: impl Into<String>) {
        self.transformers_source = source.into();
    }

    /// Adds user-restricted methods (paper category 3).
    pub fn blacklist(&mut self, methods: impl IntoIterator<Item = MethodRef>) {
        self.blacklist.extend(methods);
    }
}

/// Knobs for [`apply`].
#[derive(Clone, Debug)]
pub struct ApplyOptions {
    /// Scheduler slices to wait for a DSU safe point before aborting (the
    /// paper uses a 15-second timeout; one slice is our virtual
    /// millisecond-scale unit).
    pub timeout_slices: u64,
    /// Install return barriers on blocking frames (paper §3.2). Disabling
    /// degrades to plain polling — exposed for the ablation benchmark.
    pub use_return_barriers: bool,
    /// Use OSR to lift category-2 restrictions (paper §3.2). Disabling
    /// makes base-compiled indirect frames block like everything else.
    pub use_osr: bool,
    /// The paper's §3.5 future work (UpStare-style): migrate *changed*
    /// methods while they run, deriving the program-point map by aligning
    /// the old and new bytecode (see [`crate::migrate`]). Off by default —
    /// enabling it asserts, as the paper's user would, that the surviving
    /// locals and operand stack mean the same thing at the mapped point.
    pub migrate_active_methods: bool,
    /// Objects each `LazyMigrating` controller step transforms from the
    /// scavenger worklist (lazy mode only; clamped to at least 1). Larger
    /// batches drain the epoch in fewer steps; smaller batches yield back
    /// to the embedder more often.
    pub lazy_scavenge_batch: usize,
    /// Heap cells each `LazyMigrating` controller step covers during the
    /// SATB discovery scan and the forwarding-collapse sweep (lazy mode
    /// only; clamped to at least 1). These are linear walks over cells,
    /// not per-object transformer runs, so the budget is much larger than
    /// [`ApplyOptions::lazy_scavenge_batch`].
    pub lazy_step_cells: usize,
}

impl Default for ApplyOptions {
    fn default() -> Self {
        ApplyOptions {
            timeout_slices: 15_000,
            use_return_barriers: true,
            use_osr: true,
            migrate_active_methods: false,
            lazy_scavenge_batch: 128,
            lazy_step_cells: 4096,
        }
    }
}

/// Phase timings and counters for one applied update (paper §4.1 reports
/// exactly this breakdown: suspend/check < 1 ms, classloading < 20 ms,
/// pause dominated by GC + transformers).
#[derive(Clone, Debug, Default)]
pub struct UpdateStats {
    /// Slices executed while waiting for a DSU safe point.
    pub slices_waited: u64,
    /// Return barriers installed while waiting.
    pub barriers_installed: usize,
    /// Frames OSR-replaced at the safe point.
    pub osr_replacements: usize,
    /// Changed-method frames migrated to their new version (only with
    /// [`ApplyOptions::migrate_active_methods`]).
    pub active_migrations: usize,
    /// New classes loaded (class updates + added classes + transformers).
    pub classes_loaded: usize,
    /// Method bodies swapped in place.
    pub bodies_swapped: usize,
    /// Compiled methods invalidated (indirect + inliners).
    pub methods_invalidated: usize,
    /// Objects transformed by the update GC + transformer pass.
    pub objects_transformed: usize,
    /// Cells the update GC copied (duplicated objects count twice).
    pub gc_copied_cells: usize,
    /// Words the update GC copied, headers included.
    pub gc_copied_words: usize,
    /// Time spent reaching the safe point (thread-suspend analogue).
    pub safepoint_time: Duration,
    /// Time spent loading/installing classes and transformers.
    pub classload_time: Duration,
    /// Update-GC time. Zero in lazy mode, which never runs a commit
    /// collection — the in-pause heap work is [`UpdateStats::arm_time`].
    pub gc_time: Duration,
    /// Class + object transformer execution time. In lazy mode this is
    /// only the class transformers; object-transformer time lands in
    /// [`UpdateStats::lazy_time`].
    pub transform_time: Duration,
    /// Lazy only: time to arm the read barrier at commit —
    /// `Vm::begin_lazy_migration`, i.e. snapshotting the allocation
    /// watermark and bumping the dispatch epoch. This is the entire
    /// in-pause heap cost of a lazy commit and is independent of heap
    /// size (the O(roots) claim lazybench gates on). Zero for eager.
    pub arm_time: Duration,
    /// Time spent in the `LazyMigrating` phase: SATB scan batches,
    /// scavenger batches, collapse batches, epoch teardown. Zero for
    /// eager updates. Unlike the other buckets this is *not* pause time —
    /// the guest runs concurrently with the epoch.
    pub lazy_time: Duration,
    /// Portion of [`UpdateStats::lazy_time`] spent in SATB discovery
    /// scan batches (informational sub-bucket; not added separately by
    /// [`UpdateStats::phase_sum`]).
    pub lazy_scan_time: Duration,
    /// Portion of [`UpdateStats::lazy_time`] spent in forwarding-collapse
    /// batches (informational sub-bucket; not added separately by
    /// [`UpdateStats::phase_sum`]).
    pub lazy_collapse_time: Duration,
    /// End-to-end wall-clock pause, measured independently of the phases.
    /// Slightly larger than [`UpdateStats::phase_sum`]: it also covers
    /// inter-phase bookkeeping (restricted-set checks, transformer-class
    /// retirement).
    pub total_time: Duration,
}

impl UpdateStats {
    /// Sum of the timed phases (safepoint + classload + GC + transform,
    /// plus the barrier arm and the lazy epoch when one ran). The paper's
    /// Figure 6 stacks the first four; the gap to
    /// [`UpdateStats::total_time`] is untimed bookkeeping.
    /// [`UpdateStats::lazy_scan_time`] and
    /// [`UpdateStats::lazy_collapse_time`] are sub-buckets of
    /// [`UpdateStats::lazy_time`] and are deliberately not added again.
    pub fn phase_sum(&self) -> Duration {
        self.safepoint_time
            + self.classload_time
            + self.gc_time
            + self.transform_time
            + self.arm_time
            + self.lazy_time
    }
}

/// Applies a prepared update to a running VM (paper steps 3–5).
///
/// On success the VM is running the new program version: new code is
/// installed, every existing object conforms to its new class definition,
/// and invalidated methods recompile (and re-optimize) on demand.
///
/// This is the synchronous wrapper over the resumable
/// [`UpdateController`]: it constructs a controller and steps it to
/// completion without interleaving any embedder work. Use the controller
/// directly to keep serving requests between safe-point polls, attach
/// event sinks, or inspect the phase the update is in.
///
/// # Errors
///
/// * [`UpdateError::Timeout`] — no DSU safe point was reached; the VM is
///   left running the old version, unchanged (barriers cleared).
/// * [`UpdateError::BadSpec`] / [`UpdateError::Compile`] /
///   [`UpdateError::Vm`] during installation — the controller rolled the
///   VM back to the old version.
/// * [`UpdateError::Vm`] during heap transformation — the caller should
///   treat the VM as poisoned (no rollback is possible once object
///   transformers have started).
pub fn apply(vm: &mut Vm, update: &Update, opts: &ApplyOptions) -> Result<UpdateStats, UpdateError> {
    UpdateController::new(update, opts.clone()).run_to_completion(vm)
}
