//! The update driver: the paper's five-step protocol (§3).
//!
//! 1. the UPT produces a specification and default transformers
//!    ([`Update::prepare`]);
//! 2. the user signals the VM ([`apply`]);
//! 3. the driver stops threads at a DSU safe point, installing return
//!    barriers and performing OSR as needed, with a timeout;
//! 4. it installs the modified classes: renames old versions, strips
//!    their methods, loads new class files, swaps method bodies, and
//!    invalidates every affected compiled method (inliners included);
//! 5. it runs the update GC, then class transformers, then object
//!    transformers over the update log.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use jvolve_classfile::{verify, ClassFile, ClassSet, MethodRef};
use jvolve_vm::{MethodId, Vm};

use crate::diff::prepare_spec;
use crate::error::UpdateError;
use crate::migrate::method_pc_map;
use crate::restricted::{barrier_targets, check_stacks, Category, RestrictedSet, StackCheck};
use crate::spec::UpdateSpec;
use crate::transform::{
    class_transformer_name, compile_transformers, default_transformers_source,
    object_transformer_name, TRANSFORMERS_CLASS,
};

/// A prepared update: specification, payload, transformers.
#[derive(Clone, Debug)]
pub struct Update {
    /// The UPT's diff.
    pub spec: UpdateSpec,
    /// The old program version (used for stubs and restricted sets).
    pub old_classes: ClassSet,
    /// The new program version.
    pub new_classes: ClassSet,
    /// MJ source of the `JvolveTransformers` class. Initialized to the
    /// generated defaults; edit before applying to customize (paper
    /// Figure 3).
    pub transformers_source: String,
    /// User-restricted methods (paper category 3).
    pub blacklist: Vec<MethodRef>,
}

impl Update {
    /// Runs the update preparation tool over two program versions.
    ///
    /// # Errors
    ///
    /// Returns [`UpdateError::Empty`] when the versions are identical, or
    /// a compile/verify error if the new version is ill-formed.
    pub fn prepare(
        old: &[ClassFile],
        new: &[ClassFile],
        version_prefix: &str,
    ) -> Result<Update, UpdateError> {
        let mut old_set: ClassSet = old.iter().cloned().collect();
        let mut new_set: ClassSet = new.iter().cloned().collect();
        for b in jvolve_lang::builtins::builtin_classes() {
            old_set.insert(b.clone());
            new_set.insert(b);
        }

        // The paper relies on bytecode verification of updated classes.
        verify::verify_all(&new_set, new.iter())
            .map_err(|e| UpdateError::Compile(e.to_string()))?;

        let spec = prepare_spec(&old_set, &new_set, version_prefix);
        if spec.is_empty() {
            return Err(UpdateError::Empty);
        }
        let transformers_source = default_transformers_source(&spec, &old_set, &new_set);
        Ok(Update {
            spec,
            old_classes: old_set,
            new_classes: new_set,
            transformers_source,
            blacklist: Vec::new(),
        })
    }

    /// Replaces the transformer source (developer customization).
    pub fn set_transformers_source(&mut self, source: impl Into<String>) {
        self.transformers_source = source.into();
    }

    /// Adds user-restricted methods (paper category 3).
    pub fn blacklist(&mut self, methods: impl IntoIterator<Item = MethodRef>) {
        self.blacklist.extend(methods);
    }
}

/// Knobs for [`apply`].
#[derive(Clone, Debug)]
pub struct ApplyOptions {
    /// Scheduler slices to wait for a DSU safe point before aborting (the
    /// paper uses a 15-second timeout; one slice is our virtual
    /// millisecond-scale unit).
    pub timeout_slices: u64,
    /// Install return barriers on blocking frames (paper §3.2). Disabling
    /// degrades to plain polling — exposed for the ablation benchmark.
    pub use_return_barriers: bool,
    /// Use OSR to lift category-2 restrictions (paper §3.2). Disabling
    /// makes base-compiled indirect frames block like everything else.
    pub use_osr: bool,
    /// The paper's §3.5 future work (UpStare-style): migrate *changed*
    /// methods while they run, deriving the program-point map by aligning
    /// the old and new bytecode (see [`crate::migrate`]). Off by default —
    /// enabling it asserts, as the paper's user would, that the surviving
    /// locals and operand stack mean the same thing at the mapped point.
    pub migrate_active_methods: bool,
}

impl Default for ApplyOptions {
    fn default() -> Self {
        ApplyOptions {
            timeout_slices: 15_000,
            use_return_barriers: true,
            use_osr: true,
            migrate_active_methods: false,
        }
    }
}

/// Phase timings and counters for one applied update (paper §4.1 reports
/// exactly this breakdown: suspend/check < 1 ms, classloading < 20 ms,
/// pause dominated by GC + transformers).
#[derive(Clone, Debug, Default)]
pub struct UpdateStats {
    /// Slices executed while waiting for a DSU safe point.
    pub slices_waited: u64,
    /// Return barriers installed while waiting.
    pub barriers_installed: usize,
    /// Frames OSR-replaced at the safe point.
    pub osr_replacements: usize,
    /// Changed-method frames migrated to their new version (only with
    /// [`ApplyOptions::migrate_active_methods`]).
    pub active_migrations: usize,
    /// New classes loaded (class updates + added classes + transformers).
    pub classes_loaded: usize,
    /// Method bodies swapped in place.
    pub bodies_swapped: usize,
    /// Compiled methods invalidated (indirect + inliners).
    pub methods_invalidated: usize,
    /// Objects transformed by the update GC + transformer pass.
    pub objects_transformed: usize,
    /// Cells the update GC copied (duplicated objects count twice).
    pub gc_copied_cells: usize,
    /// Words the update GC copied, headers included.
    pub gc_copied_words: usize,
    /// Time spent reaching the safe point (thread-suspend analogue).
    pub safepoint_time: Duration,
    /// Time spent loading/installing classes and transformers.
    pub classload_time: Duration,
    /// Update-GC time.
    pub gc_time: Duration,
    /// Class + object transformer execution time.
    pub transform_time: Duration,
    /// End-to-end wall-clock pause, measured independently of the phases.
    /// Slightly larger than [`UpdateStats::phase_sum`]: it also covers
    /// inter-phase bookkeeping (restricted-set checks, transformer-class
    /// retirement).
    pub total_time: Duration,
}

impl UpdateStats {
    /// Sum of the four timed phases (safepoint + classload + GC +
    /// transform). The paper's Figure 6 stacks exactly these; the gap to
    /// [`UpdateStats::total_time`] is untimed bookkeeping.
    pub fn phase_sum(&self) -> Duration {
        self.safepoint_time + self.classload_time + self.gc_time + self.transform_time
    }
}

/// Applies a prepared update to a running VM (paper steps 3–5).
///
/// On success the VM is running the new program version: new code is
/// installed, every existing object conforms to its new class definition,
/// and invalidated methods recompile (and re-optimize) on demand.
///
/// # Errors
///
/// * [`UpdateError::Timeout`] — no DSU safe point was reached; the VM is
///   left running the old version, unchanged (barriers cleared).
/// * [`UpdateError::Compile`] / [`UpdateError::Vm`] — installation
///   failures; the caller should treat the VM as poisoned.
pub fn apply(vm: &mut Vm, update: &Update, opts: &ApplyOptions) -> Result<UpdateStats, UpdateError> {
    let mut stats = UpdateStats::default();
    let t_total = Instant::now();

    // ---- step 3: reach a DSU safe point -----------------------------------
    let t_safe = Instant::now();
    let restricted = RestrictedSet::compute(&update.spec, &update.old_classes, &update.blacklist);
    let (check, migrations) = wait_for_safe_point(vm, update, &restricted, opts, &mut stats)?;
    vm.clear_return_barriers();
    stats.safepoint_time = t_safe.elapsed();

    // ---- step 4: install modified classes ----------------------------------
    let t_load = Instant::now();
    let mut remap = HashMap::new();
    let mut invalidated: Vec<MethodId> = Vec::new();

    // Rename old versions out of the way and strip their methods
    // (paper §2.3/§3.3).
    let mut old_ids = HashMap::new();
    for delta in update.spec.class_updates() {
        let old_id = vm
            .registry()
            .class_id(&delta.name)
            .ok_or_else(|| UpdateError::Vm(jvolve_vm::VmError::ResolutionError {
                message: format!("updated class {} not loaded", delta.name),
            }))?;
        vm.registry_mut().rename_class(old_id, update.spec.old_name(&delta.name))?;
        old_ids.insert(delta.name.clone(), old_id);
    }
    for &old_id in old_ids.values() {
        invalidated.extend(vm.registry().methods_of(old_id));
        vm.registry_mut().strip_methods(old_id);
    }

    // Load the new versions of updated classes plus added classes, as one
    // batch (they may reference each other).
    let mut batch: Vec<ClassFile> = Vec::new();
    for delta in update.spec.class_updates() {
        batch.push(
            update
                .new_classes
                .get(&delta.name)
                .expect("spec classes exist in the new version")
                .clone(),
        );
    }
    for name in &update.spec.added_classes {
        batch.push(update.new_classes.get(name).expect("added class exists").clone());
    }
    let new_ids = vm.load_classes(&batch)?;
    stats.classes_loaded += new_ids.len();
    for (file, id) in batch.iter().zip(&new_ids) {
        if let Some(&old_id) = old_ids.get(&file.name) {
            remap.insert(old_id, *id);
        }
    }

    // Method-body updates: swap bytecode in place and invalidate.
    for delta in update.spec.body_only_updates() {
        let class_id = vm
            .registry()
            .class_id(&delta.name)
            .expect("body-updated class is loaded");
        let new_class = update.new_classes.get(&delta.name).expect("class in new version");
        for mname in &delta.methods_body_changed {
            let def = new_class.find_method(mname).expect("changed method exists").clone();
            let mid = vm.registry_mut().replace_method_body(class_id, mname, def)?;
            invalidated.push(mid);
            stats.bodies_swapped += 1;
        }
    }

    // Indirect (category-2) methods: invalidate so the JIT re-resolves
    // offsets on next invocation.
    for mref in &update.spec.indirect_methods {
        if let Some(cid) = vm.registry().class_id(&mref.class) {
            if let Some(mid) = vm.registry().find_method(cid, &mref.method) {
                vm.registry_mut().invalidate(mid);
                invalidated.push(mid);
                stats.methods_invalidated += 1;
            }
        }
    }
    // Inlined copies of anything invalidated must go too (paper §3.2).
    let inliners = vm.registry_mut().invalidate_inliners(&invalidated);
    stats.methods_invalidated += inliners.len();

    // OSR-replace on-stack base-compiled category-2 frames now that the
    // new metadata is installed (paper: "the exact timing of OSR for DSU
    // requires the VM to first load modified classes").
    if opts.use_osr {
        for f in &check.osr_candidates {
            vm.osr_replace(f.thread, f.frame)?;
            stats.osr_replacements += 1;
        }
    }

    // §3.5 future work: migrate changed methods while they run. The new
    // method version is looked up through the *current* name (the new
    // class for class updates, the same class for body updates).
    for m in &migrations {
        let class_id = vm.registry().class_id(&m.method.class).ok_or_else(|| {
            UpdateError::Vm(jvolve_vm::VmError::ResolutionError {
                message: format!("migration target class {} missing", m.method.class),
            })
        })?;
        let new_mid = vm.registry().find_method(class_id, &m.method.method).ok_or_else(|| {
            UpdateError::Vm(jvolve_vm::VmError::ResolutionError {
                message: format!("migration target method {} missing", m.method),
            })
        })?;
        vm.osr_migrate(m.thread, m.frame, new_mid, m.new_pc)?;
        stats.active_migrations += 1;
    }

    // Compile and load the transformer class (access-override mode).
    let transformer_classes = compile_transformers(
        &update.transformers_source,
        &update.spec,
        &update.old_classes,
        &update.new_classes,
    )
    .map_err(|e| UpdateError::Compile(e.to_string()))?;
    vm.load_classes(&transformer_classes)?;
    stats.classes_loaded += transformer_classes.len();

    // Map each new class to its object transformer.
    let mut transformer_for = HashMap::new();
    for delta in update.spec.class_updates() {
        let new_id = vm.registry().class_id(&delta.name).expect("new class loaded");
        let tclass = vm
            .registry()
            .class_id(&jvolve_classfile::ClassName::from(TRANSFORMERS_CLASS))
            .ok_or_else(|| UpdateError::Compile("transformer class missing".into()))?;
        let tname = object_transformer_name(&delta.name);
        let mid = vm.registry().find_method(tclass, &tname).ok_or_else(|| {
            UpdateError::Compile(format!("transformer {tname} missing from source"))
        })?;
        transformer_for.insert(new_id, mid);
    }
    stats.classload_time = t_load.elapsed();

    // ---- step 5: update GC + transformers (paper §3.4) ----------------------
    let t_gc = Instant::now();
    let gc_out = vm.collect_for_update(remap, transformer_for)?;
    stats.gc_time = t_gc.elapsed();
    stats.gc_copied_cells = gc_out.copied_cells;
    stats.gc_copied_words = gc_out.copied_words;

    let t_tf = Instant::now();
    for delta in update.spec.class_updates() {
        let tname = class_transformer_name(&delta.name);
        // Class transformers are optional in customized sources.
        let tclass = vm
            .registry()
            .class_id(&jvolve_classfile::ClassName::from(TRANSFORMERS_CLASS))
            .expect("transformer class loaded");
        if vm.registry().find_method(tclass, &tname).is_some() {
            vm.call_static_sync(TRANSFORMERS_CLASS, &tname, &[])?;
        }
    }
    stats.objects_transformed = vm.pending_transforms();
    vm.transform_pending()?;
    stats.transform_time = t_tf.elapsed();

    // The transformer class is only meaningful during the update; rename
    // it out of the way so the next update can load a fresh one (the
    // paper's VM deletes it).
    retire_transformer_class(vm, &update.spec.version_prefix);

    stats.total_time = t_total.elapsed();
    Ok(stats)
}

/// A planned active-method migration (paper §3.5 future work).
#[derive(Debug, Clone)]
struct PlannedMigration {
    thread: jvolve_vm::ThreadId,
    frame: usize,
    method: jvolve_classfile::MethodRef,
    new_pc: u32,
}

/// Waits (running the program) until a DSU safe point, installing return
/// barriers on blocking frames. With active-method migration enabled,
/// changed-method frames whose pc survives the bytecode alignment are
/// lifted out of the blocking set and scheduled for migration.
fn wait_for_safe_point(
    vm: &mut Vm,
    update: &Update,
    restricted: &RestrictedSet,
    opts: &ApplyOptions,
    stats: &mut UpdateStats,
) -> Result<(StackCheck, Vec<PlannedMigration>), UpdateError> {
    loop {
        let mut check = check_stacks(vm, restricted);
        if !opts.use_osr {
            // Ablation: treat OSR candidates as blocking.
            check.blocking.append(&mut check.osr_candidates);
        }

        let mut migrations = Vec::new();
        if opts.migrate_active_methods {
            let mut residual = Vec::new();
            for finding in check.blocking.drain(..) {
                let plan = (finding.category == Category::Changed)
                    .then(|| {
                        let frame = vm
                            .thread(finding.thread)
                            .and_then(|t| t.frames.get(finding.frame))?;
                        if !frame.compiled.osr_capable() {
                            return None;
                        }
                        let map = method_pc_map(
                            &update.old_classes,
                            &update.new_classes,
                            &finding.method,
                        )?;
                        let new_pc = map.lookup(frame.pc)?;
                        Some(PlannedMigration {
                            thread: finding.thread,
                            frame: finding.frame,
                            method: finding.method.clone(),
                            new_pc,
                        })
                    })
                    .flatten();
                match plan {
                    Some(p) => migrations.push(p),
                    None => residual.push(finding),
                }
            }
            check.blocking = residual;
        }

        if check.safe() {
            return Ok((check, migrations));
        }
        if stats.slices_waited >= opts.timeout_slices {
            vm.clear_return_barriers();
            let mut blocking: Vec<String> =
                check.blocking.iter().map(|f| f.method.to_string()).collect();
            blocking.sort();
            blocking.dedup();
            return Err(UpdateError::Timeout {
                blocking,
                slices_waited: stats.slices_waited,
            });
        }
        if opts.use_return_barriers {
            for (tid, frame) in barrier_targets(&check) {
                let already = vm
                    .thread(tid)
                    .and_then(|t| t.frames.get(frame))
                    .is_some_and(|f| f.return_barrier);
                if !already {
                    vm.install_return_barrier(tid, frame)?;
                    stats.barriers_installed += 1;
                }
            }
        }
        vm.step_slice();
        stats.slices_waited += 1;
    }
}

/// Renames the spent transformer class out of the global namespace.
fn retire_transformer_class(vm: &mut Vm, prefix: &str) {
    let name = jvolve_classfile::ClassName::from(TRANSFORMERS_CLASS);
    if let Some(id) = vm.registry().class_id(&name) {
        let retired = jvolve_classfile::ClassName::from(format!("{prefix}{TRANSFORMERS_CLASS}"));
        let _ = vm.registry_mut().rename_class(id, retired);
        vm.registry_mut().strip_methods(id);
    }
}
