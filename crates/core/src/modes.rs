//! Baseline updater modes the paper compares against (§5).
//!
//! * [`apply_body_only`] — the HotSwap / "edit and continue" model:
//!   method-body replacement only. The paper's survey finds such systems
//!   support only 9 of the 22 studied updates.
//! * [`apply_lazy`] — the JDrums/DVM model: objects are migrated on first
//!   access through per-access indirection checks, trading the paper's
//!   one-time GC pause for persistent steady-state overhead. Requires a VM
//!   configured with [`VmConfig::lazy_indirection`].
//!
//! [`VmConfig::lazy_indirection`]: jvolve_vm::VmConfig

use std::collections::HashMap;

use jvolve_vm::Vm;

use crate::driver::Update;
use crate::error::UpdateError;

/// Applies an update under the method-body-only (E&C) model.
///
/// No safe-point machinery is needed beyond what the VM already provides:
/// the new body takes effect at the *next* invocation of each method, as
/// in HotSwap. Class updates are rejected.
///
/// # Errors
///
/// [`UpdateError::Unsupported`] when the update is not body-only.
pub fn apply_body_only(vm: &mut Vm, update: &Update) -> Result<usize, UpdateError> {
    if !update.spec.is_body_only() {
        let offender = update
            .spec
            .class_updates()
            .next()
            .map(|d| d.name.to_string())
            .or_else(|| update.spec.added_classes.first().map(|c| c.to_string()))
            .or_else(|| update.spec.deleted_classes.first().map(|c| c.to_string()))
            .unwrap_or_default();
        return Err(UpdateError::Unsupported {
            reason: format!(
                "method-body-only systems cannot apply class-signature changes (e.g. {offender})"
            ),
        });
    }
    let mut swapped = 0;
    for delta in update.spec.body_only_updates() {
        let class_id = vm.registry().class_id(&delta.name).ok_or_else(|| {
            UpdateError::Vm(jvolve_vm::VmError::ResolutionError {
                message: format!("class {} not loaded", delta.name),
            })
        })?;
        let new_class = update.new_classes.get(&delta.name).expect("class in new version");
        for mname in &delta.methods_body_changed {
            let def = new_class.find_method(mname).expect("method exists").clone();
            vm.registry_mut().replace_method_body(class_id, mname, def)?;
            swapped += 1;
        }
    }
    Ok(swapped)
}

/// Applies an update under the lazy-indirection model.
///
/// Installs new class versions and arms the VM's per-access migration
/// check; objects convert on first touch using the VM's built-in default
/// transformation (same-named, same-typed fields carry over). Custom
/// transformers are not supported in this mode — one of the expressiveness
/// gaps the paper notes for lazy systems.
///
/// # Errors
///
/// Propagates load failures; fails if the VM is not in lazy mode.
pub fn apply_lazy(vm: &mut Vm, update: &Update) -> Result<(), UpdateError> {
    if !vm.config().lazy_indirection {
        return Err(UpdateError::Unsupported {
            reason: "VM not configured with lazy_indirection".into(),
        });
    }

    // Install classes exactly as the eager driver does (rename + load),
    // but skip the GC: migration happens on access.
    let mut remap = HashMap::new();
    let mut batch = Vec::new();
    let mut old_ids = Vec::new();
    for delta in update.spec.class_updates() {
        let old_id = vm.registry().class_id(&delta.name).ok_or_else(|| {
            UpdateError::Vm(jvolve_vm::VmError::ResolutionError {
                message: format!("class {} not loaded", delta.name),
            })
        })?;
        vm.registry_mut().rename_class(old_id, update.spec.old_name(&delta.name))?;
        vm.registry_mut().strip_methods(old_id);
        old_ids.push((delta.name.clone(), old_id));
        batch.push(update.new_classes.get(&delta.name).expect("class exists").clone());
    }
    for name in &update.spec.added_classes {
        batch.push(update.new_classes.get(name).expect("added class exists").clone());
    }
    let new_ids = vm.load_classes(&batch)?;
    for (file, id) in batch.iter().zip(&new_ids) {
        if let Some((_, old_id)) = old_ids.iter().find(|(n, _)| n == &file.name) {
            remap.insert(*old_id, *id);
        }
    }

    for delta in update.spec.body_only_updates() {
        let class_id = vm.registry().class_id(&delta.name).expect("loaded");
        let new_class = update.new_classes.get(&delta.name).expect("exists");
        for mname in &delta.methods_body_changed {
            let def = new_class.find_method(mname).expect("exists").clone();
            vm.registry_mut().replace_method_body(class_id, mname, def)?;
        }
    }
    for mref in &update.spec.indirect_methods {
        if let Some(cid) = vm.registry().class_id(&mref.class) {
            if let Some(mid) = vm.registry().find_method(cid, &mref.method) {
                vm.registry_mut().invalidate(mid);
            }
        }
    }

    vm.begin_lazy_update(remap);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvolve_vm::{Value, VmConfig};

    fn prepare(old_src: &str, new_src: &str) -> (Vm, Update) {
        let old = jvolve_lang::compile(old_src).unwrap();
        let new = jvolve_lang::compile(new_src).unwrap();
        let mut vm = Vm::new(VmConfig::small());
        vm.load_classes(&old).unwrap();
        let update = Update::prepare(&old, &new, "v1_").unwrap();
        (vm, update)
    }

    #[test]
    fn body_only_swaps_bodies() {
        let (mut vm, update) = prepare(
            "class M { static method f(): int { return 1; } }",
            "class M { static method f(): int { return 2; } }",
        );
        assert_eq!(
            vm.call_static_sync("M", "f", &[]).unwrap(),
            Some(Value::Int(1))
        );
        let swapped = apply_body_only(&mut vm, &update).unwrap();
        assert_eq!(swapped, 1);
        assert_eq!(
            vm.call_static_sync("M", "f", &[]).unwrap(),
            Some(Value::Int(2))
        );
    }

    #[test]
    fn body_only_rejects_class_updates() {
        let (mut vm, update) = prepare(
            "class M { field x: int; }",
            "class M { field x: int; field y: int; }",
        );
        let err = apply_body_only(&mut vm, &update).unwrap_err();
        assert!(matches!(err, UpdateError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn lazy_requires_lazy_vm() {
        let (mut vm, update) = prepare(
            "class M { field x: int; }",
            "class M { field x: int; field y: int; }",
        );
        let err = apply_lazy(&mut vm, &update).unwrap_err();
        assert!(matches!(err, UpdateError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn lazy_applies_class_update_with_on_access_migration() {
        let old_src = "
          class Point { field x: int; field y: int;
            ctor(x: int, y: int) { this.x = x; this.y = y; } }
          class Holder { static field p: Point; }
          class Main {
            static method main(): void { Holder.p = new Point(3, 4); }
            static method readx(): int { return Holder.p.x; }
          }";
        let new_src = "
          class Point { field x: int; field y: int; field z: int;
            ctor(x: int, y: int) { this.x = x; this.y = y; this.z = 0; } }
          class Holder { static field p: Point; }
          class Main {
            static method main(): void { Holder.p = new Point(3, 4); }
            static method readx(): int { return Holder.p.x; }
          }";
        let old = jvolve_lang::compile(old_src).unwrap();
        let new = jvolve_lang::compile(new_src).unwrap();
        let mut vm = Vm::new(VmConfig { lazy_indirection: true, ..VmConfig::small() });
        vm.load_classes(&old).unwrap();
        vm.spawn("Main", "main").unwrap();
        assert!(vm.run_to_completion(10_000));

        let update = Update::prepare(&old, &new, "v1_").unwrap();
        apply_lazy(&mut vm, &update).unwrap();
        // Main.readx was invalidated (indirect) and recompiles against the
        // new Point; the object migrates on first access.
        assert_eq!(
            vm.call_static_sync("Main", "readx", &[]).unwrap(),
            Some(Value::Int(3))
        );
    }
}
