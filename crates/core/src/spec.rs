//! The update specification produced by the update preparation tool.
//!
//! The paper's UPT "generates an update specification, which identifies
//! new and updated classes" (§2.1) and "groups changes into three
//! categories" (§3.1): class updates, method body updates, and indirect
//! method updates. This module is that file format (serializable to JSON,
//! standing in for the on-disk spec file).

use jvolve_classfile::{ClassName, MethodRef};
use jvolve_json::Json;

/// How a class changed between versions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClassChangeKind {
    /// The class *signature* changed: fields or methods added/deleted,
    /// types changed, superclass changed — or an ancestor's fields changed
    /// (which shifts this class's layout). Instances must be transformed.
    ClassUpdate,
    /// Only method bodies changed; metadata, layout and TIB shape are
    /// identical, so the VM swaps bytecode and invalidates compiled code.
    MethodBodyOnly,
}

/// Change record for one class present in both versions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassDelta {
    /// Class name.
    pub name: ClassName,
    /// Classification.
    pub kind: ClassChangeKind,
    /// Instance fields added in the new version.
    pub fields_added: Vec<String>,
    /// Instance fields deleted.
    pub fields_deleted: Vec<String>,
    /// Instance fields whose type or modifiers changed.
    pub fields_changed: Vec<String>,
    /// Static fields added.
    pub statics_added: Vec<String>,
    /// Static fields deleted.
    pub statics_deleted: Vec<String>,
    /// Static fields whose type or modifiers changed.
    pub statics_changed: Vec<String>,
    /// Methods added.
    pub methods_added: Vec<String>,
    /// Methods deleted.
    pub methods_deleted: Vec<String>,
    /// Methods whose body changed but whose signature did not.
    pub methods_body_changed: Vec<String>,
    /// Methods whose signature changed.
    pub methods_sig_changed: Vec<String>,
    /// Whether the superclass changed.
    pub superclass_changed: bool,
    /// Whether this delta exists only because an ancestor's layout
    /// changed (the class's own source is identical).
    pub inherited_only: bool,
}

impl ClassDelta {
    /// A delta with no recorded changes (used as a builder seed).
    pub fn empty(name: ClassName, kind: ClassChangeKind) -> Self {
        ClassDelta {
            name,
            kind,
            fields_added: Vec::new(),
            fields_deleted: Vec::new(),
            fields_changed: Vec::new(),
            statics_added: Vec::new(),
            statics_deleted: Vec::new(),
            statics_changed: Vec::new(),
            methods_added: Vec::new(),
            methods_deleted: Vec::new(),
            methods_body_changed: Vec::new(),
            methods_sig_changed: Vec::new(),
            superclass_changed: false,
            inherited_only: false,
        }
    }

    /// Whether any *own* (non-inherited) signature-level change exists.
    pub fn signature_changed(&self) -> bool {
        !self.fields_added.is_empty()
            || !self.fields_deleted.is_empty()
            || !self.fields_changed.is_empty()
            || !self.statics_added.is_empty()
            || !self.statics_deleted.is_empty()
            || !self.statics_changed.is_empty()
            || !self.methods_added.is_empty()
            || !self.methods_deleted.is_empty()
            || !self.methods_sig_changed.is_empty()
            || self.superclass_changed
    }

    /// Whether the instance layout changed (own fields only).
    pub fn layout_changed(&self) -> bool {
        !self.fields_added.is_empty()
            || !self.fields_deleted.is_empty()
            || !self.fields_changed.is_empty()
            || self.superclass_changed
    }
}

/// The complete update specification for one release transition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UpdateSpec {
    /// Prefix prepended to old class names during the update
    /// (e.g. `v131_`).
    pub version_prefix: String,
    /// Changed classes (both kinds).
    pub changed: Vec<ClassDelta>,
    /// Classes only present in the new version.
    pub added_classes: Vec<ClassName>,
    /// Classes only present in the old version.
    pub deleted_classes: Vec<ClassName>,
    /// Category-(2) methods (paper §3.1): bytecode unchanged but the
    /// compiled representation may change because the bytecode references
    /// an updated class.
    pub indirect_methods: Vec<MethodRef>,
}

impl UpdateSpec {
    /// Whether nothing changed at all.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty() && self.added_classes.is_empty() && self.deleted_classes.is_empty()
    }

    /// Class deltas that are full class updates.
    pub fn class_updates(&self) -> impl Iterator<Item = &ClassDelta> {
        self.changed.iter().filter(|d| d.kind == ClassChangeKind::ClassUpdate)
    }

    /// Class deltas that are method-body-only updates.
    pub fn body_only_updates(&self) -> impl Iterator<Item = &ClassDelta> {
        self.changed.iter().filter(|d| d.kind == ClassChangeKind::MethodBodyOnly)
    }

    /// Whether a method-body-only ("edit and continue") system could apply
    /// this update: no class updates, no added/deleted classes (paper §4:
    /// such systems support 9 of the 22 updates).
    pub fn is_body_only(&self) -> bool {
        self.added_classes.is_empty()
            && self.deleted_classes.is_empty()
            && self.changed.iter().all(|d| d.kind == ClassChangeKind::MethodBodyOnly)
    }

    /// The prefixed name an old class version gets during the update.
    pub fn old_name(&self, name: &ClassName) -> ClassName {
        name.with_prefix(&self.version_prefix)
    }

    /// Serializes the specification as pretty JSON (the on-disk spec file).
    pub fn to_json(&self) -> String {
        Json::obj([
            ("version_prefix", Json::from(self.version_prefix.as_str())),
            ("changed", Json::Arr(self.changed.iter().map(ClassDelta::to_json_value).collect())),
            ("added_classes", names_json(&self.added_classes)),
            ("deleted_classes", names_json(&self.deleted_classes)),
            (
                "indirect_methods",
                Json::Arr(self.indirect_methods.iter().map(method_ref_json).collect()),
            ),
        ])
        .pretty()
    }

    /// Parses a specification from JSON.
    ///
    /// # Errors
    ///
    /// Returns a description of the parse or schema failure.
    pub fn from_json(s: &str) -> Result<UpdateSpec, String> {
        let v = Json::parse(s).map_err(|e| e.to_string())?;
        Ok(UpdateSpec {
            version_prefix: str_field(&v, "version_prefix")?,
            changed: v
                .get("changed")
                .and_then(Json::as_arr)
                .ok_or("missing 'changed' array")?
                .iter()
                .map(ClassDelta::from_json_value)
                .collect::<Result<_, _>>()?,
            added_classes: names_field(&v, "added_classes")?,
            deleted_classes: names_field(&v, "deleted_classes")?,
            indirect_methods: v
                .get("indirect_methods")
                .and_then(Json::as_arr)
                .ok_or("missing 'indirect_methods' array")?
                .iter()
                .map(method_ref_from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl ClassDelta {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            (
                "kind",
                Json::from(match self.kind {
                    ClassChangeKind::ClassUpdate => "ClassUpdate",
                    ClassChangeKind::MethodBodyOnly => "MethodBodyOnly",
                }),
            ),
            ("fields_added", strings_json(&self.fields_added)),
            ("fields_deleted", strings_json(&self.fields_deleted)),
            ("fields_changed", strings_json(&self.fields_changed)),
            ("statics_added", strings_json(&self.statics_added)),
            ("statics_deleted", strings_json(&self.statics_deleted)),
            ("statics_changed", strings_json(&self.statics_changed)),
            ("methods_added", strings_json(&self.methods_added)),
            ("methods_deleted", strings_json(&self.methods_deleted)),
            ("methods_body_changed", strings_json(&self.methods_body_changed)),
            ("methods_sig_changed", strings_json(&self.methods_sig_changed)),
            ("superclass_changed", Json::from(self.superclass_changed)),
            ("inherited_only", Json::from(self.inherited_only)),
        ])
    }

    fn from_json_value(v: &Json) -> Result<ClassDelta, String> {
        let kind = match v.get("kind").and_then(Json::as_str) {
            Some("ClassUpdate") => ClassChangeKind::ClassUpdate,
            Some("MethodBodyOnly") => ClassChangeKind::MethodBodyOnly,
            other => return Err(format!("bad class-delta kind {other:?}")),
        };
        Ok(ClassDelta {
            name: ClassName::from(str_field(v, "name")?),
            kind,
            fields_added: strings_field(v, "fields_added")?,
            fields_deleted: strings_field(v, "fields_deleted")?,
            fields_changed: strings_field(v, "fields_changed")?,
            statics_added: strings_field(v, "statics_added")?,
            statics_deleted: strings_field(v, "statics_deleted")?,
            statics_changed: strings_field(v, "statics_changed")?,
            methods_added: strings_field(v, "methods_added")?,
            methods_deleted: strings_field(v, "methods_deleted")?,
            methods_body_changed: strings_field(v, "methods_body_changed")?,
            methods_sig_changed: strings_field(v, "methods_sig_changed")?,
            superclass_changed: bool_field(v, "superclass_changed")?,
            inherited_only: bool_field(v, "inherited_only")?,
        })
    }
}

fn strings_json(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::from(s.as_str())).collect())
}

fn names_json(items: &[ClassName]) -> Json {
    Json::Arr(items.iter().map(|n| Json::from(n.as_str())).collect())
}

fn method_ref_json(m: &MethodRef) -> Json {
    Json::obj([
        ("class", Json::from(m.class.as_str())),
        ("method", Json::from(m.method.as_str())),
    ])
}

fn method_ref_from_json(v: &Json) -> Result<MethodRef, String> {
    Ok(MethodRef::new(str_field(v, "class")?, str_field(v, "method")?))
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn bool_field(v: &Json, key: &str) -> Result<bool, String> {
    v.get(key).and_then(Json::as_bool).ok_or_else(|| format!("missing bool field '{key}'"))
}

fn strings_field(v: &Json, key: &str) -> Result<Vec<String>, String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field '{key}'"))?
        .iter()
        .map(|item| {
            item.as_str().map(str::to_string).ok_or_else(|| format!("non-string in '{key}'"))
        })
        .collect()
}

fn names_field(v: &Json, key: &str) -> Result<Vec<ClassName>, String> {
    Ok(strings_field(v, key)?.into_iter().map(ClassName::from).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_with(kind: ClassChangeKind) -> UpdateSpec {
        UpdateSpec {
            version_prefix: "v1_".into(),
            changed: vec![ClassDelta::empty(ClassName::from("User"), kind)],
            added_classes: vec![],
            deleted_classes: vec![],
            indirect_methods: vec![],
        }
    }

    #[test]
    fn body_only_classification() {
        assert!(spec_with(ClassChangeKind::MethodBodyOnly).is_body_only());
        assert!(!spec_with(ClassChangeKind::ClassUpdate).is_body_only());
        let mut s = spec_with(ClassChangeKind::MethodBodyOnly);
        s.added_classes.push(ClassName::from("EmailAddress"));
        assert!(!s.is_body_only(), "added classes exceed E&C systems");
    }

    #[test]
    fn json_roundtrip() {
        let mut s = spec_with(ClassChangeKind::ClassUpdate);
        s.changed[0].fields_added.push("z".into());
        s.indirect_methods.push(MethodRef::new("Config", "loadUser"));
        let parsed = UpdateSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(s, parsed);
    }

    #[test]
    fn old_name_prefixing() {
        let s = spec_with(ClassChangeKind::ClassUpdate);
        assert_eq!(s.old_name(&ClassName::from("User")).as_str(), "v1_User");
    }

    #[test]
    fn signature_change_detection() {
        let mut d = ClassDelta::empty(ClassName::from("A"), ClassChangeKind::ClassUpdate);
        assert!(!d.signature_changed());
        d.methods_added.push("m".into());
        assert!(d.signature_changed());
        assert!(!d.layout_changed());
        d.fields_added.push("f".into());
        assert!(d.layout_changed());
    }
}
