//! JVolve-style dynamic software updating for the MJ VM.
//!
//! This crate is the reproduction of the paper's contribution: it composes
//! the VM's services (classloading, JIT compilation and invalidation,
//! thread scheduling, return barriers, on-stack replacement, and the
//! copying garbage collector) into a flexible, type-safe, zero-steady-
//! state-overhead dynamic update system.
//!
//! * [`diff`] — the update preparation tool (UPT): diffs two program
//!   versions into an [`UpdateSpec`], classifying class updates, method
//!   body updates, and indirect methods.
//! * [`transform`] — old-class stubs and default class/object transformer
//!   generation (customizable, as in the paper's Figure 3).
//! * [`restricted`] — DSU safe-point analysis over thread stacks.
//! * [`controller`] — the update protocol as a resumable phase machine:
//!   reach a safe point (with return barriers, OSR and a timeout) while
//!   interleaving with VM scheduling, install classes with a rollback
//!   ledger, run the update GC and the transformers, emitting a typed
//!   event stream throughout.
//! * [`driver`] — update preparation plus the synchronous [`apply`]
//!   wrapper over the controller.
//! * [`bundle`] — the UPT's on-disk artifact: spec + transformers +
//!   encoded class payloads, re-verified on load.
//! * [`queue`] — serialized application of back-to-back and overlapping
//!   update arrivals (release streams).
//! * [`modes`] — the baselines the paper compares against: method-body-
//!   only (E&C) updating and lazy-indirection updating.
//! * [`report`] — per-release summaries (the rows of Tables 2–4).
//!
//! # Example
//!
//! ```
//! use jvolve::{apply, ApplyOptions, Update};
//! use jvolve_vm::{Value, Vm, VmConfig};
//!
//! let v1 = jvolve_lang::compile(
//!     "class Counter {
//!        static field hits: int;
//!        static method bump(): int { Counter.hits = Counter.hits + 1; return Counter.hits; }
//!      }",
//! ).unwrap();
//! let v2 = jvolve_lang::compile(
//!     "class Counter {
//!        static field hits: int;
//!        static method bump(): int { Counter.hits = Counter.hits + 2; return Counter.hits; }
//!      }",
//! ).unwrap();
//!
//! let mut vm = Vm::new(VmConfig::small());
//! vm.load_classes(&v1)?;
//! assert_eq!(vm.call_static_sync("Counter", "bump", &[])?, Some(Value::Int(1)));
//!
//! let update = Update::prepare(&v1, &v2, "v1_").expect("non-empty update");
//! apply(&mut vm, &update, &ApplyOptions::default()).expect("update applies");
//!
//! // State survived; new code runs.
//! assert_eq!(vm.call_static_sync("Counter", "bump", &[])?, Some(Value::Int(3)));
//! # Ok::<(), jvolve_vm::VmError>(())
//! ```

pub mod bundle;
pub mod controller;
pub mod diff;
pub mod driver;
pub mod error;
pub mod migrate;
pub mod modes;
pub mod queue;
pub mod report;
pub mod restricted;
pub mod spec;
pub mod transform;
pub mod validate;

pub use controller::{
    ControllerCounters, JsonTraceSink, MemorySink, StepProgress, UpdateController, UpdateEvent,
    UpdateEventSink, UpdatePhase, TRACE_SCHEMA,
};
pub use bundle::BundleError;
pub use driver::{apply, ApplyOptions, Update, UpdateStats};
pub use error::UpdateError;
pub use queue::{QueuedOutcome, UpdateQueue};
pub use report::{ReleaseSummary, UpdateOutcome};
pub use spec::{ClassChangeKind, ClassDelta, UpdateSpec};
pub use validate::{check_transformer_signatures, validate_update};
