//! `mjc` — the MJ compiler CLI.
//!
//! ```text
//! mjc check  <file.mj>             type-check only
//! mjc build  <file.mj> -o <dir>    compile to binary class files (.mjc)
//! mjc dis    <file.mj|file.mjc>    disassemble
//! ```

use std::path::Path;
use std::process::ExitCode;

use jvolve_classfile::{codec, disasm};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") if args.len() >= 2 => check(&args[1]),
        Some("build") if args.len() >= 2 => {
            let out = args
                .iter()
                .position(|a| a == "-o")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or(".");
            build(&args[1], out)
        }
        Some("dis") if args.len() >= 2 => dis(&args[1]),
        _ => {
            eprintln!(
                "usage: mjc check <file.mj>\n       mjc build <file.mj> [-o <dir>]\n       \
                 mjc dis <file.mj|file.mjc>"
            );
            ExitCode::from(2)
        }
    }
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("mjc: cannot read {path}: {e}");
        ExitCode::FAILURE
    })
}

fn check(path: &str) -> ExitCode {
    let Ok(source) = read(path) else { return ExitCode::FAILURE };
    match jvolve_lang::compile(&source) {
        Ok(classes) => {
            println!("{path}: {} classes OK", classes.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn build(path: &str, out_dir: &str) -> ExitCode {
    let Ok(source) = read(path) else { return ExitCode::FAILURE };
    let classes = match jvolve_lang::compile(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("mjc: cannot create {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    for class in &classes {
        let file = Path::new(out_dir).join(format!("{}.mjc", class.name));
        if let Err(e) = std::fs::write(&file, codec::encode(class)) {
            eprintln!("mjc: cannot write {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", file.display());
    }
    ExitCode::SUCCESS
}

fn dis(path: &str) -> ExitCode {
    if path.ends_with(".mjc") {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("mjc: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match codec::decode(&bytes) {
            Ok(class) => {
                print!("{}", disasm::disassemble(&class));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let Ok(source) = read(path) else { return ExitCode::FAILURE };
        match jvolve_lang::compile(&source) {
            Ok(classes) => {
                for class in &classes {
                    print!("{}", disasm::disassemble(class));
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        }
    }
}
