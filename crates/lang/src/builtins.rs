//! Builtin (VM-native) classes visible to every MJ program.
//!
//! These play the role of the Java standard library subset the paper's
//! benchmark applications need: console output (`Sys`), string operations
//! (`Str`), the simulated network (`Net`), and the DSU escape hatch
//! (`Dsu.forceTransform`, the paper's "special VM function to force a
//! field's referenced object to be transformed", §3.4).
//!
//! The VM implements every method declared here natively; this module is
//! the single source of truth for their signatures, shared by the
//! typechecker, the verifier and the VM's native dispatch table.

use jvolve_classfile::builder::ClassBuilder;
use jvolve_classfile::{ClassFile, ClassFlags, Type, OBJECT_CLASS, STRING_CLASS};

/// Name of the console/system builtin class.
pub const SYS_CLASS: &str = "Sys";
/// Name of the string-operations builtin class.
pub const STR_CLASS: &str = "Str";
/// Name of the simulated-network builtin class.
pub const NET_CLASS: &str = "Net";
/// Name of the DSU-support builtin class.
pub const DSU_CLASS: &str = "Dsu";

/// Returns all builtin classes, `Object` and `String` included.
///
/// Every returned class is flagged [`ClassFlags::NATIVE`] except `Object`,
/// which is an ordinary (empty) class.
pub fn builtin_classes() -> Vec<ClassFile> {
    vec![
        ClassBuilder::new(OBJECT_CLASS).build(),
        ClassBuilder::new(STRING_CLASS).flags(ClassFlags::NATIVE).build(),
        sys_class(),
        str_class(),
        net_class(),
        dsu_class(),
    ]
}

/// Names of all builtin classes.
pub fn builtin_names() -> Vec<&'static str> {
    vec![OBJECT_CLASS, STRING_CLASS, SYS_CLASS, STR_CLASS, NET_CLASS, DSU_CLASS]
}

/// Whether `name` names a builtin class.
pub fn is_builtin(name: &str) -> bool {
    matches!(
        name,
        OBJECT_CLASS | STRING_CLASS | SYS_CLASS | STR_CLASS | NET_CLASS | DSU_CLASS
    )
}

fn sys_class() -> ClassFile {
    ClassBuilder::new(SYS_CLASS)
        .flags(ClassFlags::NATIVE)
        .native_method("print", [Type::string()], Type::Void, true)
        .native_method("printInt", [Type::Int], Type::Void, true)
        .native_method("time", [], Type::Int, true)
        .native_method("sleep", [Type::Int], Type::Void, true)
        .native_method("rand", [Type::Int], Type::Int, true)
        .native_method("yieldNow", [], Type::Void, true)
        .native_method("threadId", [], Type::Int, true)
        .native_method("spawn", [Type::object()], Type::Int, true)
        .build()
}

fn str_class() -> ClassFile {
    ClassBuilder::new(STR_CLASS)
        .flags(ClassFlags::NATIVE)
        .native_method("len", [Type::string()], Type::Int, true)
        .native_method("substr", [Type::string(), Type::Int, Type::Int], Type::string(), true)
        .native_method("indexOf", [Type::string(), Type::string()], Type::Int, true)
        .native_method("split", [Type::string(), Type::string()], Type::array(Type::string()), true)
        .native_method("fromInt", [Type::Int], Type::string(), true)
        .native_method("toInt", [Type::string()], Type::Int, true)
        .native_method("charAt", [Type::string(), Type::Int], Type::Int, true)
        .native_method("contains", [Type::string(), Type::string()], Type::Bool, true)
        .native_method("startsWith", [Type::string(), Type::string()], Type::Bool, true)
        .native_method("trim", [Type::string()], Type::string(), true)
        .build()
}

fn net_class() -> ClassFile {
    ClassBuilder::new(NET_CLASS)
        .flags(ClassFlags::NATIVE)
        .native_method("listen", [Type::Int], Type::Int, true)
        .native_method("accept", [Type::Int], Type::Int, true)
        .native_method("tryAccept", [Type::Int], Type::Int, true)
        .native_method("readLine", [Type::Int], Type::string(), true)
        .native_method("write", [Type::Int, Type::string()], Type::Void, true)
        .native_method("close", [Type::Int], Type::Void, true)
        .build()
}

fn dsu_class() -> ClassFile {
    ClassBuilder::new(DSU_CLASS)
        .flags(ClassFlags::NATIVE)
        .native_method("forceTransform", [Type::object()], Type::Void, true)
        .native_method("updateCount", [], Type::Int, true)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtins_present() {
        let classes = builtin_classes();
        for name in builtin_names() {
            assert!(classes.iter().any(|c| c.name.as_str() == name), "missing builtin {name}");
        }
    }

    #[test]
    fn builtins_are_native_except_object() {
        for class in builtin_classes() {
            if class.name.as_str() == OBJECT_CLASS {
                assert!(!class.flags.native);
            } else {
                assert!(class.flags.native, "{} should be native", class.name);
            }
        }
    }

    #[test]
    fn native_methods_have_no_code() {
        for class in builtin_classes() {
            for m in &class.methods {
                assert!(m.code.is_none(), "{}.{} should be native", class.name, m.name);
                assert!(m.is_static, "{}.{} should be static", class.name, m.name);
            }
        }
    }

    #[test]
    fn is_builtin_classification() {
        assert!(is_builtin("Sys"));
        assert!(is_builtin("Object"));
        assert!(!is_builtin("User"));
    }
}
