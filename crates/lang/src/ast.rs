//! Abstract syntax tree for MJ.

use crate::diag::Span;

/// A parsed compilation unit: a list of class declarations.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Classes in declaration order.
    pub classes: Vec<ClassDecl>,
}

/// Member visibility as written.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VisDecl {
    /// Default and explicit `public`.
    #[default]
    Public,
    /// `private`
    Private,
    /// `protected`
    Protected,
}

/// A class declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Superclass name; defaults to `Object` when omitted.
    pub superclass: Option<String>,
    /// Field declarations (instance and static).
    pub fields: Vec<FieldDecl>,
    /// Methods and constructors.
    pub methods: Vec<MethodDecl>,
    /// Location of the class header.
    pub span: Span,
}

/// A field declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// `static`?
    pub is_static: bool,
    /// `final`?
    pub is_final: bool,
    /// Visibility.
    pub visibility: VisDecl,
    /// Location.
    pub span: Span,
}

/// A method or constructor declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct MethodDecl {
    /// Method name; constructors use the class name convention `ctor`.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type (`void` for constructors).
    pub ret: TypeExpr,
    /// `static`?
    pub is_static: bool,
    /// Is this a constructor?
    pub is_ctor: bool,
    /// Visibility.
    pub visibility: VisDecl,
    /// Body.
    pub body: Block,
    /// Location of the header.
    pub span: Span,
}

/// A method parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
    /// Location.
    pub span: Span,
}

/// A type as written in source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeExpr {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `void`
    Void,
    /// A class name, e.g. `User` or `String`.
    Named(String),
    /// An array type `T[]`.
    Array(Box<TypeExpr>),
}

/// A block of statements.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `var name: ty = init;`
    Var {
        /// Local name.
        name: String,
        /// Declared type.
        ty: TypeExpr,
        /// Initializer.
        init: Expr,
        /// Location.
        span: Span,
    },
    /// `target = value;` where target is an lvalue.
    Assign {
        /// Assignment target (identifier, field, index, or static field).
        target: Expr,
        /// Right-hand side.
        value: Expr,
        /// Location.
        span: Span,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Block,
        /// Optional else-branch.
        els: Option<Block>,
    },
    /// `while (cond) { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `return;` or `return expr;`
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Location.
        span: Span,
    },
    /// `break;`
    Break {
        /// Location.
        span: Span,
    },
    /// `continue;`
    Continue {
        /// Location.
        span: Span,
    },
    /// `super(args);` — constructor chaining; only valid in constructors.
    SuperCall {
        /// Constructor arguments.
        args: Vec<Expr>,
        /// Location.
        span: Span,
    },
    /// An expression evaluated for effect (must be a call).
    Expr(Expr),
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// `-e`
    Neg,
    /// `!e`
    Not,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (int addition or string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==` (value equality for ints/bools/strings, identity for other refs)
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// An expression with location.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// The expression node.
    pub kind: ExprKind,
    /// Location.
    pub span: Span,
}

/// Expression kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Boolean literal.
    BoolLit(bool),
    /// String literal.
    StrLit(String),
    /// `null`
    Null,
    /// `this`
    This,
    /// A name: a local, a parameter, or (in receiver position) a class.
    Ident(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `e.f` — field access (or `.length` on arrays, handled by the checker).
    Field(Box<Expr>, String),
    /// `e[i]` — array indexing.
    Index(Box<Expr>, Box<Expr>),
    /// `recv.m(args)` or unqualified `m(args)` (sugar for `this.m(args)`).
    Call {
        /// Receiver; `None` for unqualified calls.
        recv: Option<Box<Expr>>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `new C(args)`
    New(String, Vec<Expr>),
    /// `new T[len]`
    NewArray(TypeExpr, Box<Expr>),
}

impl Expr {
    /// Whether this expression can be assigned to.
    pub fn is_lvalue(&self) -> bool {
        matches!(
            self.kind,
            ExprKind::Ident(_) | ExprKind::Field(..) | ExprKind::Index(..)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(kind: ExprKind) -> Expr {
        Expr { kind, span: Span::default() }
    }

    #[test]
    fn lvalue_classification() {
        assert!(expr(ExprKind::Ident("x".into())).is_lvalue());
        assert!(expr(ExprKind::Field(Box::new(expr(ExprKind::This)), "f".into())).is_lvalue());
        assert!(!expr(ExprKind::IntLit(3)).is_lvalue());
        assert!(!expr(ExprKind::Call { recv: None, name: "m".into(), args: vec![] }).is_lvalue());
    }
}
