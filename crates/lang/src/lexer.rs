//! The MJ lexer.

use crate::diag::{Diagnostic, Span};
use crate::token::{keyword, Token, TokenKind};

/// Tokenizes MJ source text.
///
/// # Errors
///
/// Returns a [`Diagnostic`] on unterminated strings or comments, bad escape
/// sequences, integer overflow, or stray characters.
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;

    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(Diagnostic::new(
                            Span::new(start, bytes.len()),
                            "unterminated block comment",
                        ));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                let value: i64 = text.parse().map_err(|_| {
                    Diagnostic::new(Span::new(start, i), format!("integer literal {text} overflows"))
                })?;
                tokens.push(Token { kind: TokenKind::Int(value), span: Span::new(start, i) });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &source[start..i];
                let kind = keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
                tokens.push(Token { kind, span: Span::new(start, i) });
            }
            b'"' => {
                i += 1;
                let mut value = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(Diagnostic::new(
                            Span::new(start, bytes.len()),
                            "unterminated string literal",
                        ));
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            let esc = *bytes.get(i).ok_or_else(|| {
                                Diagnostic::new(
                                    Span::new(start, bytes.len()),
                                    "unterminated string literal",
                                )
                            })?;
                            value.push(match esc {
                                b'n' => '\n',
                                b'r' => '\r',
                                b't' => '\t',
                                b'\\' => '\\',
                                b'"' => '"',
                                b'0' => '\0',
                                other => {
                                    return Err(Diagnostic::new(
                                        Span::new(i - 1, i + 1),
                                        format!("unknown escape sequence \\{}", other as char),
                                    ))
                                }
                            });
                            i += 1;
                        }
                        b'\n' => {
                            return Err(Diagnostic::new(
                                Span::new(start, i),
                                "string literal spans a newline",
                            ))
                        }
                        _ => {
                            // Consume one UTF-8 scalar (multi-byte safe).
                            let ch_len = utf8_len(bytes[i]);
                            value.push_str(&source[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(value), span: Span::new(start, i) });
            }
            _ => {
                let (kind, len) = match (b, bytes.get(i + 1)) {
                    (b'=', Some(b'=')) => (TokenKind::EqEq, 2),
                    (b'!', Some(b'=')) => (TokenKind::NotEq, 2),
                    (b'<', Some(b'=')) => (TokenKind::Le, 2),
                    (b'>', Some(b'=')) => (TokenKind::Ge, 2),
                    (b'&', Some(b'&')) => (TokenKind::AndAnd, 2),
                    (b'|', Some(b'|')) => (TokenKind::OrOr, 2),
                    (b'{', _) => (TokenKind::LBrace, 1),
                    (b'}', _) => (TokenKind::RBrace, 1),
                    (b'(', _) => (TokenKind::LParen, 1),
                    (b')', _) => (TokenKind::RParen, 1),
                    (b'[', _) => (TokenKind::LBracket, 1),
                    (b']', _) => (TokenKind::RBracket, 1),
                    (b';', _) => (TokenKind::Semi, 1),
                    (b':', _) => (TokenKind::Colon, 1),
                    (b',', _) => (TokenKind::Comma, 1),
                    (b'.', _) => (TokenKind::Dot, 1),
                    (b'=', _) => (TokenKind::Assign, 1),
                    (b'<', _) => (TokenKind::Lt, 1),
                    (b'>', _) => (TokenKind::Gt, 1),
                    (b'+', _) => (TokenKind::Plus, 1),
                    (b'-', _) => (TokenKind::Minus, 1),
                    (b'*', _) => (TokenKind::Star, 1),
                    (b'/', _) => (TokenKind::Slash, 1),
                    (b'%', _) => (TokenKind::Percent, 1),
                    (b'!', _) => (TokenKind::Bang, 1),
                    _ => {
                        return Err(Diagnostic::new(
                            Span::new(start, start + 1),
                            format!("unexpected character {:?}", b as char),
                        ))
                    }
                };
                i += len;
                tokens.push(Token { kind, span: Span::new(start, i) });
            }
        }
    }

    tokens.push(Token { kind: TokenKind::Eof, span: Span::new(bytes.len(), bytes.len()) });
    Ok(tokens)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_class_header() {
        assert_eq!(
            kinds("class User extends Object {"),
            vec![Class, Ident("User".into()), Extends, Ident("Object".into()), LBrace, Eof]
        );
    }

    #[test]
    fn lexes_operators_longest_match() {
        assert_eq!(kinds("== = <= < != !"), vec![EqEq, Assign, Le, Lt, NotEq, Bang, Eof]);
        assert_eq!(kinds("&& ||"), vec![AndAnd, OrOr, Eof]);
    }

    #[test]
    fn lexes_string_with_escapes() {
        assert_eq!(kinds(r#""a\n\"b\\""#), vec![Str("a\n\"b\\".into()), Eof]);
    }

    #[test]
    fn skips_comments() {
        assert_eq!(kinds("1 // comment\n2 /* multi\nline */ 3"), vec![Int(1), Int(2), Int(3), Eof]);
    }

    #[test]
    fn rejects_unterminated_string() {
        let err = lex("\"abc").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
    }

    #[test]
    fn rejects_unterminated_comment() {
        let err = lex("/* abc").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
    }

    #[test]
    fn rejects_integer_overflow() {
        let err = lex("99999999999999999999").unwrap_err();
        assert!(err.message.contains("overflows"), "{err}");
    }

    #[test]
    fn rejects_stray_character() {
        let err = lex("#").unwrap_err();
        assert!(err.message.contains("unexpected"), "{err}");
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }

    #[test]
    fn lexes_unicode_in_strings() {
        assert_eq!(kinds("\"héllo\""), vec![Str("héllo".into()), Eof]);
    }
}
