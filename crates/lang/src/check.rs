//! Signature collection: AST class declarations → class-file headers.
//!
//! The first compiler phase converts every declared class into a
//! [`ClassFile`] whose methods have *empty bodies*, producing the resolution
//! context the code generator type-checks bodies against. Signature-level
//! errors (duplicate or reserved class names, unknown types, field
//! shadowing, missing super constructors) are reported here.

use std::collections::BTreeSet;

use jvolve_classfile::class::{Code, MethodKind, CTOR_NAME};
use jvolve_classfile::{
    ClassFile, ClassFlags, ClassName, ClassResolver, ClassSet, FieldDef, MethodDef, Type,
    Visibility, OBJECT_CLASS,
};

use crate::ast::{ClassDecl, Program, TypeExpr, VisDecl};
use crate::builtins::is_builtin;
use crate::diag::{Diagnostic, Span};

/// Output of signature collection.
#[derive(Debug)]
pub struct Headers {
    /// Class-file headers for the program's own classes, in declaration
    /// order (bodies are placeholders; codegen fills them in).
    pub classes: Vec<ClassFile>,
    /// Full resolution context: builtins + externs + program headers.
    pub resolver: ClassSet,
}

/// Options controlling collection (shared with codegen).
#[derive(Debug, Clone, Default)]
pub struct CollectOptions {
    /// Extra classes visible during resolution but not compiled (old-class
    /// stubs when compiling transformer classes, or a previously compiled
    /// program version).
    pub externs: ClassSet,
    /// Compile with the transformer-class allowance (paper §2.3): access
    /// control and `final` are not enforced, and the produced classes carry
    /// [`ClassFlags::ACCESS_OVERRIDE`].
    pub override_access: bool,
}

/// Converts a source-level visibility to the class-file form.
pub fn lower_visibility(v: VisDecl) -> Visibility {
    match v {
        VisDecl::Public => Visibility::Public,
        VisDecl::Private => Visibility::Private,
        VisDecl::Protected => Visibility::Protected,
    }
}

/// Collects headers for all classes in `program`.
///
/// # Errors
///
/// Returns all signature-level diagnostics found.
pub fn collect(program: &Program, options: &CollectOptions) -> Result<Headers, Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let mut resolver = ClassSet::new();
    for b in crate::builtins::builtin_classes() {
        resolver.insert(b);
    }
    for e in options.externs.iter() {
        resolver.insert(e.clone());
    }

    // First pass: register names so types can refer to later classes.
    let mut declared = BTreeSet::new();
    for class in &program.classes {
        if is_builtin(&class.name) {
            diags.push(Diagnostic::new(
                class.span,
                format!("class {} conflicts with a builtin class", class.name),
            ));
        } else if !declared.insert(class.name.clone()) {
            diags.push(Diagnostic::new(class.span, format!("duplicate class {}", class.name)));
        } else if options.externs.get(&ClassName::from(class.name.as_str())).is_some() {
            diags.push(Diagnostic::new(
                class.span,
                format!("class {} conflicts with an extern class", class.name),
            ));
        }
    }

    // Second pass: build headers.
    let mut headers = Vec::new();
    for class in &program.classes {
        match collect_class(class, &declared, &options.externs, options.override_access) {
            Ok(h) => headers.push(h),
            Err(mut e) => diags.append(&mut e),
        }
    }
    for h in &headers {
        resolver.insert(h.clone());
    }

    // Third pass: hierarchy checks that need all headers present.
    for class in &headers {
        hierarchy_checks(class, &resolver, &mut diags);
    }

    if diags.is_empty() {
        Ok(Headers { classes: headers, resolver })
    } else {
        Err(diags)
    }
}

fn collect_class(
    class: &ClassDecl,
    declared: &BTreeSet<String>,
    externs: &ClassSet,
    override_access: bool,
) -> Result<ClassFile, Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let name = ClassName::from(class.name.as_str());

    let superclass = match &class.superclass {
        Some(sup) => {
            let known = declared.contains(sup)
                || is_builtin(sup)
                || externs.get(&ClassName::from(sup.as_str())).is_some();
            if !known {
                diags.push(Diagnostic::new(
                    class.span,
                    format!("unknown superclass {sup} of class {}", class.name),
                ));
            }
            Some(ClassName::from(sup.as_str()))
        }
        None => Some(ClassName::from(OBJECT_CLASS)),
    };

    let mut fields = Vec::new();
    let mut static_fields = Vec::new();
    for f in &class.fields {
        let ty = match lower_type(&f.ty, declared, externs, f.span) {
            Ok(t) => t,
            Err(d) => {
                diags.push(d);
                continue;
            }
        };
        if ty == Type::Void {
            diags.push(Diagnostic::new(f.span, format!("field {} cannot be void", f.name)));
            continue;
        }
        let def = FieldDef {
            name: f.name.clone(),
            ty,
            visibility: lower_visibility(f.visibility),
            is_final: f.is_final,
        };
        if f.is_static {
            static_fields.push(def);
        } else {
            fields.push(def);
        }
    }

    let mut methods = Vec::new();
    let mut saw_ctor = false;
    for m in &class.methods {
        if m.is_ctor {
            if saw_ctor {
                diags.push(Diagnostic::new(
                    m.span,
                    format!("class {} declares more than one constructor", class.name),
                ));
                continue;
            }
            saw_ctor = true;
        }
        let mut params = Vec::new();
        for p in &m.params {
            match lower_type(&p.ty, declared, externs, p.span) {
                Ok(Type::Void) => {
                    diags.push(Diagnostic::new(p.span, "parameter cannot be void"));
                }
                Ok(t) => params.push(t),
                Err(d) => diags.push(d),
            }
        }
        let ret = match lower_type(&m.ret, declared, externs, m.span) {
            Ok(t) => t,
            Err(d) => {
                diags.push(d);
                Type::Void
            }
        };
        methods.push(MethodDef {
            name: if m.is_ctor { CTOR_NAME.to_string() } else { m.name.clone() },
            params,
            ret,
            is_static: m.is_static,
            visibility: lower_visibility(m.visibility),
            kind: if m.is_ctor { MethodKind::Constructor } else { MethodKind::Regular },
            // Placeholder body; codegen replaces it.
            code: Some(Code { instrs: Vec::new(), max_locals: 0 }),
        });
    }

    // Synthesize a default constructor if none was declared, so `new C()`
    // works uniformly (codegen fills in the super call if needed).
    if !saw_ctor {
        methods.push(MethodDef {
            name: CTOR_NAME.to_string(),
            params: Vec::new(),
            ret: Type::Void,
            is_static: false,
            visibility: Visibility::Public,
            kind: MethodKind::Constructor,
            code: Some(Code { instrs: Vec::new(), max_locals: 0 }),
        });
    }

    if diags.is_empty() {
        Ok(ClassFile {
            name,
            superclass,
            fields,
            static_fields,
            methods,
            flags: if override_access { ClassFlags::ACCESS_OVERRIDE } else { ClassFlags::default() },
        })
    } else {
        Err(diags)
    }
}

fn hierarchy_checks(class: &ClassFile, resolver: &ClassSet, diags: &mut Vec<Diagnostic>) {
    // Field shadowing along the superclass chain is rejected: object layout
    // concatenates superclass fields with subclass fields, and unique names
    // keep transformer generation unambiguous.
    let Some(sup) = &class.superclass else { return };
    let mut cur = Some(sup.clone());
    let mut guard = 0;
    while let Some(name) = cur {
        guard += 1;
        if guard > 256 {
            diags.push(Diagnostic::new(
                Span::default(),
                format!("superclass chain of {} is cyclic", class.name),
            ));
            return;
        }
        let Some(c) = resolver.resolve(&name) else { return };
        for f in &class.fields {
            if c.find_field(&f.name).is_some() {
                diags.push(Diagnostic::new(
                    Span::default(),
                    format!("field {}.{} shadows a field of superclass {}", class.name, f.name, name),
                ));
            }
        }
        cur = c.superclass.clone();
    }
}

/// Lowers a syntactic type to a class-file type.
pub fn lower_type(
    ty: &TypeExpr,
    declared: &BTreeSet<String>,
    externs: &ClassSet,
    span: Span,
) -> Result<Type, Diagnostic> {
    Ok(match ty {
        TypeExpr::Int => Type::Int,
        TypeExpr::Bool => Type::Bool,
        TypeExpr::Void => Type::Void,
        TypeExpr::Named(name) => {
            let known = declared.contains(name)
                || is_builtin(name)
                || externs.get(&ClassName::from(name.as_str())).is_some();
            if !known {
                return Err(Diagnostic::new(span, format!("unknown type {name}")));
            }
            Type::Class(ClassName::from(name.as_str()))
        }
        TypeExpr::Array(elem) => Type::array(lower_type(elem, declared, externs, span)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn collect_src(src: &str) -> Result<Headers, Vec<Diagnostic>> {
        let program = parse(lex(src).unwrap()).unwrap();
        collect(&program, &CollectOptions::default())
    }

    #[test]
    fn collects_headers_with_default_ctor() {
        let h = collect_src("class A { field x: int; }").unwrap();
        assert_eq!(h.classes.len(), 1);
        let a = &h.classes[0];
        assert_eq!(a.fields.len(), 1);
        assert!(a.find_method(CTOR_NAME).is_some(), "default ctor synthesized");
        assert!(h.resolver.get(&ClassName::from("Sys")).is_some(), "builtins visible");
    }

    #[test]
    fn rejects_duplicate_class() {
        let errs = collect_src("class A { } class A { }").unwrap_err();
        assert!(errs.iter().any(|d| d.message.contains("duplicate class")), "{errs:?}");
    }

    #[test]
    fn rejects_builtin_collision() {
        let errs = collect_src("class Sys { }").unwrap_err();
        assert!(errs.iter().any(|d| d.message.contains("builtin")), "{errs:?}");
    }

    #[test]
    fn rejects_unknown_type() {
        let errs = collect_src("class A { field x: Missing; }").unwrap_err();
        assert!(errs.iter().any(|d| d.message.contains("unknown type")), "{errs:?}");
    }

    #[test]
    fn rejects_unknown_superclass() {
        let errs = collect_src("class A extends Nope { }").unwrap_err();
        assert!(errs.iter().any(|d| d.message.contains("unknown superclass")), "{errs:?}");
    }

    #[test]
    fn rejects_field_shadowing() {
        let errs =
            collect_src("class A { field x: int; } class B extends A { field x: int; }")
                .unwrap_err();
        assert!(errs.iter().any(|d| d.message.contains("shadows")), "{errs:?}");
    }

    #[test]
    fn rejects_two_ctors() {
        let errs = collect_src("class A { ctor() { } ctor() { } }").unwrap_err();
        assert!(errs.iter().any(|d| d.message.contains("more than one constructor")), "{errs:?}");
    }

    #[test]
    fn forward_references_between_classes_work() {
        let h = collect_src("class A { field b: B; } class B { field a: A; }").unwrap();
        assert_eq!(h.classes.len(), 2);
    }

    #[test]
    fn externs_are_usable_as_types() {
        use jvolve_classfile::builder::ClassBuilder;
        let mut externs = ClassSet::new();
        externs.insert(ClassBuilder::new("v131_User").build());
        let program = parse(lex("class T { field u: v131_User; }").unwrap()).unwrap();
        let opts = CollectOptions { externs, override_access: false };
        collect(&program, &opts).unwrap();
    }
}
