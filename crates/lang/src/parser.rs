//! Recursive-descent parser for MJ.

use crate::ast::*;
use crate::diag::{Diagnostic, Span};
use crate::token::{Token, TokenKind};

/// Parses a token stream into a [`Program`].
///
/// # Errors
///
/// Returns the first syntax error encountered.
pub fn parse(tokens: Vec<Token>) -> Result<Program, Diagnostic> {
    let mut p = Parser { tokens, pos: 0 };
    let mut classes = Vec::new();
    while !p.at(&TokenKind::Eof) {
        classes.push(p.class_decl()?);
    }
    Ok(Program { classes })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, Diagnostic> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(Diagnostic::new(
                self.span(),
                format!("expected {kind}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, Span), Diagnostic> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.span();
                self.bump();
                Ok((name, span))
            }
            other => Err(Diagnostic::new(self.span(), format!("expected identifier, found {other}"))),
        }
    }

    // ---- declarations ----------------------------------------------------

    fn class_decl(&mut self) -> Result<ClassDecl, Diagnostic> {
        let start = self.span();
        self.expect(&TokenKind::Class)?;
        let (name, _) = self.ident()?;
        let superclass = if self.eat(&TokenKind::Extends) {
            let (sup, _) = self.ident()?;
            Some(sup)
        } else {
            None
        };
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            let member_start = self.span();
            let visibility = self.visibility();
            let is_static = self.eat(&TokenKind::Static);
            let is_final = self.eat(&TokenKind::Final);
            match self.peek() {
                TokenKind::Field => {
                    self.bump();
                    let (fname, _) = self.ident()?;
                    self.expect(&TokenKind::Colon)?;
                    let ty = self.type_expr()?;
                    self.expect(&TokenKind::Semi)?;
                    fields.push(FieldDecl {
                        name: fname,
                        ty,
                        is_static,
                        is_final,
                        visibility,
                        span: member_start.to(self.prev_span()),
                    });
                }
                TokenKind::Method => {
                    if is_final {
                        return Err(Diagnostic::new(self.span(), "methods cannot be final"));
                    }
                    self.bump();
                    let (mname, _) = self.ident()?;
                    let params = self.params()?;
                    self.expect(&TokenKind::Colon)?;
                    let ret = self.type_expr_or_void()?;
                    let body = self.block()?;
                    methods.push(MethodDecl {
                        name: mname,
                        params,
                        ret,
                        is_static,
                        is_ctor: false,
                        visibility,
                        body,
                        span: member_start.to(self.prev_span()),
                    });
                }
                TokenKind::Ctor => {
                    if is_static || is_final {
                        return Err(Diagnostic::new(
                            self.span(),
                            "constructors cannot be static or final",
                        ));
                    }
                    self.bump();
                    let params = self.params()?;
                    let body = self.block()?;
                    methods.push(MethodDecl {
                        name: "ctor".to_string(),
                        params,
                        ret: TypeExpr::Void,
                        is_static: false,
                        is_ctor: true,
                        visibility,
                        body,
                        span: member_start.to(self.prev_span()),
                    });
                }
                other => {
                    return Err(Diagnostic::new(
                        self.span(),
                        format!("expected `field`, `method` or `ctor`, found {other}"),
                    ))
                }
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(ClassDecl { name, superclass, fields, methods, span: start.to(self.prev_span()) })
    }

    fn visibility(&mut self) -> VisDecl {
        if self.eat(&TokenKind::Public) {
            VisDecl::Public
        } else if self.eat(&TokenKind::Private) {
            VisDecl::Private
        } else if self.eat(&TokenKind::Protected) {
            VisDecl::Protected
        } else {
            VisDecl::Public
        }
    }

    fn params(&mut self) -> Result<Vec<Param>, Diagnostic> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let (name, span) = self.ident()?;
                self.expect(&TokenKind::Colon)?;
                let ty = self.type_expr()?;
                params.push(Param { name, ty, span });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(params)
    }

    fn type_expr_or_void(&mut self) -> Result<TypeExpr, Diagnostic> {
        if self.eat(&TokenKind::VoidTy) {
            Ok(TypeExpr::Void)
        } else {
            self.type_expr()
        }
    }

    fn type_expr(&mut self) -> Result<TypeExpr, Diagnostic> {
        let mut ty = match self.peek().clone() {
            TokenKind::IntTy => {
                self.bump();
                TypeExpr::Int
            }
            TokenKind::BoolTy => {
                self.bump();
                TypeExpr::Bool
            }
            TokenKind::Ident(name) => {
                self.bump();
                TypeExpr::Named(name)
            }
            other => {
                return Err(Diagnostic::new(self.span(), format!("expected a type, found {other}")))
            }
        };
        while self.at(&TokenKind::LBracket) && self.peek2() == &TokenKind::RBracket {
            self.bump();
            self.bump();
            ty = TypeExpr::Array(Box::new(ty));
        }
        Ok(ty)
    }

    // ---- statements --------------------------------------------------------

    fn block(&mut self) -> Result<Block, Diagnostic> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Var => {
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(&TokenKind::Colon)?;
                let ty = self.type_expr()?;
                self.expect(&TokenKind::Assign)?;
                let init = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Var { name, ty, init, span: start.to(self.prev_span()) })
            }
            TokenKind::If => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then = self.block()?;
                let els = if self.eat(&TokenKind::Else) {
                    if self.at(&TokenKind::If) {
                        // `else if` sugar: wrap the nested if in a block.
                        let nested = self.stmt()?;
                        Some(Block { stmts: vec![nested] })
                    } else {
                        Some(self.block()?)
                    }
                } else {
                    None
                };
                Ok(Stmt::If { cond, then, els })
            }
            TokenKind::While => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::Return => {
                self.bump();
                let value =
                    if self.at(&TokenKind::Semi) { None } else { Some(self.expr()?) };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return { value, span: start.to(self.prev_span()) })
            }
            TokenKind::Break => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Break { span: start })
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Continue { span: start })
            }
            TokenKind::Super => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let args = self.args()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::SuperCall { args, span: start.to(self.prev_span()) })
            }
            _ => {
                let expr = self.expr()?;
                if self.eat(&TokenKind::Assign) {
                    if !expr.is_lvalue() {
                        return Err(Diagnostic::new(expr.span, "not an assignable expression"));
                    }
                    let value = self.expr()?;
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::Assign { target: expr, value, span: start.to(self.prev_span()) })
                } else {
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::Expr(expr))
                }
            }
        }
    }

    fn args(&mut self) -> Result<Vec<Expr>, Diagnostic> {
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    // ---- expressions (precedence climbing) ---------------------------------

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.and_expr()?;
        while self.at(&TokenKind::OrOr) {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr { kind: ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)), span };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.equality_expr()?;
        while self.at(&TokenKind::AndAnd) {
            self.bump();
            let rhs = self.equality_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr { kind: ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)), span };
        }
        Ok(lhs)
    }

    fn equality_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.relational_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.relational_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr { kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span };
        }
        Ok(lhs)
    }

    fn relational_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.additive_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.additive_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr { kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span };
        }
        Ok(lhs)
    }

    fn additive_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr { kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span };
        }
        Ok(lhs)
    }

    fn multiplicative_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr { kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, Diagnostic> {
        let start = self.span();
        if self.eat(&TokenKind::Minus) {
            let e = self.unary_expr()?;
            let span = start.to(e.span);
            Ok(Expr { kind: ExprKind::Unary(UnOp::Neg, Box::new(e)), span })
        } else if self.eat(&TokenKind::Bang) {
            let e = self.unary_expr()?;
            let span = start.to(e.span);
            Ok(Expr { kind: ExprKind::Unary(UnOp::Not, Box::new(e)), span })
        } else {
            self.postfix_expr()
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat(&TokenKind::Dot) {
                let (name, name_span) = self.ident()?;
                if self.eat(&TokenKind::LParen) {
                    let args = self.args()?;
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::Call { recv: Some(Box::new(e)), name, args },
                        span,
                    };
                } else {
                    let span = e.span.to(name_span);
                    e = Expr { kind: ExprKind::Field(Box::new(e), name), span };
                }
            } else if self.at(&TokenKind::LBracket) {
                self.bump();
                let idx = self.expr()?;
                self.expect(&TokenKind::RBracket)?;
                let span = e.span.to(self.prev_span());
                e = Expr { kind: ExprKind::Index(Box::new(e), Box::new(idx)), span };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, Diagnostic> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr { kind: ExprKind::IntLit(v), span: start })
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr { kind: ExprKind::StrLit(s), span: start })
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr { kind: ExprKind::BoolLit(true), span: start })
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr { kind: ExprKind::BoolLit(false), span: start })
            }
            TokenKind::Null => {
                self.bump();
                Ok(Expr { kind: ExprKind::Null, span: start })
            }
            TokenKind::This => {
                self.bump();
                Ok(Expr { kind: ExprKind::This, span: start })
            }
            TokenKind::New => {
                self.bump();
                let ty = self.type_expr_base()?;
                if self.at(&TokenKind::LBracket) {
                    // `new T[len]`, possibly with more `[]` suffixes for
                    // arrays of arrays: `new T[][len]` is not supported;
                    // the element type must be written fully: `new int[n]`
                    // allocates int[], `new User[n]` allocates User[].
                    self.bump();
                    let len = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    let mut elem = ty;
                    // Trailing `[]` pairs make the *element* an array type:
                    // `new int[n][]` allocates an int[][] of length n.
                    while self.at(&TokenKind::LBracket) && self.peek2() == &TokenKind::RBracket {
                        self.bump();
                        self.bump();
                        elem = TypeExpr::Array(Box::new(elem));
                    }
                    let span = start.to(self.prev_span());
                    Ok(Expr { kind: ExprKind::NewArray(elem, Box::new(len)), span })
                } else if self.at(&TokenKind::LParen) {
                    let class = match ty {
                        TypeExpr::Named(name) => name,
                        other => {
                            return Err(Diagnostic::new(
                                start,
                                format!("cannot construct non-class type {other:?}"),
                            ))
                        }
                    };
                    self.bump();
                    let args = self.args()?;
                    let span = start.to(self.prev_span());
                    Ok(Expr { kind: ExprKind::New(class, args), span })
                } else {
                    Err(Diagnostic::new(self.span(), "expected `(` or `[` after `new T`"))
                }
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let args = self.args()?;
                    let span = start.to(self.prev_span());
                    Ok(Expr { kind: ExprKind::Call { recv: None, name, args }, span })
                } else {
                    Ok(Expr { kind: ExprKind::Ident(name), span: start })
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            other => {
                Err(Diagnostic::new(self.span(), format!("expected an expression, found {other}")))
            }
        }
    }

    /// A base (non-array) type after `new`.
    fn type_expr_base(&mut self) -> Result<TypeExpr, Diagnostic> {
        match self.peek().clone() {
            TokenKind::IntTy => {
                self.bump();
                Ok(TypeExpr::Int)
            }
            TokenKind::BoolTy => {
                self.bump();
                Ok(TypeExpr::Bool)
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(TypeExpr::Named(name))
            }
            other => Err(Diagnostic::new(self.span(), format!("expected a type, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(lex(src).unwrap()).unwrap()
    }

    fn parse_err(src: &str) -> Diagnostic {
        match lex(src) {
            Ok(toks) => parse(toks).unwrap_err(),
            Err(d) => d,
        }
    }

    #[test]
    fn parses_class_with_members() {
        let p = parse_src(
            "class User extends Object {
               private final field name: String;
               static field count: int;
               ctor(n: String) { this.name = n; }
               method getName(): String { return this.name; }
             }",
        );
        assert_eq!(p.classes.len(), 1);
        let c = &p.classes[0];
        assert_eq!(c.name, "User");
        assert_eq!(c.superclass.as_deref(), Some("Object"));
        assert_eq!(c.fields.len(), 2);
        assert!(c.fields[0].is_final);
        assert!(c.fields[1].is_static);
        assert_eq!(c.methods.len(), 2);
        assert!(c.methods[0].is_ctor);
    }

    #[test]
    fn parses_precedence() {
        let p = parse_src(
            "class T { static method f(): int { return 1 + 2 * 3; } }",
        );
        let body = &p.classes[0].methods[0].body;
        let Stmt::Return { value: Some(e), .. } = &body.stmts[0] else { panic!() };
        // 1 + (2 * 3): top is Add
        let ExprKind::Binary(BinOp::Add, _, rhs) = &e.kind else { panic!("{e:?}") };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse_src(
            "class T { static method f(x: int): int {
               if (x == 0) { return 1; } else if (x == 1) { return 2; } else { return 3; }
             } }",
        );
        let Stmt::If { els: Some(els), .. } = &p.classes[0].methods[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(els.stmts[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_array_types_and_allocation() {
        let p = parse_src(
            "class T { static method f(n: int): String[][] {
               var a: String[][] = new String[n][];
               return a;
             } }",
        );
        let m = &p.classes[0].methods[0];
        assert_eq!(m.ret, TypeExpr::Array(Box::new(TypeExpr::Array(Box::new(TypeExpr::Named(
            "String".into()
        ))))));
        let Stmt::Var { init, .. } = &m.body.stmts[0] else { panic!() };
        let ExprKind::NewArray(elem, _) = &init.kind else { panic!() };
        assert_eq!(*elem, TypeExpr::Array(Box::new(TypeExpr::Named("String".into()))));
    }

    #[test]
    fn parses_calls_and_chained_postfix() {
        let p = parse_src(
            "class T { static method f(u: User): int {
               return u.getAddresses()[0].len();
             } }
             class User { method getAddresses(): int[] { return new int[1]; } }",
        );
        assert_eq!(p.classes.len(), 2);
    }

    #[test]
    fn parses_super_call() {
        let p = parse_src(
            "class B extends A { ctor(x: int) { super(x); } }
             class A { ctor(x: int) { } }",
        );
        assert!(matches!(p.classes[0].methods[0].body.stmts[0], Stmt::SuperCall { .. }));
    }

    #[test]
    fn parses_while_with_break_continue() {
        let p = parse_src(
            "class T { static method f(): void {
               while (true) { if (false) { break; } continue; }
             } }",
        );
        let Stmt::While { body, .. } = &p.classes[0].methods[0].body.stmts[0] else { panic!() };
        assert_eq!(body.stmts.len(), 2);
    }

    #[test]
    fn rejects_assignment_to_rvalue() {
        let err = parse_err("class T { static method f(): void { 1 = 2; } }");
        assert!(err.message.contains("assignable"), "{err}");
    }

    #[test]
    fn rejects_static_ctor() {
        let err = parse_err("class T { static ctor() { } }");
        assert!(err.message.contains("constructors"), "{err}");
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse_err("class T { static method f(): void { return } }");
        assert!(err.message.contains("expected"), "{err}");
    }

    #[test]
    fn unqualified_call_parses_as_recv_none() {
        let p = parse_src("class T { method f(): void { g(); } method g(): void { } }");
        let Stmt::Expr(e) = &p.classes[0].methods[0].body.stmts[0] else { panic!() };
        let ExprKind::Call { recv, .. } = &e.kind else { panic!() };
        assert!(recv.is_none());
    }
}
