//! Type-directed code generation: AST method bodies → bytecode.
//!
//! This pass type-checks while emitting, so every instruction it produces
//! is already annotated with the static receiver classes the VM's baseline
//! compiler resolves into hard offsets. The classfile verifier runs after
//! compilation as a safety net.

use std::collections::HashMap;

use jvolve_classfile::bytecode::{Instr, Pc};
use jvolve_classfile::class::{Code, MethodDef, Visibility, CTOR_NAME};
use jvolve_classfile::verify::{is_subclass, lookup_field, lookup_method, lookup_static_field};
use jvolve_classfile::{ClassFile, ClassName, ClassResolver, ClassSet, Type, STRING_CLASS};

use crate::ast::{BinOp, Block, ClassDecl, Expr, ExprKind, Program, Stmt, UnOp};
use crate::check::{lower_type, CollectOptions, Headers};
use crate::diag::{Diagnostic, Span};

/// Generates bodies for every class in `program`, completing the headers.
///
/// # Errors
///
/// Returns all type errors found in method bodies.
pub fn generate(
    program: &Program,
    headers: &Headers,
    options: &CollectOptions,
) -> Result<Vec<ClassFile>, Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let mut out = Vec::with_capacity(headers.classes.len());
    let declared: std::collections::BTreeSet<String> =
        program.classes.iter().map(|c| c.name.clone()).collect();

    for (decl, header) in program.classes.iter().zip(&headers.classes) {
        let mut class = header.clone();
        for m in &decl.methods {
            let name = if m.is_ctor { CTOR_NAME } else { m.name.as_str() };
            let header_method = header
                .find_method(name)
                .expect("collect registered every declared method")
                .clone();
            let mut gen = FnGen {
                resolver: &headers.resolver,
                class: header,
                method: &header_method,
                declared: &declared,
                externs: &options.externs,
                override_access: options.override_access,
                code: Vec::new(),
                scopes: vec![HashMap::new()],
                next_slot: 0,
                max_locals: 0,
                loops: Vec::new(),
            };
            match gen.run(m) {
                Ok(code) => {
                    let slot = class
                        .methods
                        .iter_mut()
                        .find(|mm| mm.name == name)
                        .expect("header method present");
                    slot.code = Some(code);
                }
                Err(d) => diags.push(d),
            }
        }
        // Fill in the synthesized default constructor, if collect added one.
        if !decl.methods.iter().any(|m| m.is_ctor) {
            let header_method = header.find_method(CTOR_NAME).expect("default ctor").clone();
            let mut gen = FnGen {
                resolver: &headers.resolver,
                class: header,
                method: &header_method,
                declared: &declared,
                externs: &options.externs,
                override_access: options.override_access,
                code: Vec::new(),
                scopes: vec![HashMap::new()],
                next_slot: 0,
                max_locals: 0,
                loops: Vec::new(),
            };
            match gen.default_ctor(decl) {
                Ok(code) => {
                    let slot = class
                        .methods
                        .iter_mut()
                        .find(|mm| mm.name == CTOR_NAME)
                        .expect("default ctor present");
                    slot.code = Some(code);
                }
                Err(d) => diags.push(d),
            }
        }
        out.push(class);
    }

    if diags.is_empty() {
        Ok(out)
    } else {
        Err(diags)
    }
}

/// The static type of an expression, with `null` tracked separately.
#[derive(Clone, PartialEq, Eq, Debug)]
enum STy {
    Ty(Type),
    Null,
}

impl STy {
    fn is_string(&self) -> bool {
        matches!(self, STy::Ty(Type::Class(c)) if c.as_str() == STRING_CLASS)
    }

    fn is_reference(&self) -> bool {
        matches!(self, STy::Null | STy::Ty(Type::Class(_)) | STy::Ty(Type::Array(_)))
    }

    fn display(&self) -> String {
        match self {
            STy::Ty(t) => t.to_string(),
            STy::Null => "null".to_string(),
        }
    }
}

struct LoopCtx {
    head: Pc,
    breaks: Vec<usize>,
}

struct FnGen<'a> {
    resolver: &'a ClassSet,
    class: &'a ClassFile,
    method: &'a MethodDef,
    declared: &'a std::collections::BTreeSet<String>,
    externs: &'a ClassSet,
    override_access: bool,
    code: Vec<Instr>,
    scopes: Vec<HashMap<String, (u16, Type)>>,
    next_slot: u16,
    max_locals: u16,
    loops: Vec<LoopCtx>,
}

impl<'a> FnGen<'a> {
    fn run(&mut self, decl: &crate::ast::MethodDecl) -> Result<Code, Diagnostic> {
        if !self.method.is_static {
            self.next_slot = 1; // slot 0 = this
            self.max_locals = 1;
        }
        for (p, ty) in decl.params.iter().zip(&self.method.params) {
            self.declare_local(&p.name, ty.clone(), p.span)?;
        }

        // Constructor chaining: an explicit `super(...)` must come first;
        // otherwise insert an implicit zero-argument super call when the
        // superclass declares a constructor.
        if decl.is_ctor {
            let explicit = matches!(decl.body.stmts.first(), Some(Stmt::SuperCall { .. }));
            if !explicit {
                self.implicit_super(decl.span)?;
            }
        }

        for (i, stmt) in decl.body.stmts.iter().enumerate() {
            if let Stmt::SuperCall { span, .. } = stmt {
                if !decl.is_ctor || i != 0 {
                    return Err(Diagnostic::new(
                        *span,
                        "super(...) is only allowed as the first statement of a constructor",
                    ));
                }
            }
            self.stmt(stmt)?;
        }

        if !block_returns(&decl.body) {
            if self.method.ret == Type::Void {
                self.emit(Instr::Return);
            } else {
                return Err(Diagnostic::new(
                    decl.span,
                    format!(
                        "method {} may complete without returning a value",
                        self.method.name
                    ),
                ));
            }
        }

        Ok(Code { instrs: std::mem::take(&mut self.code), max_locals: self.max_locals })
    }

    fn default_ctor(&mut self, decl: &ClassDecl) -> Result<Code, Diagnostic> {
        self.next_slot = 1;
        self.max_locals = 1;
        self.implicit_super(decl.span)?;
        self.emit(Instr::Return);
        Ok(Code { instrs: std::mem::take(&mut self.code), max_locals: self.max_locals })
    }

    fn implicit_super(&mut self, span: Span) -> Result<(), Diagnostic> {
        let Some(sup_name) = &self.class.superclass else { return Ok(()) };
        let Some(sup) = self.resolver.resolve(sup_name) else { return Ok(()) };
        let Some(sup_ctor) = sup.find_method(CTOR_NAME) else { return Ok(()) };
        if !sup_ctor.params.is_empty() {
            return Err(Diagnostic::new(
                span,
                format!(
                    "constructor of {} must call super(...): superclass {} has a constructor \
                     with parameters",
                    self.class.name, sup_name
                ),
            ));
        }
        self.emit(Instr::Load(0));
        self.emit(Instr::CallSpecial {
            class: sup_name.clone(),
            method: CTOR_NAME.to_string(),
            argc: 0,
        });
        Ok(())
    }

    // ---- helpers -------------------------------------------------------

    fn emit(&mut self, i: Instr) -> Pc {
        let pc = self.code.len() as Pc;
        self.code.push(i);
        pc
    }

    fn emit_forward(&mut self, template: Instr) -> usize {
        let at = self.code.len();
        self.code.push(template);
        at
    }

    fn patch_here(&mut self, at: usize) {
        let target = self.code.len() as Pc;
        match &mut self.code[at] {
            Instr::Jump(t) | Instr::JumpIfTrue(t) | Instr::JumpIfFalse(t) => *t = target,
            other => unreachable!("patching non-branch {other:?}"),
        }
    }

    fn declare_local(&mut self, name: &str, ty: Type, span: Span) -> Result<u16, Diagnostic> {
        let scope = self.scopes.last_mut().expect("at least one scope");
        if scope.contains_key(name) {
            return Err(Diagnostic::new(span, format!("variable {name} is already defined")));
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        self.max_locals = self.max_locals.max(self.next_slot);
        scope.insert(name.to_string(), (slot, ty));
        Ok(slot)
    }

    fn find_local(&self, name: &str) -> Option<(u16, Type)> {
        for scope in self.scopes.iter().rev() {
            if let Some(entry) = scope.get(name) {
                return Some(entry.clone());
            }
        }
        None
    }

    fn is_class_name(&self, name: &str) -> bool {
        self.resolver.resolve(&ClassName::from(name)).is_some()
    }

    fn assignable(&self, from: &STy, to: &Type) -> bool {
        match (from, to) {
            (STy::Null, t) => t.is_reference(),
            (STy::Ty(Type::Int), Type::Int) => true,
            (STy::Ty(Type::Bool), Type::Bool) => true,
            (STy::Ty(Type::Class(c)), Type::Class(d)) => is_subclass(self.resolver, c, d),
            (STy::Ty(Type::Array(_)), Type::Class(d)) => {
                d.as_str() == jvolve_classfile::OBJECT_CLASS
            }
            (STy::Ty(Type::Array(a)), Type::Array(b)) => **a == **b,
            _ => false,
        }
    }

    fn require_assignable(&self, from: &STy, to: &Type, span: Span) -> Result<(), Diagnostic> {
        if self.assignable(from, to) {
            Ok(())
        } else {
            Err(Diagnostic::new(
                span,
                format!("type {} is not assignable to {to}", from.display()),
            ))
        }
    }

    fn check_access(
        &self,
        declaring: &ClassName,
        visibility: Visibility,
        what: &str,
        span: Span,
    ) -> Result<(), Diagnostic> {
        if self.override_access {
            return Ok(());
        }
        let ok = match visibility {
            Visibility::Public => true,
            Visibility::Private => &self.class.name == declaring,
            Visibility::Protected => is_subclass(self.resolver, &self.class.name, declaring),
        };
        if ok {
            Ok(())
        } else {
            Err(Diagnostic::new(span, format!("{what} of {declaring} is not accessible here")))
        }
    }

    // ---- statements ------------------------------------------------------

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), Diagnostic> {
        match stmt {
            Stmt::Var { name, ty, init, span } => {
                let ty = lower_type(ty, self.declared, self.externs, *span)?;
                if ty == Type::Void {
                    return Err(Diagnostic::new(*span, "variables cannot be void"));
                }
                let got = self.expr(init)?;
                self.require_assignable(&got, &ty, init.span)?;
                let slot = self.declare_local(name, ty, *span)?;
                self.emit(Instr::Store(slot));
            }
            Stmt::Assign { target, value, span } => self.assign(target, value, *span)?,
            Stmt::If { cond, then, els } => {
                let ct = self.expr(cond)?;
                self.require_assignable(&ct, &Type::Bool, cond.span)?;
                let jf = self.emit_forward(Instr::JumpIfFalse(0));
                self.block(then)?;
                if let Some(els) = els {
                    let jend = self.emit_forward(Instr::Jump(0));
                    self.patch_here(jf);
                    self.block(els)?;
                    self.patch_here(jend);
                } else {
                    self.patch_here(jf);
                }
            }
            Stmt::While { cond, body } => {
                // `while (true)` compiles to an unconditional loop (as
                // javac does), so no branch ever targets past the end of a
                // method that diverges.
                let infinite = matches!(cond.kind, ExprKind::BoolLit(true));
                let head = self.code.len() as Pc;
                let exit = if infinite {
                    None
                } else {
                    let ct = self.expr(cond)?;
                    self.require_assignable(&ct, &Type::Bool, cond.span)?;
                    Some(self.emit_forward(Instr::JumpIfFalse(0)))
                };
                self.loops.push(LoopCtx { head, breaks: Vec::new() });
                self.block(body)?;
                self.emit(Instr::Jump(head));
                let ctx = self.loops.pop().expect("loop context");
                if let Some(exit) = exit {
                    self.patch_here(exit);
                }
                for b in ctx.breaks {
                    self.patch_here(b);
                }
            }
            Stmt::Return { value, span } => match (value, self.method.ret.clone()) {
                (None, Type::Void) => {
                    self.emit(Instr::Return);
                }
                (None, ret) => {
                    return Err(Diagnostic::new(
                        *span,
                        format!("method returns {ret}, but return has no value"),
                    ))
                }
                (Some(v), Type::Void) => {
                    return Err(Diagnostic::new(v.span, "void method cannot return a value"))
                }
                (Some(v), ret) => {
                    let got = self.expr(v)?;
                    self.require_assignable(&got, &ret, v.span)?;
                    self.emit(Instr::ReturnValue);
                }
            },
            Stmt::Break { span } => {
                if self.loops.is_empty() {
                    return Err(Diagnostic::new(*span, "break outside a loop"));
                }
                let at = self.emit_forward(Instr::Jump(0));
                self.loops.last_mut().expect("loop").breaks.push(at);
            }
            Stmt::Continue { span } => {
                let Some(ctx) = self.loops.last() else {
                    return Err(Diagnostic::new(*span, "continue outside a loop"));
                };
                let head = ctx.head;
                self.emit(Instr::Jump(head));
            }
            Stmt::SuperCall { args, span } => {
                let Some(sup_name) = self.class.superclass.clone() else {
                    return Err(Diagnostic::new(*span, "class has no superclass"));
                };
                let sup = self
                    .resolver
                    .resolve(&sup_name)
                    .ok_or_else(|| Diagnostic::new(*span, "unknown superclass"))?;
                let Some(ctor) = sup.find_method(CTOR_NAME).cloned() else {
                    return Err(Diagnostic::new(
                        *span,
                        format!("superclass {sup_name} has no constructor"),
                    ));
                };
                self.emit(Instr::Load(0));
                self.call_args(args, &ctor.params, *span)?;
                self.emit(Instr::CallSpecial {
                    class: sup_name,
                    method: CTOR_NAME.to_string(),
                    argc: args.len() as u8,
                });
            }
            Stmt::Expr(e) => {
                let ty = self.expr_allow_void(e)?;
                if ty != STy::Ty(Type::Void) {
                    self.emit(Instr::Pop);
                }
            }
        }
        Ok(())
    }

    fn block(&mut self, b: &Block) -> Result<(), Diagnostic> {
        self.scopes.push(HashMap::new());
        let saved = self.next_slot;
        for s in &b.stmts {
            if let Stmt::SuperCall { span, .. } = s {
                return Err(Diagnostic::new(
                    *span,
                    "super(...) is only allowed as the first statement of a constructor",
                ));
            }
            self.stmt(s)?;
        }
        self.scopes.pop();
        self.next_slot = saved;
        Ok(())
    }

    fn assign(&mut self, target: &Expr, value: &Expr, span: Span) -> Result<(), Diagnostic> {
        match &target.kind {
            ExprKind::Ident(name) => {
                if let Some((slot, ty)) = self.find_local(name) {
                    let got = self.expr(value)?;
                    self.require_assignable(&got, &ty, value.span)?;
                    self.emit(Instr::Store(slot));
                    Ok(())
                } else {
                    Err(Diagnostic::new(target.span, format!("unknown variable {name}")))
                }
            }
            ExprKind::Field(obj, fname) => {
                // Static field assignment: `C.f = v` with C a class name.
                if let ExprKind::Ident(cname) = &obj.kind {
                    if self.find_local(cname).is_none() && self.is_class_name(cname) {
                        let class = ClassName::from(cname.as_str());
                        let (decl, def) = lookup_static_field(self.resolver, &class, fname)
                            .ok_or_else(|| {
                                Diagnostic::new(span, format!("unknown static field {cname}.{fname}"))
                            })?;
                        self.check_access(&decl, def.visibility, "static field", span)?;
                        self.check_final(&decl, def.is_final, fname, span)?;
                        let fty = def.ty.clone();
                        let got = self.expr(value)?;
                        self.require_assignable(&got, &fty, value.span)?;
                        self.emit(Instr::PutStatic { class, field: fname.clone() });
                        return Ok(());
                    }
                }
                let oty = self.expr(obj)?;
                let STy::Ty(Type::Class(cls)) = oty else {
                    return Err(Diagnostic::new(
                        obj.span,
                        format!("field assignment on non-object type {}", oty.display()),
                    ));
                };
                let (decl, def) = lookup_field(self.resolver, &cls, fname).ok_or_else(|| {
                    Diagnostic::new(span, format!("unknown field {cls}.{fname}"))
                })?;
                self.check_access(&decl, def.visibility, "field", span)?;
                self.check_final(&decl, def.is_final, fname, span)?;
                let fty = def.ty.clone();
                let got = self.expr(value)?;
                self.require_assignable(&got, &fty, value.span)?;
                self.emit(Instr::PutField { class: cls, field: fname.clone() });
                Ok(())
            }
            ExprKind::Index(arr, idx) => {
                let aty = self.expr(arr)?;
                let STy::Ty(Type::Array(elem)) = aty else {
                    return Err(Diagnostic::new(
                        arr.span,
                        format!("indexing non-array type {}", aty.display()),
                    ));
                };
                let ity = self.expr(idx)?;
                self.require_assignable(&ity, &Type::Int, idx.span)?;
                let got = self.expr(value)?;
                self.require_assignable(&got, &elem, value.span)?;
                self.emit(Instr::AStore);
                Ok(())
            }
            _ => Err(Diagnostic::new(target.span, "not an assignable expression")),
        }
    }

    fn check_final(
        &self,
        declaring: &ClassName,
        is_final: bool,
        fname: &str,
        span: Span,
    ) -> Result<(), Diagnostic> {
        if !is_final || self.override_access {
            return Ok(());
        }
        let in_own_ctor = self.method.name == CTOR_NAME && &self.class.name == declaring;
        if in_own_ctor {
            Ok(())
        } else {
            Err(Diagnostic::new(
                span,
                format!("cannot assign to final field {declaring}.{fname} here"),
            ))
        }
    }

    // ---- expressions -----------------------------------------------------

    /// Evaluates an expression that must produce a value.
    fn expr(&mut self, e: &Expr) -> Result<STy, Diagnostic> {
        let ty = self.expr_allow_void(e)?;
        if ty == STy::Ty(Type::Void) {
            return Err(Diagnostic::new(e.span, "void expression used as a value"));
        }
        Ok(ty)
    }

    fn expr_allow_void(&mut self, e: &Expr) -> Result<STy, Diagnostic> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                self.emit(Instr::ConstInt(*v));
                Ok(STy::Ty(Type::Int))
            }
            ExprKind::BoolLit(v) => {
                self.emit(Instr::ConstBool(*v));
                Ok(STy::Ty(Type::Bool))
            }
            ExprKind::StrLit(s) => {
                self.emit(Instr::ConstStr(s.clone()));
                Ok(STy::Ty(Type::string()))
            }
            ExprKind::Null => {
                self.emit(Instr::ConstNull);
                Ok(STy::Null)
            }
            ExprKind::This => {
                if self.method.is_static {
                    return Err(Diagnostic::new(e.span, "this in a static method"));
                }
                self.emit(Instr::Load(0));
                Ok(STy::Ty(Type::Class(self.class.name.clone())))
            }
            ExprKind::Ident(name) => {
                if let Some((slot, ty)) = self.find_local(name) {
                    self.emit(Instr::Load(slot));
                    Ok(STy::Ty(ty))
                } else if self.is_class_name(name) {
                    Err(Diagnostic::new(
                        e.span,
                        format!("class {name} used as a value; access a member instead"),
                    ))
                } else {
                    Err(Diagnostic::new(e.span, format!("unknown variable {name}")))
                }
            }
            ExprKind::Unary(op, inner) => {
                let ty = self.expr(inner)?;
                match op {
                    UnOp::Neg => {
                        self.require_assignable(&ty, &Type::Int, inner.span)?;
                        self.emit(Instr::Neg);
                        Ok(STy::Ty(Type::Int))
                    }
                    UnOp::Not => {
                        self.require_assignable(&ty, &Type::Bool, inner.span)?;
                        self.emit(Instr::Not);
                        Ok(STy::Ty(Type::Bool))
                    }
                }
            }
            ExprKind::Binary(op, lhs, rhs) => self.binary(*op, lhs, rhs, e.span),
            ExprKind::Field(obj, fname) => {
                // Static field read: `C.f`.
                if let ExprKind::Ident(cname) = &obj.kind {
                    if self.find_local(cname).is_none() && self.is_class_name(cname) {
                        let class = ClassName::from(cname.as_str());
                        let (decl, def) = lookup_static_field(self.resolver, &class, fname)
                            .ok_or_else(|| {
                                Diagnostic::new(
                                    e.span,
                                    format!("unknown static field {cname}.{fname}"),
                                )
                            })?;
                        self.check_access(&decl, def.visibility, "static field", e.span)?;
                        self.emit(Instr::GetStatic { class, field: fname.clone() });
                        return Ok(STy::Ty(def.ty.clone()));
                    }
                }
                let oty = self.expr(obj)?;
                match oty {
                    STy::Ty(Type::Array(_)) if fname == "length" => {
                        self.emit(Instr::ArrayLen);
                        Ok(STy::Ty(Type::Int))
                    }
                    STy::Ty(Type::Class(cls)) => {
                        let (decl, def) =
                            lookup_field(self.resolver, &cls, fname).ok_or_else(|| {
                                Diagnostic::new(e.span, format!("unknown field {cls}.{fname}"))
                            })?;
                        self.check_access(&decl, def.visibility, "field", e.span)?;
                        self.emit(Instr::GetField { class: cls, field: fname.clone() });
                        Ok(STy::Ty(def.ty.clone()))
                    }
                    other => Err(Diagnostic::new(
                        obj.span,
                        format!("field access on non-object type {}", other.display()),
                    )),
                }
            }
            ExprKind::Index(arr, idx) => {
                let aty = self.expr(arr)?;
                let STy::Ty(Type::Array(elem)) = aty else {
                    return Err(Diagnostic::new(
                        arr.span,
                        format!("indexing non-array type {}", aty.display()),
                    ));
                };
                let ity = self.expr(idx)?;
                self.require_assignable(&ity, &Type::Int, idx.span)?;
                self.emit(Instr::ALoad);
                Ok(STy::Ty(*elem))
            }
            ExprKind::Call { recv, name, args } => self.call(recv.as_deref(), name, args, e.span),
            ExprKind::New(cname, args) => {
                let class = ClassName::from(cname.as_str());
                let cls = self.resolver.resolve(&class).ok_or_else(|| {
                    Diagnostic::new(e.span, format!("unknown class {cname}"))
                })?;
                if cls.flags.native {
                    return Err(Diagnostic::new(
                        e.span,
                        format!("cannot instantiate builtin class {cname}"),
                    ));
                }
                let ctor = cls.find_method(CTOR_NAME).cloned();
                self.emit(Instr::New(class.clone()));
                match ctor {
                    Some(ctor) => {
                        self.check_access(&class, ctor.visibility, "constructor", e.span)?;
                        self.emit(Instr::Dup);
                        self.call_args(args, &ctor.params, e.span)?;
                        self.emit(Instr::CallSpecial {
                            class: class.clone(),
                            method: CTOR_NAME.to_string(),
                            argc: args.len() as u8,
                        });
                    }
                    None => {
                        if !args.is_empty() {
                            return Err(Diagnostic::new(
                                e.span,
                                format!("class {cname} has no constructor taking arguments"),
                            ));
                        }
                    }
                }
                Ok(STy::Ty(Type::Class(class)))
            }
            ExprKind::NewArray(elem, len) => {
                let elem_ty = lower_type(elem, self.declared, self.externs, e.span)?;
                if elem_ty == Type::Void {
                    return Err(Diagnostic::new(e.span, "array of void"));
                }
                let lty = self.expr(len)?;
                self.require_assignable(&lty, &Type::Int, len.span)?;
                self.emit(Instr::NewArray(elem_ty.clone()));
                Ok(STy::Ty(Type::array(elem_ty)))
            }
        }
    }

    fn binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, span: Span) -> Result<STy, Diagnostic> {
        use BinOp::*;
        match op {
            And => {
                let lt = self.expr(lhs)?;
                self.require_assignable(&lt, &Type::Bool, lhs.span)?;
                let jf = self.emit_forward(Instr::JumpIfFalse(0));
                let rt = self.expr(rhs)?;
                self.require_assignable(&rt, &Type::Bool, rhs.span)?;
                let jend = self.emit_forward(Instr::Jump(0));
                self.patch_here(jf);
                self.emit(Instr::ConstBool(false));
                self.patch_here(jend);
                Ok(STy::Ty(Type::Bool))
            }
            Or => {
                let lt = self.expr(lhs)?;
                self.require_assignable(&lt, &Type::Bool, lhs.span)?;
                let jt = self.emit_forward(Instr::JumpIfTrue(0));
                let rt = self.expr(rhs)?;
                self.require_assignable(&rt, &Type::Bool, rhs.span)?;
                let jend = self.emit_forward(Instr::Jump(0));
                self.patch_here(jt);
                self.emit(Instr::ConstBool(true));
                self.patch_here(jend);
                Ok(STy::Ty(Type::Bool))
            }
            Add => {
                let lt = self.expr(lhs)?;
                let rt = self.expr(rhs)?;
                if lt == STy::Ty(Type::Int) && rt == STy::Ty(Type::Int) {
                    self.emit(Instr::Add);
                    Ok(STy::Ty(Type::Int))
                } else if lt.is_string() && rt.is_string() {
                    self.emit(Instr::StrConcat);
                    Ok(STy::Ty(Type::string()))
                } else {
                    Err(Diagnostic::new(
                        span,
                        format!("+ requires two ints or two Strings, found {} and {}",
                            lt.display(), rt.display()),
                    ))
                }
            }
            Sub | Mul | Div | Rem => {
                let lt = self.expr(lhs)?;
                self.require_assignable(&lt, &Type::Int, lhs.span)?;
                let rt = self.expr(rhs)?;
                self.require_assignable(&rt, &Type::Int, rhs.span)?;
                self.emit(match op {
                    Sub => Instr::Sub,
                    Mul => Instr::Mul,
                    Div => Instr::Div,
                    _ => Instr::Rem,
                });
                Ok(STy::Ty(Type::Int))
            }
            Lt | Le | Gt | Ge => {
                let lt = self.expr(lhs)?;
                self.require_assignable(&lt, &Type::Int, lhs.span)?;
                let rt = self.expr(rhs)?;
                self.require_assignable(&rt, &Type::Int, rhs.span)?;
                self.emit(match op {
                    Lt => Instr::CmpLt,
                    Le => Instr::CmpLe,
                    Gt => Instr::CmpGt,
                    _ => Instr::CmpGe,
                });
                Ok(STy::Ty(Type::Bool))
            }
            Eq | Ne => {
                let lt = self.expr(lhs)?;
                let rt = self.expr(rhs)?;
                let negate = op == Ne;
                match (&lt, &rt) {
                    (STy::Ty(Type::Int), STy::Ty(Type::Int)) => {
                        self.emit(if negate { Instr::CmpNe } else { Instr::CmpEq });
                    }
                    (STy::Ty(Type::Bool), STy::Ty(Type::Bool)) => {
                        self.emit(Instr::BoolEq);
                        if negate {
                            self.emit(Instr::Not);
                        }
                    }
                    _ if lt.is_string() && (rt.is_string() || rt == STy::Null) => {
                        self.emit(Instr::StrEq);
                        if negate {
                            self.emit(Instr::Not);
                        }
                    }
                    _ if rt.is_string() && lt == STy::Null => {
                        self.emit(Instr::StrEq);
                        if negate {
                            self.emit(Instr::Not);
                        }
                    }
                    _ if lt.is_reference() && rt.is_reference() => {
                        self.emit(if negate { Instr::RefNe } else { Instr::RefEq });
                    }
                    _ => {
                        return Err(Diagnostic::new(
                            span,
                            format!(
                                "cannot compare {} with {}",
                                lt.display(),
                                rt.display()
                            ),
                        ))
                    }
                }
                Ok(STy::Ty(Type::Bool))
            }
        }
    }

    fn call(
        &mut self,
        recv: Option<&Expr>,
        name: &str,
        args: &[Expr],
        span: Span,
    ) -> Result<STy, Diagnostic> {
        match recv {
            None => {
                // Unqualified call: method of the current class (chain).
                let (decl, def) = lookup_method(self.resolver, &self.class.name, name)
                    .map(|(c, m)| (c, m.clone()))
                    .ok_or_else(|| {
                        Diagnostic::new(span, format!("unknown method {name} in this class"))
                    })?;
                self.check_access(&decl, def.visibility, "method", span)?;
                if def.is_static {
                    self.call_args(args, &def.params, span)?;
                    self.emit(Instr::CallStatic {
                        class: self.class.name.clone(),
                        method: name.to_string(),
                        argc: args.len() as u8,
                    });
                } else {
                    if self.method.is_static {
                        return Err(Diagnostic::new(
                            span,
                            format!("instance method {name} called from a static method"),
                        ));
                    }
                    self.emit(Instr::Load(0));
                    self.call_args(args, &def.params, span)?;
                    self.emit(Instr::CallVirtual {
                        class: self.class.name.clone(),
                        method: name.to_string(),
                        argc: args.len() as u8,
                    });
                }
                Ok(STy::Ty(def.ret))
            }
            Some(r) => {
                // Static call `C.m(...)` when C names a class, not a local.
                if let ExprKind::Ident(cname) = &r.kind {
                    if self.find_local(cname).is_none() && self.is_class_name(cname) {
                        let class = ClassName::from(cname.as_str());
                        let (decl, def) = lookup_method(self.resolver, &class, name)
                            .map(|(c, m)| (c, m.clone()))
                            .ok_or_else(|| {
                                Diagnostic::new(span, format!("unknown method {cname}.{name}"))
                            })?;
                        if !def.is_static {
                            return Err(Diagnostic::new(
                                span,
                                format!("{cname}.{name} is not a static method"),
                            ));
                        }
                        self.check_access(&decl, def.visibility, "method", span)?;
                        self.call_args(args, &def.params, span)?;
                        self.emit(Instr::CallStatic {
                            class,
                            method: name.to_string(),
                            argc: args.len() as u8,
                        });
                        return Ok(STy::Ty(def.ret));
                    }
                }
                let rty = self.expr(r)?;
                let STy::Ty(Type::Class(cls)) = rty else {
                    return Err(Diagnostic::new(
                        r.span,
                        format!("method call on non-object type {}", rty.display()),
                    ));
                };
                let (decl, def) = lookup_method(self.resolver, &cls, name)
                    .map(|(c, m)| (c, m.clone()))
                    .ok_or_else(|| {
                        Diagnostic::new(span, format!("unknown method {cls}.{name}"))
                    })?;
                if def.is_static {
                    return Err(Diagnostic::new(
                        span,
                        format!("static method {cls}.{name} called on an instance"),
                    ));
                }
                self.check_access(&decl, def.visibility, "method", span)?;
                self.call_args(args, &def.params, span)?;
                self.emit(Instr::CallVirtual {
                    class: cls,
                    method: name.to_string(),
                    argc: args.len() as u8,
                });
                Ok(STy::Ty(def.ret))
            }
        }
    }

    fn call_args(&mut self, args: &[Expr], params: &[Type], span: Span) -> Result<(), Diagnostic> {
        if args.len() != params.len() {
            return Err(Diagnostic::new(
                span,
                format!("call passes {} arguments, expected {}", args.len(), params.len()),
            ));
        }
        for (a, p) in args.iter().zip(params) {
            let got = self.expr(a)?;
            self.require_assignable(&got, p, a.span)?;
        }
        Ok(())
    }
}

/// Whether a block definitely returns (or loops forever) on all paths.
fn block_returns(b: &Block) -> bool {
    b.stmts.iter().any(stmt_returns)
}

fn stmt_returns(s: &Stmt) -> bool {
    match s {
        Stmt::Return { .. } => true,
        Stmt::If { then, els: Some(els), .. } => block_returns(then) && block_returns(els),
        Stmt::While { cond, body } => {
            matches!(cond.kind, ExprKind::BoolLit(true)) && !block_breaks(body)
        }
        _ => false,
    }
}

/// Whether a block contains a `break` binding to the *enclosing* loop
/// (does not descend into nested loops).
fn block_breaks(b: &Block) -> bool {
    b.stmts.iter().any(|s| match s {
        Stmt::Break { .. } => true,
        Stmt::If { then, els, .. } => {
            block_breaks(then) || els.as_ref().is_some_and(block_breaks)
        }
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::collect;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn compile_src(src: &str) -> Result<Vec<ClassFile>, Vec<Diagnostic>> {
        let program = parse(lex(src).unwrap()).unwrap();
        let opts = CollectOptions::default();
        let headers = collect(&program, &opts)?;
        generate(&program, &headers, &opts)
    }

    fn method_code(classes: &[ClassFile], class: &str, method: &str) -> Vec<Instr> {
        classes
            .iter()
            .find(|c| c.name.as_str() == class)
            .unwrap()
            .find_method(method)
            .unwrap()
            .code
            .clone()
            .unwrap()
            .instrs
    }

    #[test]
    fn generates_arithmetic() {
        let classes =
            compile_src("class T { static method f(a: int, b: int): int { return a + b * 2; } }")
                .unwrap();
        let code = method_code(&classes, "T", "f");
        assert_eq!(
            code,
            vec![
                Instr::Load(0),
                Instr::Load(1),
                Instr::ConstInt(2),
                Instr::Mul,
                Instr::Add,
                Instr::ReturnValue
            ]
        );
    }

    #[test]
    fn string_plus_is_concat_and_eq_is_value_equality() {
        let classes = compile_src(
            "class T { static method f(a: String, b: String): bool { return a + b == \"x\"; } }",
        )
        .unwrap();
        let code = method_code(&classes, "T", "f");
        assert!(code.contains(&Instr::StrConcat), "{code:?}");
        assert!(code.contains(&Instr::StrEq), "{code:?}");
    }

    #[test]
    fn new_emits_ctor_call() {
        let classes = compile_src(
            "class User { field name: String; ctor(n: String) { this.name = n; } }
             class T { static method f(): User { return new User(\"a\"); } }",
        )
        .unwrap();
        let code = method_code(&classes, "T", "f");
        assert_eq!(code[0], Instr::New("User".into()));
        assert_eq!(code[1], Instr::Dup);
        assert!(matches!(code[3], Instr::CallSpecial { .. }), "{code:?}");
    }

    #[test]
    fn default_ctor_synthesized_with_super_chain() {
        let classes = compile_src(
            "class A { ctor() { } }
             class B extends A { }",
        )
        .unwrap();
        let code = method_code(&classes, "B", CTOR_NAME);
        assert_eq!(code[0], Instr::Load(0));
        assert!(
            matches!(&code[1], Instr::CallSpecial { class, .. } if class.as_str() == "A"),
            "{code:?}"
        );
    }

    #[test]
    fn missing_super_call_is_error() {
        let errs = compile_src(
            "class A { ctor(x: int) { } }
             class B extends A { ctor() { } }",
        )
        .unwrap_err();
        assert!(errs[0].message.contains("must call super"), "{errs:?}");
    }

    #[test]
    fn while_loop_has_back_edge() {
        let classes = compile_src(
            "class T { static method f(n: int): int {
               var i: int = 0;
               while (i < n) { i = i + 1; }
               return i;
             } }",
        )
        .unwrap();
        let code = method_code(&classes, "T", "f");
        let back = code.iter().any(|i| matches!(i, Instr::Jump(t) if (*t as usize) < code.len() - 2));
        assert!(back, "no back edge in {code:?}");
    }

    #[test]
    fn break_and_continue_patch_correctly() {
        let classes = compile_src(
            "class T { static method f(): int {
               var i: int = 0;
               while (true) {
                 i = i + 1;
                 if (i > 10) { break; }
                 continue;
               }
               return i;
             } }",
        )
        .unwrap();
        // Must verify: all branch targets are in range and typed correctly.
        let code = method_code(&classes, "T", "f");
        for i in &code {
            if let Some(t) = i.branch_target() {
                assert!((t as usize) < code.len(), "target {t} out of range in {code:?}");
            }
        }
    }

    #[test]
    fn infinite_loop_method_needs_no_return() {
        compile_src(
            "class T { static method run(): void { while (true) { Sys.yieldNow(); } } }",
        )
        .unwrap();
    }

    #[test]
    fn non_void_fallthrough_is_error() {
        let errs = compile_src(
            "class T { static method f(b: bool): int { if (b) { return 1; } } }",
        )
        .unwrap_err();
        assert!(errs[0].message.contains("without returning"), "{errs:?}");
    }

    #[test]
    fn builtin_calls_typecheck() {
        compile_src(
            "class T { static method f(): void {
               Sys.print(\"hello \" + Str.fromInt(42));
               var parts: String[] = Str.split(\"a@b\", \"@\");
               Sys.printInt(parts.length);
             } }",
        )
        .unwrap();
    }

    #[test]
    fn private_field_access_from_other_class_is_error() {
        let errs = compile_src(
            "class A { private field x: int; }
             class T { static method f(a: A): int { return a.x; } }",
        )
        .unwrap_err();
        assert!(errs[0].message.contains("not accessible"), "{errs:?}");
    }

    #[test]
    fn final_field_assignment_outside_ctor_is_error() {
        let errs = compile_src(
            "class A { final field x: int; method set(v: int): void { this.x = v; } }",
        )
        .unwrap_err();
        assert!(errs[0].message.contains("final"), "{errs:?}");
    }

    #[test]
    fn override_access_relaxes_checks() {
        let program = parse(
            lex("class Xf { static method t(a: Hidden): void { a.x = 5; } }").unwrap(),
        )
        .unwrap();
        let mut externs = ClassSet::new();
        externs.insert(
            jvolve_classfile::builder::ClassBuilder::new("Hidden")
                .field_full("x", Type::Int, Visibility::Private, true)
                .build(),
        );
        let opts = CollectOptions { externs, override_access: true };
        let headers = collect(&program, &opts).unwrap();
        let classes = generate(&program, &headers, &opts).unwrap();
        assert!(classes[0].flags.access_override);
    }

    #[test]
    fn virtual_dispatch_through_super_type() {
        let classes = compile_src(
            "class A { method id(): int { return 1; } }
             class B extends A { method id(): int { return 2; } }
             class T { static method f(a: A): int { return a.id(); } }",
        )
        .unwrap();
        let code = method_code(&classes, "T", "f");
        assert!(
            code.iter().any(|i| matches!(i, Instr::CallVirtual { class, .. } if class.as_str() == "A")),
            "{code:?}"
        );
    }

    #[test]
    fn unknown_variable_is_error() {
        let errs = compile_src("class T { static method f(): int { return x; } }").unwrap_err();
        assert!(errs[0].message.contains("unknown variable"), "{errs:?}");
    }

    #[test]
    fn comparing_int_with_string_is_error() {
        let errs = compile_src(
            "class T { static method f(): bool { return 1 == \"a\"; } }",
        )
        .unwrap_err();
        assert!(errs[0].message.contains("cannot compare"), "{errs:?}");
    }

    #[test]
    fn null_comparison_with_object_uses_ref_eq() {
        let classes = compile_src(
            "class A { }
             class T { static method f(a: A): bool { return a == null; } }",
        )
        .unwrap();
        let code = method_code(&classes, "T", "f");
        assert!(code.contains(&Instr::RefEq), "{code:?}");
    }

    #[test]
    fn block_scoping_allows_shadowing_in_inner_scope() {
        compile_src(
            "class T { static method f(): int {
               var x: int = 1;
               if (true) { var y: int = 2; x = x + y; }
               return x;
             } }",
        )
        .unwrap();
    }

    #[test]
    fn duplicate_local_in_same_scope_is_error() {
        let errs = compile_src(
            "class T { static method f(): void { var x: int = 1; var x: int = 2; } }",
        )
        .unwrap_err();
        assert!(errs[0].message.contains("already defined"), "{errs:?}");
    }
}
