//! Tokens of the MJ language.

use std::fmt;

use crate::diag::Span;

/// A lexical token kind.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    // Literals and identifiers
    /// Integer literal.
    Int(i64),
    /// String literal (escapes already processed).
    Str(String),
    /// Identifier.
    Ident(String),

    // Keywords
    /// `class`
    Class,
    /// `extends`
    Extends,
    /// `field`
    Field,
    /// `method`
    Method,
    /// `ctor`
    Ctor,
    /// `static`
    Static,
    /// `final`
    Final,
    /// `public`
    Public,
    /// `private`
    Private,
    /// `protected`
    Protected,
    /// `var`
    Var,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `new`
    New,
    /// `this`
    This,
    /// `super`
    Super,
    /// `null`
    Null,
    /// `true`
    True,
    /// `false`
    False,
    /// `int`
    IntTy,
    /// `bool`
    BoolTy,
    /// `void`
    VoidTy,

    // Punctuation and operators
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Str(_) => f.write_str("string literal"),
            TokenKind::Ident(name) => write!(f, "identifier `{name}`"),
            TokenKind::Eof => f.write_str("end of input"),
            other => write!(f, "`{}`", keyword_or_symbol(other)),
        }
    }
}

fn keyword_or_symbol(kind: &TokenKind) -> &'static str {
    use TokenKind::*;
    match kind {
        Class => "class",
        Extends => "extends",
        Field => "field",
        Method => "method",
        Ctor => "ctor",
        Static => "static",
        Final => "final",
        Public => "public",
        Private => "private",
        Protected => "protected",
        Var => "var",
        If => "if",
        Else => "else",
        While => "while",
        Return => "return",
        Break => "break",
        Continue => "continue",
        New => "new",
        This => "this",
        Super => "super",
        Null => "null",
        True => "true",
        False => "false",
        IntTy => "int",
        BoolTy => "bool",
        VoidTy => "void",
        LBrace => "{",
        RBrace => "}",
        LParen => "(",
        RParen => ")",
        LBracket => "[",
        RBracket => "]",
        Semi => ";",
        Colon => ":",
        Comma => ",",
        Dot => ".",
        Assign => "=",
        EqEq => "==",
        NotEq => "!=",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        Plus => "+",
        Minus => "-",
        Star => "*",
        Slash => "/",
        Percent => "%",
        Bang => "!",
        AndAnd => "&&",
        OrOr => "||",
        Int(_) | Str(_) | Ident(_) | Eof => unreachable!("handled by Display"),
    }
}

/// A token with its source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token kind (and payload for literals/identifiers).
    pub kind: TokenKind,
    /// Source location.
    pub span: Span,
}

/// Looks up the keyword for an identifier-shaped lexeme, if it is one.
pub fn keyword(lexeme: &str) -> Option<TokenKind> {
    use TokenKind::*;
    Some(match lexeme {
        "class" => Class,
        "extends" => Extends,
        "field" => Field,
        "method" => Method,
        "ctor" => Ctor,
        "static" => Static,
        "final" => Final,
        "public" => Public,
        "private" => Private,
        "protected" => Protected,
        "var" => Var,
        "if" => If,
        "else" => Else,
        "while" => While,
        "return" => Return,
        "break" => Break,
        "continue" => Continue,
        "new" => New,
        "this" => This,
        "super" => Super,
        "null" => Null,
        "true" => True,
        "false" => False,
        "int" => IntTy,
        "bool" => BoolTy,
        "void" => VoidTy,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(keyword("class"), Some(TokenKind::Class));
        assert_eq!(keyword("classes"), None);
        assert_eq!(keyword("int"), Some(TokenKind::IntTy));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(TokenKind::Class.to_string(), "`class`");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier `x`");
        assert_eq!(TokenKind::EqEq.to_string(), "`==`");
    }
}
