//! Source positions and diagnostics.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Computes 1-based line and column for the start of this span.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in source.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// A compile error with location.
#[derive(Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Where in the source the problem is.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Diagnostic { span, message: message.into() }
    }

    /// Renders with line/column resolved against the source.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        format!("{line}:{col}: {}", self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}: {}", self.span.start, self.span.end, self.message)
    }
}

impl fmt::Debug for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Diagnostic({self})")
    }
}

/// Compilation failure: one or more diagnostics.
#[derive(Clone, PartialEq, Eq)]
pub struct CompileError {
    /// All collected diagnostics, in source order.
    pub diagnostics: Vec<Diagnostic>,
    /// The source text, kept so errors can render line/column info.
    pub source: String,
}

impl CompileError {
    /// Creates an error from a single diagnostic.
    pub fn single(diag: Diagnostic, source: &str) -> Self {
        CompileError { diagnostics: vec![diag], source: source.to_string() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "error at {}", d.render(&self.source))?;
        }
        Ok(())
    }
}

impl fmt::Debug for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompileError({self})")
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_resolution() {
        let src = "abc\ndef\nghi";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(5, 6).line_col(src), (2, 2));
        assert_eq!(Span::new(8, 9).line_col(src), (3, 1));
    }

    #[test]
    fn span_join() {
        assert_eq!(Span::new(3, 5).to(Span::new(7, 9)), Span::new(3, 9));
    }

    #[test]
    fn render_includes_position() {
        let d = Diagnostic::new(Span::new(4, 5), "unexpected token");
        assert_eq!(d.render("ab\ncd"), "2:2: unexpected token");
    }
}
