//! Diagnostic-quality tests: every class of user error produces a
//! pointed, located message — table stakes for the compiler developers
//! run in the paper's prepare-test-update loop.

use jvolve_lang::compile;

fn err_of(src: &str) -> String {
    compile(src).unwrap_err().to_string()
}

#[test]
fn lexer_errors() {
    assert!(err_of("class A { field x: int; } $").contains("unexpected character"));
    assert!(err_of("class A { method f(): void { Sys.print(\"oops); } }")
        .contains("unterminated string"));
    assert!(err_of("/* class A {").contains("unterminated block comment"));
}

#[test]
fn parser_errors() {
    assert!(err_of("class { }").contains("expected identifier"));
    assert!(err_of("class A extends { }").contains("expected identifier"));
    assert!(err_of("class A { fild x: int; }").contains("expected `field`, `method` or `ctor`"));
    assert!(err_of("class A { method f() int { } }").contains("expected `:`"));
    assert!(err_of("class A { method f(): void { var x int = 1; } }").contains("expected `:`"));
    assert!(err_of("class A { method f(): void { if true { } } }").contains("expected `(`"));
}

#[test]
fn name_resolution_errors() {
    assert!(err_of("class A extends Ghost { }").contains("unknown superclass Ghost"));
    assert!(err_of("class A { field x: Ghost; }").contains("unknown type Ghost"));
    assert!(err_of("class A { method f(): void { y = 1; } }").contains("unknown variable y"));
    assert!(err_of("class A { method f(): void { this.z = 1; } }").contains("unknown field A.z"));
    assert!(err_of("class A { method f(): void { this.g(); } }")
        .contains("unknown method"));
    assert!(err_of("class A { method f(): void { Ghost.h(); } }")
        .contains("unknown variable Ghost"));
}

#[test]
fn type_errors() {
    assert!(err_of("class A { method f(): int { return true; } }")
        .contains("not assignable"));
    assert!(err_of("class A { method f(): void { var b: bool = 1 + true; } }")
        .contains("+ requires two ints or two Strings"));
    assert!(err_of("class A { method f(): void { if (1) { } } }").contains("not assignable"));
    assert!(err_of("class A { method f(s: String): int { return s * 2; } }")
        .contains("not assignable"));
    assert!(
        err_of("class A { method f(): bool { return \"x\" == 1; } }").contains("cannot compare")
    );
    assert!(err_of(
        "class A { method g(x: int): void { } method f(): void { this.g(true); } }"
    )
    .contains("not assignable"));
    assert!(err_of(
        "class A { method g(x: int): void { } method f(): void { this.g(); } }"
    )
    .contains("passes 0 arguments"));
}

#[test]
fn staticness_errors() {
    assert!(err_of("class A { static method f(): void { Sys.print(this.g()); } }")
        .contains("this in a static method")
        || err_of("class A { static method f(): void { var x: A = this; } }")
            .contains("this in a static method"));
    assert!(err_of(
        "class A { method m(): void { } static method f(a: A): void { A.m(); } }"
    )
    .contains("not a static method"));
    assert!(err_of(
        "class A { static method s(): void { } method f(a: A): void { a.s(); } }"
    )
    .contains("static method A.s called on an instance"));
}

#[test]
fn constructor_errors() {
    assert!(err_of("class A { ctor(x: int) { } } class B { method f(): A { return new A(); } }")
        .contains("passes 0 arguments"));
    // A has only the synthesized zero-argument constructor.
    assert!(err_of("class A { method f(): A { return new A(1); } }")
        .contains("passes 1 arguments"));
    assert!(err_of(
        "class A { ctor(x: int) { } }
         class B extends A { ctor() { } }"
    )
    .contains("must call super"));
    assert!(err_of(
        "class A { ctor() { } method f(): void { super(); } }"
    )
    .contains("first statement of a constructor"));
}

#[test]
fn control_flow_errors() {
    assert!(err_of("class A { method f(): void { break; } }").contains("break outside a loop"));
    assert!(err_of("class A { method f(): void { continue; } }")
        .contains("continue outside a loop"));
    assert!(err_of("class A { method f(b: bool): int { if (b) { return 1; } } }")
        .contains("without returning"));
}

#[test]
fn builtin_misuse_errors() {
    assert!(err_of("class A { method f(): String { return new String(); } }")
        .contains("cannot instantiate builtin"));
    assert!(err_of("class Sys { }").contains("conflicts with a builtin"));
    assert!(err_of("class A { method f(): void { Str.len(1); } }").contains("not assignable"));
}

#[test]
fn messages_carry_line_and_column() {
    let err = err_of("class A {\n  method f(): int {\n    return true;\n  }\n}");
    assert!(err.contains("3:"), "line number expected: {err}");
}
