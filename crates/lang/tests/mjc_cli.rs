//! Integration tests for the `mjc` compiler CLI.

use std::process::Command;

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mjc-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

const SRC: &str = "class Greeter {
  field name: String;
  ctor(n: String) { this.name = n; }
  method greet(): String { return \"hi \" + this.name; }
}";

#[test]
fn check_build_dis_pipeline() {
    let src = write_temp("greeter.mj", SRC);
    let out_dir = std::env::temp_dir().join(format!("mjc-out-{}", std::process::id()));

    let check = Command::new(env!("CARGO_BIN_EXE_mjc"))
        .args(["check", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(check.status.success());
    assert!(String::from_utf8_lossy(&check.stdout).contains("1 classes OK"));

    let build = Command::new(env!("CARGO_BIN_EXE_mjc"))
        .args(["build", src.to_str().unwrap(), "-o", out_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(build.status.success(), "{}", String::from_utf8_lossy(&build.stderr));
    let mjc_file = out_dir.join("Greeter.mjc");
    assert!(mjc_file.exists());

    // Disassemble both the source and the binary; both mention the method.
    for target in [src.to_str().unwrap(), mjc_file.to_str().unwrap()] {
        let dis = Command::new(env!("CARGO_BIN_EXE_mjc")).args(["dis", target]).output().unwrap();
        assert!(dis.status.success());
        let text = String::from_utf8_lossy(&dis.stdout);
        assert!(text.contains("greet(): String"), "{text}");
        assert!(text.contains("str.concat"), "{text}");
    }
}

#[test]
fn check_reports_type_errors_with_location() {
    let src = write_temp("bad.mj", "class B {\n  method f(): int { return true; }\n}");
    let out = Command::new(env!("CARGO_BIN_EXE_mjc"))
        .args(["check", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("2:"), "location included: {err}");
    assert!(err.contains("not assignable"), "{err}");
}

#[test]
fn dis_rejects_corrupt_binary() {
    let bad = write_temp("corrupt.mjc", "not a class file");
    let out =
        Command::new(env!("CARGO_BIN_EXE_mjc")).args(["dis", bad.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("magic"));
}
