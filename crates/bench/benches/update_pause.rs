//! Bench: update pause components (Table 1 at small scale).
//!
//! Measures the full update pipeline (prepare + safe point + install +
//! update GC + transformers) on a populated heap, at 0%, 50% and 100%
//! updated fractions. Run with `cargo bench -p jvolve-bench`.

use jvolve_bench::micro::measure_pause;
use jvolve_bench::timing::{report, run};

fn main() {
    println!("update_pause: full update pipeline, median of 10 runs\n");
    for &objects in &[5_000usize, 20_000] {
        for &fraction in &[0.0f64, 0.5, 1.0] {
            let s = run(10, || measure_pause(objects, fraction));
            report(&format!("{objects}_objects/{:.0}%", fraction * 100.0), &s);
        }
    }
}
