//! Criterion bench: update pause components (Table 1 at small scale).
//!
//! Measures the full update pipeline (prepare + safe point + install +
//! update GC + transformers) on a populated heap, at 0%, 50% and 100%
//! updated fractions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jvolve_bench::micro::measure_pause;

fn bench_update_pause(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_pause");
    group.sample_size(10);
    for &objects in &[5_000usize, 20_000] {
        for &fraction in &[0.0f64, 0.5, 1.0] {
            group.bench_with_input(
                BenchmarkId::new(format!("{objects}_objects"), format!("{:.0}%", fraction * 100.0)),
                &(objects, fraction),
                |b, &(objects, fraction)| {
                    b.iter(|| measure_pause(objects, fraction));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_update_pause);
criterion_main!(benches);
