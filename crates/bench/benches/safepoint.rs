//! Criterion bench: DSU safe-point machinery costs — restricted-set
//! computation and full stack scans on a running, loaded VM (§3.2).

use criterion::{criterion_group, criterion_main, Criterion};
use jvolve::restricted::{check_stacks, RestrictedSet};
use jvolve_apps::harness::{app_vm_config, boot_with, prepare_next};
use jvolve_apps::webserver::{Webserver, PORT};
use jvolve_apps::workload::drive_http;

fn bench_safepoint(c: &mut Criterion) {
    // A loaded webserver with worker threads mid-flight.
    let mut vm = boot_with(&Webserver, 4, app_vm_config());
    drive_http(&mut vm, PORT, &["/index.html"], 4, 1_000);
    let update = prepare_next(&Webserver, 4);
    let mut old_set = update.old_classes.clone();
    for b in jvolve_lang::builtins::builtin_classes() {
        old_set.insert(b);
    }

    let mut group = c.benchmark_group("safepoint");
    group.bench_function("restricted_set_compute", |b| {
        b.iter(|| RestrictedSet::compute(&update.spec, &old_set, &[]));
    });

    let restricted = RestrictedSet::compute(&update.spec, &old_set, &[]);
    group.bench_function("stack_scan_all_threads", |b| {
        b.iter(|| check_stacks(&vm, &restricted));
    });
    group.finish();
}

criterion_group!(benches, bench_safepoint);
criterion_main!(benches);
