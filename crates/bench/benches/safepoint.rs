//! Bench: DSU safe-point machinery costs — restricted-set computation and
//! full stack scans on a running, loaded VM (§3.2). Run with
//! `cargo bench -p jvolve-bench`.

use jvolve::restricted::{check_stacks, RestrictedSet};
use jvolve_apps::harness::{app_vm_config, boot_with, prepare_next};
use jvolve_apps::webserver::{Webserver, PORT};
use jvolve_apps::workload::drive_http;
use jvolve_bench::timing::{report, run};

fn main() {
    // A loaded webserver with worker threads mid-flight.
    let mut vm = boot_with(&Webserver, 4, app_vm_config());
    drive_http(&mut vm, PORT, &["/index.html"], 4, 1_000);
    let update = prepare_next(&Webserver, 4);
    let mut old_set = update.old_classes.clone();
    for b in jvolve_lang::builtins::builtin_classes() {
        old_set.insert(b);
    }

    println!("safepoint: §3.2 machinery, median of 100 runs\n");
    let s = run(100, || RestrictedSet::compute(&update.spec, &old_set, &[]));
    report("restricted_set_compute", &s);

    let restricted = RestrictedSet::compute(&update.spec, &old_set, &[]);
    let s = run(100, || check_stacks(&vm, &restricted));
    report("stack_scan_all_threads", &s);
}
