//! Bench: DSU safe-point machinery costs — restricted-set computation and
//! full stack scans on a running, loaded VM (§3.2). Run with
//! `cargo bench -p jvolve-bench`.
//!
//! Also a regression gate: the update controller's safe-point polling
//! must not construct the restricted set (or any per-poll containers)
//! each iteration — the set is computed once when the waiting phase is
//! entered and the check buffers are reused across polls.

use jvolve::restricted::{check_stacks, check_stacks_into, RestrictedSet, StackCheck};
use jvolve::{ApplyOptions, StepProgress, UpdateController};
use jvolve_apps::harness::{app_vm_config, boot_with, prepare_next};
use jvolve_apps::webserver::{Webserver, PORT};
use jvolve_apps::workload::drive_http;
use jvolve_bench::timing::{report, run};

fn main() {
    // A loaded webserver with worker threads mid-flight.
    let mut vm = boot_with(&Webserver, 4, app_vm_config());
    drive_http(&mut vm, PORT, &["/index.html"], 4, 1_000);
    let update = prepare_next(&Webserver, 4);
    let mut old_set = update.old_classes.clone();
    for b in jvolve_lang::builtins::builtin_classes() {
        old_set.insert(b);
    }

    println!("safepoint: §3.2 machinery, median of 100 runs\n");
    let s = run(100, || RestrictedSet::compute(&update.spec, &old_set, &[]));
    report("restricted_set_compute", &s);

    let restricted = RestrictedSet::compute(&update.spec, &old_set, &[]);
    let s = run(100, || check_stacks(&vm, &restricted));
    report("stack_scan_all_threads", &s);

    // The scratch-reusing variant the controller polls with.
    let mut scratch = StackCheck::default();
    let s = run(100, || check_stacks_into(&vm, &restricted, &mut scratch));
    report("stack_scan_reused_scratch", &s);

    // Regression gate: run a controller for a bounded number of waiting
    // polls and assert the restricted set was built exactly once, no
    // matter how many polls happened.
    let polls = 200;
    let mut controller = UpdateController::new(
        &update,
        ApplyOptions { timeout_slices: polls, ..ApplyOptions::default() },
    );
    loop {
        if !matches!(controller.step(&mut vm), StepProgress::Pending(_)) {
            break;
        }
    }
    let counters = controller.counters();
    assert!(counters.polls > 1, "controller never reached the polling loop");
    assert_eq!(
        counters.restricted_builds, 1,
        "safe-point polling rebuilt the restricted set per iteration ({} builds over {} polls)",
        counters.restricted_builds, counters.polls
    );
    println!(
        "\npoll_hoisting_gate     ok ({} polls, {} restricted-set build)",
        counters.polls, counters.restricted_builds
    );
}
