//! Bench: steady-state request throughput (Figure 5 / the eager-vs-lazy
//! ablation at small scale). Run with `cargo bench -p jvolve-bench`.

use jvolve_apps::harness::{app_vm_config, boot_with};
use jvolve_apps::webserver::{Webserver, PORT};
use jvolve_apps::workload::drive_http;
use jvolve_bench::timing::{report, run_with_setup};
use jvolve_vm::VmConfig;

const PATHS: [&str; 2] = ["/index.html", "/data.json"];

fn main() {
    println!("steady_state: 2000 webserver slices, median of 10 runs\n");

    let s = run_with_setup(
        10,
        || {
            let mut vm = boot_with(&Webserver, 6, app_vm_config());
            drive_http(&mut vm, PORT, &PATHS, 4, 500);
            vm
        },
        |mut vm| drive_http(&mut vm, PORT, &PATHS, 4, 2_000),
    );
    report("eager_2000_slices", &s);

    let s = run_with_setup(
        10,
        || {
            let config = VmConfig { lazy_indirection: true, ..app_vm_config() };
            let mut vm = boot_with(&Webserver, 6, config);
            drive_http(&mut vm, PORT, &PATHS, 4, 500);
            vm
        },
        |mut vm| drive_http(&mut vm, PORT, &PATHS, 4, 2_000),
    );
    report("lazy_indirection_2000_slices", &s);
}
