//! Criterion bench: steady-state request throughput (Figure 5 / the
//! eager-vs-lazy ablation at small scale).

use criterion::{criterion_group, criterion_main, Criterion};
use jvolve_apps::harness::{app_vm_config, boot_with};
use jvolve_apps::webserver::{Webserver, PORT};
use jvolve_apps::workload::drive_http;
use jvolve_vm::VmConfig;

const PATHS: [&str; 2] = ["/index.html", "/data.json"];

fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state");
    group.sample_size(10);

    group.bench_function("eager_2000_slices", |b| {
        b.iter_batched(
            || {
                let mut vm = boot_with(&Webserver, 6, app_vm_config());
                drive_http(&mut vm, PORT, &PATHS, 4, 500);
                vm
            },
            |mut vm| drive_http(&mut vm, PORT, &PATHS, 4, 2_000),
            criterion::BatchSize::PerIteration,
        );
    });

    group.bench_function("lazy_indirection_2000_slices", |b| {
        b.iter_batched(
            || {
                let config = VmConfig { lazy_indirection: true, ..app_vm_config() };
                let mut vm = boot_with(&Webserver, 6, config);
                drive_http(&mut vm, PORT, &PATHS, 4, 500);
                vm
            },
            |mut vm| drive_http(&mut vm, PORT, &PATHS, 4, 2_000),
            criterion::BatchSize::PerIteration,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_steady_state);
criterion_main!(benches);
