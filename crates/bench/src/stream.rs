//! Release-stream measurement harness: the kvstore's whole UPT-prepared
//! 20-update version chain applied to one serving VM under verified
//! load, driving [`jvolve_apps::run_release_stream`] exactly the way
//! `streambench` gates it.

use jvolve_apps::{run_release_stream, Kvstore, StreamOptions, StreamReport};

/// Updates in the kvstore release chain.
pub fn chain_len() -> usize {
    use jvolve_apps::GuestApp;
    Kvstore.versions().len() - 1
}

/// One full eager stream: every update commits stop-the-world, so
/// `max_pause` is the honest per-update pause the gate bounds.
pub fn measure_eager() -> StreamReport {
    run_release_stream(&Kvstore, &StreamOptions::eager())
}

/// One full lazy stream with mid-drain queueing: releases are pushed
/// while the previous epoch is still draining, so the run also proves
/// the queue serializes overlapping arrivals.
pub fn measure_lazy() -> StreamReport {
    run_release_stream(&Kvstore, &StreamOptions::lazy())
}
