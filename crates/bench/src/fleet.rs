//! Fleet measurement harness: aggregate throughput across VM shard
//! counts and rolling-update integrity, driving [`jvolve_apps::fleet`]
//! exactly the way `fleetbench` gates it.

use std::sync::Arc;
use std::time::Instant;

use jvolve_apps::fleet::{Fleet, RollOptions};
use jvolve_apps::harness::{app_vm_config, bench_apply_options, prepare_next};
use jvolve_apps::{AppInstance, GuestApp, Webserver};

/// One timed throughput run at a shard count.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputRun {
    /// Shards serving.
    pub shards: usize,
    /// Requests completed (all of them, or the run is invalid).
    pub requests: u64,
    /// Wall nanoseconds for the whole batch.
    pub wall_ns: f64,
    /// Responses that failed verification.
    pub incorrect: u64,
}

impl ThroughputRun {
    /// Amortized cost of one request (lower is better; aggregate
    /// throughput scaling at S shards is `ns_per_request(1) /
    /// ns_per_request(S)`).
    pub fn ns_per_request(&self) -> f64 {
        self.wall_ns / self.requests as f64
    }
}

/// Boots a fresh webserver fleet at `shards`, warms it up, and times one
/// closed batch of `requests` verified exchanges.
pub fn measure_throughput(shards: usize, requests: u64) -> ThroughputRun {
    let app: Arc<dyn AppInstance> = Arc::new(Webserver);
    let classes = Webserver.versions()[0].compile();
    let mut fleet = Fleet::boot(app, classes, shards, &app_vm_config());
    // Warmup: fault in compiled methods on every shard.
    fleet.run_requests((requests / 4).max(shards as u64));
    let started = Instant::now();
    let report = fleet.run_requests(requests);
    let wall_ns = started.elapsed().as_nanos() as f64;
    assert_eq!(report.completed, requests, "fleet dropped requests while measuring");
    let incorrect = report.incorrect;
    fleet.shutdown();
    ThroughputRun { shards, requests, wall_ns, incorrect }
}

/// What one rolling lazy update across a loaded fleet did (the
/// zero-dropped/zero-incorrect integrity gate measures this).
#[derive(Clone, Debug)]
pub struct RollRun {
    /// Shards in the fleet.
    pub shards: usize,
    /// Shards whose update committed and passed the health gate.
    pub promoted: usize,
    /// Whether the coordinator had to roll the fleet back.
    pub rolled_back: bool,
    /// Responses served while some shard's update was in flight.
    pub mid_roll_responses: u64,
    /// Requests submitted during the roll that never got a response.
    pub dropped: u64,
    /// Responses that failed verification during the roll.
    pub incorrect: u64,
    /// Whether every shard's registry fingerprint matched afterwards.
    pub converged: bool,
}

/// Rolls the webserver 5.1.0 → 5.1.1 update lazily across a `shards`-VM
/// fleet under continuous background load.
pub fn measure_roll(shards: usize) -> RollRun {
    let app: Arc<dyn AppInstance> = Arc::new(Webserver);
    let classes = Webserver.versions()[0].compile();
    let update = prepare_next(&Webserver, 0);
    let mut config = app_vm_config();
    config.lazy_migration = true;
    let mut fleet = Fleet::boot(app, classes, shards, &config);
    fleet.run_requests(4 * shards as u64);
    let report = fleet.roll(&update, &bench_apply_options(), &RollOptions::default());
    let run = RollRun {
        shards,
        promoted: report.shards.iter().filter(|s| s.healthy).count(),
        rolled_back: report.rolled_back,
        mid_roll_responses: report.mid_roll_responses,
        dropped: report.dropped,
        incorrect: report.incorrect,
        converged: report.fingerprints_converged(),
    };
    fleet.shutdown();
    run
}
