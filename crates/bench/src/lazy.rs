//! Lazy-vs-eager migration measurement (the `lazybench` harness).
//!
//! The lazy mode's claim is twofold: the *commit pause* shrinks from
//! O(heap) — a full update-GC plus every object transformer — to O(roots),
//! arming the read barrier against an allocation watermark (stale objects
//! are discovered afterwards by the controller-stepped SATB scan), and
//! once the epoch drains the barrier is disarmed so the *steady state*
//! costs exactly what an eager commit would. This module measures both
//! halves of the claim on a §4.1-shaped population and a field-read spin
//! loop, driving the [`UpdateController`] directly so the moment the
//! mutator is released (the first `Pending(LazyMigrating)` step) is
//! observable.

use std::time::Instant;

use jvolve::{ApplyOptions, StepProgress, Update, UpdateController, UpdatePhase};
use jvolve_vm::{Value, Vm, VmConfig};

/// §4.1-shaped guest, old version: `Change`/`NoChange` with three int
/// and three reference fields, plus a driver that owns the population
/// and a dispatch-free field-read spin loop for steady-state timing.
pub const LAZY_V1: &str = "
class Change {
  field a: int; field b: int; field c: int;
  field x: Object; field y: Object; field z: Object;
  ctor(i: int) { this.a = i; this.b = 2 * i; this.c = 3 * i; }
}
class NoChange {
  field a: int; field b: int; field c: int;
  field x: Object; field y: Object; field z: Object;
  ctor(i: int) { this.a = i; this.b = 2 * i; this.c = 3 * i; }
}
class Driver {
  static field changes: Change[];
  static field others: NoChange[];
  static field sink: int;
  static method build(nc: int, nn: int): void {
    var cs: Change[] = new Change[nc];
    var os: NoChange[] = new NoChange[nn];
    var i: int = 0;
    while (i < nc) { cs[i] = new Change(i); i = i + 1; }
    i = 0;
    while (i < nn) { os[i] = new NoChange(i); i = i + 1; }
    Driver.changes = cs;
    Driver.others = os;
  }
  static method spin(iters: int): int {
    var s: int = 0;
    var i: int = 0;
    var n: int = Driver.changes.length;
    var o: Change = null;
    while (i < iters) {
      o = Driver.changes[i % n];
      s = s + o.a + o.b + o.c;
      i = i + 1;
    }
    Driver.sink = s;
    return s;
  }
}";

/// New version: `Change` gains an integer field, exactly the paper's
/// microbenchmark update. The default generated transformer copies the
/// existing fields and zeroes `w`.
pub const LAZY_V2: &str = "
class Change {
  field a: int; field b: int; field c: int; field w: int;
  field x: Object; field y: Object; field z: Object;
  ctor(i: int) { this.a = i; this.b = 2 * i; this.c = 3 * i; }
}
class NoChange {
  field a: int; field b: int; field c: int;
  field x: Object; field y: Object; field z: Object;
  ctor(i: int) { this.a = i; this.b = 2 * i; this.c = 3 * i; }
}
class Driver {
  static field changes: Change[];
  static field others: NoChange[];
  static field sink: int;
  static method build(nc: int, nn: int): void {
    var cs: Change[] = new Change[nc];
    var os: NoChange[] = new NoChange[nn];
    var i: int = 0;
    while (i < nc) { cs[i] = new Change(i); i = i + 1; }
    i = 0;
    while (i < nn) { os[i] = new NoChange(i); i = i + 1; }
    Driver.changes = cs;
    Driver.others = os;
  }
  static method spin(iters: int): int {
    var s: int = 0;
    var i: int = 0;
    var n: int = Driver.changes.length;
    var o: Change = null;
    while (i < iters) {
      o = Driver.changes[i % n];
      s = s + o.a + o.b + o.c;
      i = i + 1;
    }
    Driver.sink = s;
    return s;
  }
}";

/// One measured update at one configuration, in one mode.
#[derive(Debug, Clone, Copy)]
pub struct UpdateRun {
    /// Stop-the-world commit pause: for an eager update the whole apply;
    /// for a lazy one, everything up to the first scavenger step — the
    /// point at which the controller would hand slices back to the guest.
    pub pause_ns: u64,
    /// Lazy only: wall time from mutator release to `Committed` (SATB
    /// scan, scavenger drain, forwarding collapse). Zero when eager.
    pub drain_ns: u64,
    /// Lazy only: the barrier-arm portion of the pause
    /// (`UpdateStats::arm_time`) — the entire in-pause heap cost, which
    /// the O(roots) claim says is independent of heap size. Zero when
    /// eager.
    pub arm_ns: u64,
    /// Objects the transformers migrated (must equal the `Change` count).
    pub transformed: usize,
    /// Post-commit steady-state cost of one spin iteration (three field
    /// reads plus an array load), in nanoseconds.
    pub steady_ns_per_op: f64,
    /// The spin loop's checksum — identical across modes by construction,
    /// so callers can use it as a correctness oracle.
    pub spin_result: i64,
}

/// Runs one configuration end to end: build `objects` live objects (a
/// `fraction` of them `Change`), apply the v1→v2 update in the requested
/// mode on the serial collector, then time the steady-state spin loop.
///
/// # Panics
///
/// Panics on fixture errors (the classes always compile and the update
/// always applies).
pub fn measure_update(objects: usize, fraction: f64, lazy: bool, spin_iters: i64) -> UpdateRun {
    // Live data is ~9 words per object plus the two arrays; the update
    // additionally materializes an old copy and a new object per updated
    // object. Size generously, as the paper does.
    let semispace_words = (objects * 14 * 3).max(64 * 1024);
    let mut vm = Vm::new(VmConfig {
        semispace_words,
        gc_threads: 1,
        lazy_migration: lazy,
        ..VmConfig::default()
    });

    let v1 = jvolve_lang::compile(LAZY_V1).expect("lazy v1 compiles");
    let v2 = jvolve_lang::compile(LAZY_V2).expect("lazy v2 compiles");
    vm.load_classes(&v1).expect("lazy classes load");

    let n_change = (objects as f64 * fraction).round() as usize;
    let n_other = objects - n_change;
    vm.call_static_sync(
        "Driver",
        "build",
        &[Value::Int(n_change as i64), Value::Int(n_other as i64)],
    )
    .expect("population builds");

    let update = Update::prepare(&v1, &v2, "v1_").expect("non-empty update");
    let mut controller = UpdateController::new(&update, ApplyOptions::default());

    // Drive the controller by hand: the first Pending(LazyMigrating) step
    // is the moment a real deployment resumes the guest, so everything
    // before it is the pause and everything after it is the drain.
    let t0 = Instant::now();
    let mut pause_ns = None;
    loop {
        match controller.step(&mut vm) {
            StepProgress::Pending(UpdatePhase::LazyMigrating) => {
                pause_ns.get_or_insert_with(|| t0.elapsed().as_nanos() as u64);
            }
            StepProgress::Pending(_) => {}
            StepProgress::Committed => break,
            StepProgress::Aborted => panic!("update aborted: {:?}", controller.error()),
        }
    }
    let total_ns = t0.elapsed().as_nanos() as u64;
    let pause_ns = pause_ns.unwrap_or(total_ns);
    let arm_ns = controller.stats().arm_time.as_nanos() as u64;
    let transformed = controller.stats().objects_transformed;
    assert_eq!(transformed, n_change, "every Change instance migrates exactly once");

    // Steady state: the epoch is over, so the spin loop must run on the
    // barrier-free fast path in both modes. (With no Change instances
    // there is nothing to spin over — `i % n` would divide by zero.)
    let (steady_ns_per_op, spin_result) = if n_change == 0 {
        (0.0, 0)
    } else {
        let t = Instant::now();
        let spin_result = match vm
            .call_static_sync("Driver", "spin", &[Value::Int(spin_iters)])
            .expect("spin runs")
        {
            Some(Value::Int(v)) => v,
            other => panic!("spin returned {other:?}"),
        };
        (t.elapsed().as_nanos() as f64 / spin_iters as f64, spin_result)
    };

    UpdateRun {
        pause_ns,
        drain_ns: total_ns - pause_ns,
        arm_ns,
        transformed,
        steady_ns_per_op,
        spin_result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_and_lazy_agree_on_the_work_and_the_answer() {
        let eager = measure_update(800, 0.5, false, 2_000);
        let lazy = measure_update(800, 0.5, true, 2_000);
        assert_eq!(eager.transformed, 400);
        assert_eq!(lazy.transformed, 400);
        assert_eq!(eager.spin_result, lazy.spin_result);
        assert_eq!(eager.drain_ns, 0, "eager commits entirely inside the pause");
        assert!(lazy.drain_ns > 0, "lazy drains after the mutator is released");
        assert_eq!(eager.arm_ns, 0, "eager never arms the barrier");
        assert!(lazy.arm_ns > 0, "the lazy arm pause was measured");
        assert!(lazy.arm_ns <= lazy.pause_ns, "the arm is part of the pause");
    }

    #[test]
    fn zero_fraction_still_commits_in_both_modes() {
        // The update always changes class Change, so it is non-empty even
        // when no instances exist.
        let eager = measure_update(300, 0.0, false, 1_000);
        let lazy = measure_update(300, 0.0, true, 1_000);
        assert_eq!(eager.transformed, 0);
        assert_eq!(lazy.transformed, 0);
        assert_eq!(eager.spin_result, lazy.spin_result);
    }
}
