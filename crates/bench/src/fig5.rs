//! Figure 5: webserver throughput and latency, stock vs DSU-capable.
//!
//! The paper compares Jetty 5.1.6 on stock Jikes RVM, on JVolve, and on
//! JVolve after a dynamic update from 5.1.5 — finding the three
//! "essentially identical". Here the configurations are:
//!
//! * `Stock` — the pre-fast-path VM: epoch-guarded dispatch caches *off*
//!   and the template-JIT tier *off* (both lean on the epoch machinery),
//!   running 5.1.6 from scratch (no DSU activity);
//! * `JvolveNoJit` — the DSU-capable VM with caches on but the jit tier
//!   off, isolating what the jit row adds;
//! * `Jvolve` — the default DSU-capable VM (caches + template-JIT tier),
//!   driver linked and idle (the paper's claim is exactly that this
//!   costs nothing at steady state);
//! * `JvolveUpdated` — started at 5.1.5, dynamically updated to 5.1.6
//!   under way, then measured (jit-deopted code must re-promote).

use jvolve_apps::harness::{attempt_update, bench_apply_options, boot_with};
use jvolve_apps::webserver::{Webserver, PORT};
use jvolve_apps::workload::{drive_http, LoadStats};
use jvolve_apps::GuestApp;
use jvolve_vm::VmConfig;

/// Benchmark configuration identifiers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Config {
    /// 5.1.6 from scratch, no DSU machinery exercised (caches and jit off).
    Stock,
    /// 5.1.6 from scratch on the DSU-capable VM, template-JIT tier off.
    JvolveNoJit,
    /// 5.1.6 from scratch on the default DSU-capable VM (caches + jit).
    Jvolve,
    /// 5.1.5 dynamically updated to 5.1.6, then measured.
    JvolveUpdated,
}

impl Config {
    /// All four: the paper's three, plus the no-jit ablation row.
    pub fn all() -> [Config; 4] {
        [Config::Stock, Config::JvolveNoJit, Config::Jvolve, Config::JvolveUpdated]
    }

    /// Label as printed in the figure.
    pub fn label(self) -> &'static str {
        match self {
            Config::Stock => "Jikes RVM (stock)",
            Config::JvolveNoJit => "Jvolve (no jit)",
            Config::Jvolve => "Jvolve",
            Config::JvolveUpdated => "Jvolve updated",
        }
    }

    /// Whether the template-JIT tier runs in this configuration.
    pub fn jit(self) -> bool {
        matches!(self, Config::Jvolve | Config::JvolveUpdated)
    }
}

/// The standard measurement: saturating closed-loop load for `slices`
/// scheduler slices at the given concurrency. Returns the load stats,
/// the inline-cache hit rate over the measured window (0 for `Stock`,
/// which runs with the dispatch fast path off), and the whole-run jit
/// promotion count (0 unless [`Config::jit`]).
pub fn measure(config: Config, concurrency: usize, slices: u64) -> (LoadStats, f64, u64) {
    let vm_config = VmConfig {
        semispace_words: 512 * 1024,
        quantum: 300,
        // `Stock` holds the pre-fast-path dispatch behavior; the JVolve
        // configurations run the DSU VM, with the jit axis per config.
        enable_inline_caches: config != Config::Stock,
        enable_jit: config.jit(),
        ..VmConfig::default()
    };
    let paths = ["/index.html", "/about.html", "/data.json", "/missing.html"];
    let mut vm = match config {
        Config::Stock | Config::JvolveNoJit | Config::Jvolve => {
            let from = Webserver.versions().len() - 5; // 5.1.6
            let mut vm = boot_with(&Webserver, from, vm_config);
            warmup(&mut vm, &paths, concurrency);
            vm
        }
        Config::JvolveUpdated => {
            let from = Webserver.versions().len() - 6; // 5.1.5
            let mut vm = boot_with(&Webserver, from, vm_config);
            warmup(&mut vm, &paths, concurrency);
            let (outcome, _) = attempt_update(&mut vm, &Webserver, from, &bench_apply_options());
            assert!(outcome.supported(), "5.1.5 -> 5.1.6 must apply: {outcome}");
            // Post-update warm-up: invalidated methods re-baseline and
            // re-optimize, as the paper describes.
            warmup(&mut vm, &paths, concurrency);
            vm
        }
    };
    let (hits0, misses0) = (vm.stats().ic_hits, vm.stats().ic_misses);
    let stats = drive_http(&mut vm, PORT, &paths, concurrency, slices);
    let lookups = (vm.stats().ic_hits - hits0) + (vm.stats().ic_misses - misses0);
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        (vm.stats().ic_hits - hits0) as f64 / lookups as f64
    };
    (stats, hit_rate, vm.stats().jit_compiles)
}

fn warmup(vm: &mut jvolve_vm::Vm, paths: &[&str], concurrency: usize) {
    drive_http(vm, PORT, paths, concurrency, 3_000);
}

/// Median and inter-quartile range over repeated runs, as the paper
/// reports ("with 21 runs, the range between the quartiles serves as a
/// 98% confidence interval").
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Configuration measured.
    pub config: Config,
    /// Median throughput (requests per 1000 slices) across runs.
    pub throughput_median: f64,
    /// Lower/upper quartile of throughput across runs.
    pub throughput_quartiles: (f64, f64),
    /// Median of per-run median latencies (slices).
    pub latency_median: f64,
    /// Quartiles of per-run median latencies.
    pub latency_quartiles: (f64, f64),
    /// Median inline-cache hit rate across runs (0 for `Stock`).
    pub ic_hit_rate: f64,
    /// Jit promotions in the last run (0 unless [`Config::jit`]).
    pub jit_compiles: u64,
    /// Number of runs.
    pub runs: usize,
}

/// Runs `runs` measurements of `config` and aggregates them.
pub fn run_config(config: Config, runs: usize, concurrency: usize, slices: u64) -> Fig5Row {
    let mut throughputs = Vec::with_capacity(runs);
    let mut latencies = Vec::with_capacity(runs);
    let mut hit_rates = Vec::with_capacity(runs);
    let mut jit_compiles = 0;
    for _ in 0..runs {
        let (stats, hit_rate, jits) = measure(config, concurrency, slices);
        throughputs.push(stats.throughput_per_kslice());
        latencies.push(stats.median_latency());
        hit_rates.push(hit_rate);
        jit_compiles = jits;
    }
    Fig5Row {
        config,
        throughput_median: fmedian(&mut throughputs.clone()),
        throughput_quartiles: fquartiles(&mut throughputs.clone()),
        latency_median: fmedian(&mut latencies.clone()),
        latency_quartiles: fquartiles(&mut latencies.clone()),
        ic_hit_rate: fmedian(&mut hit_rates),
        jit_compiles,
        runs,
    }
}

/// One window of the post-update warm-up series.
#[derive(Debug, Clone)]
pub struct WarmupWindow {
    /// Window index (0 = immediately after the update).
    pub window: usize,
    /// Throughput in the window (requests per 1000 slices).
    pub throughput: f64,
    /// Cumulative baseline compilations since VM start.
    pub base_compiles: u64,
    /// Cumulative optimizing compilations since VM start.
    pub opt_compiles: u64,
    /// Cumulative jit-tier promotions since VM start.
    pub jit_compiles: u64,
}

/// Measures the adaptive-recompilation warm-up after a dynamic update
/// (paper §3.3: invalidated methods are first base-compiled on next call,
/// then progressively optimized — "any added overhead due to
/// recompilation will be short-lived").
pub fn warmup_series(windows: usize, window_slices: u64, concurrency: usize) -> Vec<WarmupWindow> {
    let vm_config = VmConfig { semispace_words: 512 * 1024, quantum: 300, ..VmConfig::default() };
    let paths = ["/index.html", "/about.html", "/data.json"];
    let from = Webserver.versions().len() - 6; // 5.1.5
    let mut vm = boot_with(&Webserver, from, vm_config);
    warmup(&mut vm, &paths, concurrency);
    let (outcome, _) = attempt_update(&mut vm, &Webserver, from, &bench_apply_options());
    assert!(outcome.supported(), "5.1.5 -> 5.1.6 must apply: {outcome}");

    (0..windows)
        .map(|window| {
            let stats = drive_http(&mut vm, PORT, &paths, concurrency, window_slices);
            WarmupWindow {
                window,
                throughput: stats.throughput_per_kslice(),
                base_compiles: vm.stats().base_compiles,
                opt_compiles: vm.stats().opt_compiles,
                jit_compiles: vm.stats().jit_compiles,
            }
        })
        .collect()
}

fn fmedian(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    xs[xs.len() / 2]
}

fn fquartiles(xs: &mut [f64]) -> (f64, f64) {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let q1 = xs[(xs.len() as f64 * 0.25) as usize];
    let q3 = xs[((xs.len() as f64 * 0.75) as usize).min(xs.len() - 1)];
    (q1, q3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configurations_serve_requests() {
        for config in Config::all() {
            let (stats, hit_rate, jit_compiles) = measure(config, 4, 4_000);
            assert!(
                stats.completed > 0,
                "{}: no requests completed",
                config.label()
            );
            if config == Config::Stock {
                assert_eq!(hit_rate, 0.0, "stock runs with caches off");
            } else {
                assert!(hit_rate > 0.5, "{}: hit rate {hit_rate}", config.label());
            }
            if config.jit() {
                assert!(jit_compiles > 0, "{}: jit tier never engaged", config.label());
            } else {
                assert_eq!(jit_compiles, 0, "{}: jit must stay off", config.label());
            }
        }
    }
}
