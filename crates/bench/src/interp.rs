//! Steady-state call-dispatch throughput (the micro-scale companion to
//! Figure 5).
//!
//! The paper's Fig. 5 claim is that DSU support costs nothing at steady
//! state. The epoch-guarded inline caches (see `jvolve_vm::icache`) are
//! what makes that true for call dispatch here: a virtual call hits a
//! per-site cache instead of walking the TIB and funneling through the
//! registry. This harness measures calls/second of a dispatch-bound
//! workload in three configurations:
//!
//! * `CachesOff` — the honest baseline (`--no-inline-caches`);
//! * `CachesOn`  — the default VM;
//! * `CachesOnUpdated` — caches on, measured *after* a dynamic update
//!   changed every `area` body (so every cache was invalidated by the
//!   epoch bump and refilled) — steady state must be indistinguishable
//!   from `CachesOn`.

use std::time::{Duration, Instant};

use jvolve::{ApplyOptions, MemorySink, Update, UpdateController};
use jvolve_vm::{Value, Vm, VmConfig};

/// Dispatch-bound guest workload: a small class hierarchy whose `area`
/// methods get opt-promoted while `Bench.run` itself stays baseline, so
/// its call sites keep dispatching through the interpreter — 8 virtual
/// calls and 2 direct (static) calls per loop iteration, with minimal
/// loop overhead around them.
pub const INTERP_V1: &str = "
class Shape { method area(): int { return 1; } }
class Square extends Shape {
  field side: int;
  ctor(s: int) { this.side = s; }
  method area(): int { return this.side; }
}
class Circle extends Shape {
  field r: int;
  ctor(r: int) { this.r = r; }
  method area(): int { return this.r + this.r; }
}
class Bench {
  static method bump(x: int): int { return x + 1; }
  static method run(iters: int): int {
    var a: Shape = new Square(3);
    var b: Shape = new Circle(2);
    var c: Shape = new Shape();
    var d: Shape = new Square(5);
    var total: int = 0;
    var i: int = 0;
    while (i < iters) {
      total = Bench.bump(total + a.area() + b.area() + c.area() + d.area());
      total = Bench.bump(total + d.area() + c.area() + b.area() + a.area());
      i = i + 1;
    }
    return total;
  }
}
";

/// New version: every callee body changes, so the update invalidates (and
/// the epoch bump flushes) every dispatch target the caches held.
pub const INTERP_V2: &str = "
class Shape { method area(): int { return 2; } }
class Square extends Shape {
  field side: int;
  ctor(s: int) { this.side = s; }
  method area(): int { return this.side + 1; }
}
class Circle extends Shape {
  field r: int;
  ctor(r: int) { this.r = r; }
  method area(): int { return this.r + this.r + 1; }
}
class Bench {
  static method bump(x: int): int { return x + 2; }
  static method run(iters: int): int {
    var a: Shape = new Square(3);
    var b: Shape = new Circle(2);
    var c: Shape = new Shape();
    var d: Shape = new Square(5);
    var total: int = 0;
    var i: int = 0;
    while (i < iters) {
      total = Bench.bump(total + a.area() + b.area() + c.area() + d.area());
      total = Bench.bump(total + d.area() + c.area() + b.area() + a.area());
      i = i + 1;
    }
    return total;
  }
}
";

/// Guest calls per loop iteration (8 virtual `area` + 2 static `bump`).
pub const CALLS_PER_ITER: u64 = 10;

/// Benchmark configuration identifiers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Config {
    /// Inline caches disabled: every call walks TIB/registry.
    CachesOff,
    /// The default VM.
    CachesOn,
    /// Caches on, measured after a dynamic update invalidated them all.
    CachesOnUpdated,
}

impl Config {
    /// All three, baseline first.
    pub fn all() -> [Config; 3] {
        [Config::CachesOff, Config::CachesOn, Config::CachesOnUpdated]
    }

    /// Stable identifier used in `BENCH_interp.json`.
    pub fn key(self) -> &'static str {
        match self {
            Config::CachesOff => "caches_off",
            Config::CachesOn => "caches_on",
            Config::CachesOnUpdated => "caches_on_updated",
        }
    }
}

/// One timed measurement.
#[derive(Debug, Clone)]
pub struct InterpSample {
    /// Wall time of the timed `Bench.run` call.
    pub wall: Duration,
    /// Guest calls dispatched during the timed run.
    pub calls: u64,
    /// `Bench.run`'s return value (cross-configuration sanity check).
    pub checksum: i64,
    /// Inline-cache hits during the timed run.
    pub ic_hits: u64,
    /// Inline-cache misses during the timed run.
    pub ic_misses: u64,
}

impl InterpSample {
    /// Nanoseconds per dispatched guest call.
    pub fn ns_per_call(&self) -> f64 {
        self.wall.as_nanos() as f64 / self.calls as f64
    }

    /// Hit fraction of all cache lookups (0.0 with caches off).
    pub fn hit_rate(&self) -> f64 {
        let total = self.ic_hits + self.ic_misses;
        if total == 0 {
            0.0
        } else {
            self.ic_hits as f64 / total as f64
        }
    }
}

/// Runs one configuration: boot, warm up (promoting the `area` methods
/// past the opt threshold and filling the caches), then time one
/// `Bench.run(iters)` call.
///
/// # Panics
///
/// Panics on fixture errors (the workload always compiles, runs, and —
/// for [`Config::CachesOnUpdated`] — the update always applies).
pub fn measure(config: Config, iters: i64) -> InterpSample {
    let vm_config = VmConfig {
        enable_inline_caches: config != Config::CachesOff,
        ..VmConfig::default()
    };
    let mut vm = Vm::new(vm_config);
    let v1 = jvolve_lang::compile(INTERP_V1).expect("interp v1 compiles");
    vm.load_classes(&v1).expect("interp classes load");

    // Warm-up: fills caches and drives every `area` body past the opt
    // threshold, so the timed run sees steady-state code in both modes.
    let warm = vm
        .call_static_sync("Bench", "run", &[Value::Int(1_000)])
        .expect("warmup runs")
        .expect("run returns a value");
    assert!(matches!(warm, Value::Int(_)));

    if config == Config::CachesOnUpdated {
        let v2 = jvolve_lang::compile(INTERP_V2).expect("interp v2 compiles");
        let update = Update::prepare(&v1, &v2, "v1_").expect("non-empty update");
        let mut events = MemorySink::default();
        let mut controller = UpdateController::new(&update, ApplyOptions::default());
        controller.attach_sink(&mut events);
        controller.run_to_completion(&mut vm).expect("update applies");
        // Post-update warm-up: invalidated methods re-baseline and
        // re-optimize, and the flushed caches refill.
        vm.call_static_sync("Bench", "run", &[Value::Int(1_000)]).expect("post-update warmup");
    }

    let hits0 = vm.stats().ic_hits;
    let misses0 = vm.stats().ic_misses;
    let start = Instant::now();
    let result = vm
        .call_static_sync("Bench", "run", &[Value::Int(iters)])
        .expect("timed run")
        .expect("run returns a value");
    let wall = start.elapsed();
    let Value::Int(checksum) = result else { panic!("Bench.run returns an int") };

    InterpSample {
        wall,
        calls: iters as u64 * CALLS_PER_ITER,
        checksum,
        ic_hits: vm.stats().ic_hits - hits0,
        ic_misses: vm.stats().ic_misses - misses0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_configurations_agree_on_the_checksum() {
        let iters = 300;
        let off = measure(Config::CachesOff, iters);
        let on = measure(Config::CachesOn, iters);
        assert_eq!(off.checksum, on.checksum, "caches must not change results");
        assert_eq!(off.ic_hits, 0, "caches-off must never consult a cache");
        assert!(on.hit_rate() > 0.9, "steady state should hit: {}", on.hit_rate());

        // The updated configuration runs v2 bodies, so its checksum
        // differs — but it must still dispatch through warm caches.
        let updated = measure(Config::CachesOnUpdated, iters);
        assert_ne!(updated.checksum, on.checksum, "v2 bodies changed");
        assert!(updated.hit_rate() > 0.9, "post-update steady state: {}", updated.hit_rate());
    }
}
