//! Steady-state call-dispatch throughput (the micro-scale companion to
//! Figure 5).
//!
//! The paper's Fig. 5 claim is that DSU support costs nothing at steady
//! state. The epoch-guarded inline caches (see `jvolve_vm::icache`) are
//! what makes that true for call dispatch here: a virtual call hits a
//! per-site cache instead of walking the TIB and funneling through the
//! registry. This harness measures calls/second of a dispatch-bound
//! workload in five configurations:
//!
//! * `CachesOff` — the honest baseline (`--no-inline-caches`, jit off);
//! * `CachesOn`  — caches on, jit off;
//! * `CachesOnUpdated` — caches on, jit off, measured *after* a dynamic
//!   update changed every `area` body (so every cache was invalidated by
//!   the epoch bump and refilled) — steady state must be
//!   indistinguishable from `CachesOn`;
//! * `JitOn` — the default VM: caches plus the template-JIT tier
//!   (superinstruction fusion and the leaf-call fast path);
//! * `JitOnUpdated` — jit on, measured after the same update deopted and
//!   re-promoted every hot body — steady state must recover to `JitOn`.

use std::time::{Duration, Instant};

use jvolve::{ApplyOptions, MemorySink, Update, UpdateController};
use jvolve_vm::{Value, Vm, VmConfig};

/// Dispatch-bound guest workload: a small class hierarchy whose `area`
/// methods get opt-promoted while `Bench.run` itself stays baseline, so
/// its call sites keep dispatching through the interpreter — 8 virtual
/// calls and 2 direct (static) calls per loop iteration, with minimal
/// loop overhead around them.
pub const INTERP_V1: &str = "
class Shape { method area(): int { return 1; } }
class Square extends Shape {
  field side: int;
  ctor(s: int) { this.side = s; }
  method area(): int { return this.side; }
}
class Circle extends Shape {
  field r: int;
  ctor(r: int) { this.r = r; }
  method area(): int { return this.r + this.r; }
}
class Bench {
  static method bump(x: int): int { return x + 1; }
  static method run(iters: int): int {
    var a: Shape = new Square(3);
    var b: Shape = new Circle(2);
    var c: Shape = new Shape();
    var d: Shape = new Square(5);
    var total: int = 0;
    var i: int = 0;
    while (i < iters) {
      total = Bench.bump(total + a.area() + b.area() + c.area() + d.area());
      total = Bench.bump(total + d.area() + c.area() + b.area() + a.area());
      i = i + 1;
    }
    return total;
  }
}
";

/// New version: every callee body changes, so the update invalidates (and
/// the epoch bump flushes) every dispatch target the caches held.
pub const INTERP_V2: &str = "
class Shape { method area(): int { return 2; } }
class Square extends Shape {
  field side: int;
  ctor(s: int) { this.side = s; }
  method area(): int { return this.side + 1; }
}
class Circle extends Shape {
  field r: int;
  ctor(r: int) { this.r = r; }
  method area(): int { return this.r + this.r + 1; }
}
class Bench {
  static method bump(x: int): int { return x + 2; }
  static method run(iters: int): int {
    var a: Shape = new Square(3);
    var b: Shape = new Circle(2);
    var c: Shape = new Shape();
    var d: Shape = new Square(5);
    var total: int = 0;
    var i: int = 0;
    while (i < iters) {
      total = Bench.bump(total + a.area() + b.area() + c.area() + d.area());
      total = Bench.bump(total + d.area() + c.area() + b.area() + a.area());
      i = i + 1;
    }
    return total;
  }
}
";

/// Guest calls per loop iteration (8 virtual `area` + 2 static `bump`).
pub const CALLS_PER_ITER: u64 = 10;

/// Benchmark configuration identifiers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Config {
    /// Inline caches disabled, jit off: every call walks TIB/registry.
    CachesOff,
    /// Caches on, jit off.
    CachesOn,
    /// Caches on, jit off, measured after a dynamic update invalidated
    /// them all.
    CachesOnUpdated,
    /// The default VM: caches plus the template-JIT tier.
    JitOn,
    /// Jit on, measured after the update deopted every hot body.
    JitOnUpdated,
}

impl Config {
    /// All five, baseline first.
    pub fn all() -> [Config; 5] {
        [
            Config::CachesOff,
            Config::CachesOn,
            Config::CachesOnUpdated,
            Config::JitOn,
            Config::JitOnUpdated,
        ]
    }

    /// Stable identifier used in `BENCH_interp.json`.
    pub fn key(self) -> &'static str {
        match self {
            Config::CachesOff => "caches_off",
            Config::CachesOn => "caches_on",
            Config::CachesOnUpdated => "caches_on_updated",
            Config::JitOn => "jit_on",
            Config::JitOnUpdated => "jit_on_updated",
        }
    }

    /// Whether the timed run happens after a dynamic update.
    fn updated(self) -> bool {
        matches!(self, Config::CachesOnUpdated | Config::JitOnUpdated)
    }

    /// Whether the template-JIT tier is enabled.
    fn jit(self) -> bool {
        matches!(self, Config::JitOn | Config::JitOnUpdated)
    }
}

/// One timed measurement.
#[derive(Debug, Clone)]
pub struct InterpSample {
    /// Wall time of the timed `Bench.run` call.
    pub wall: Duration,
    /// Guest calls dispatched during the timed run.
    pub calls: u64,
    /// `Bench.run`'s return value (cross-configuration sanity check).
    pub checksum: i64,
    /// Inline-cache hits during the timed run.
    pub ic_hits: u64,
    /// Inline-cache misses during the timed run.
    pub ic_misses: u64,
    /// Whole-run per-tier promotion counts: (base, opt, jit) compiles.
    pub tier_compiles: (u64, u64, u64),
    /// Base instructions retired during the timed run.
    pub steps: u64,
    /// Of those, retired inside superinstructions (0 with jit off).
    pub fused_steps: u64,
}

impl InterpSample {
    /// Nanoseconds per dispatched guest call.
    pub fn ns_per_call(&self) -> f64 {
        self.wall.as_nanos() as f64 / self.calls as f64
    }

    /// Hit fraction of all cache lookups (0.0 with caches off).
    pub fn hit_rate(&self) -> f64 {
        let total = self.ic_hits + self.ic_misses;
        if total == 0 {
            0.0
        } else {
            self.ic_hits as f64 / total as f64
        }
    }

    /// Fraction of retired base instructions executed inside
    /// superinstructions during the timed run (0.0 with jit off).
    pub fn fusion_coverage(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.fused_steps as f64 / self.steps as f64
        }
    }
}

/// Runs one configuration: boot, warm up (promoting the `area` methods
/// past the opt threshold and filling the caches), then time one
/// `Bench.run(iters)` call.
///
/// # Panics
///
/// Panics on fixture errors (the workload always compiles, runs, and —
/// for [`Config::CachesOnUpdated`] — the update always applies).
pub fn measure(config: Config, iters: i64) -> InterpSample {
    let vm_config = VmConfig {
        enable_inline_caches: config != Config::CachesOff,
        enable_jit: config.jit(),
        ..VmConfig::default()
    };
    let mut vm = Vm::new(vm_config);
    let v1 = jvolve_lang::compile(INTERP_V1).expect("interp v1 compiles");
    vm.load_classes(&v1).expect("interp classes load");

    // Warm-up: fills caches and drives every `area` body past the opt
    // threshold (and, in jit mode, `run`'s loop trips past the jit
    // threshold), so the timed run sees steady-state code in every mode.
    let warm = vm
        .call_static_sync("Bench", "run", &[Value::Int(1_000)])
        .expect("warmup runs")
        .expect("run returns a value");
    assert!(matches!(warm, Value::Int(_)));

    if config.updated() {
        let v2 = jvolve_lang::compile(INTERP_V2).expect("interp v2 compiles");
        let update = Update::prepare(&v1, &v2, "v1_").expect("non-empty update");
        let mut events = MemorySink::default();
        let mut controller = UpdateController::new(&update, ApplyOptions::default());
        controller.attach_sink(&mut events);
        controller.run_to_completion(&mut vm).expect("update applies");
        // Post-update warm-up: invalidated methods re-baseline and
        // re-promote, and the flushed caches refill.
        vm.call_static_sync("Bench", "run", &[Value::Int(1_000)]).expect("post-update warmup");
    }

    let hits0 = vm.stats().ic_hits;
    let misses0 = vm.stats().ic_misses;
    let steps0 = vm.stats().steps;
    let fused0 = vm.stats().fused_steps;
    let start = Instant::now();
    let result = vm
        .call_static_sync("Bench", "run", &[Value::Int(iters)])
        .expect("timed run")
        .expect("run returns a value");
    let wall = start.elapsed();
    let Value::Int(checksum) = result else { panic!("Bench.run returns an int") };

    let s = vm.stats();
    InterpSample {
        wall,
        calls: iters as u64 * CALLS_PER_ITER,
        checksum,
        ic_hits: s.ic_hits - hits0,
        ic_misses: s.ic_misses - misses0,
        tier_compiles: (s.base_compiles, s.opt_compiles, s.jit_compiles),
        steps: s.steps - steps0,
        fused_steps: s.fused_steps - fused0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configurations_agree_on_the_checksum() {
        let iters = 300;
        let off = measure(Config::CachesOff, iters);
        let on = measure(Config::CachesOn, iters);
        assert_eq!(off.checksum, on.checksum, "caches must not change results");
        assert_eq!(off.ic_hits, 0, "caches-off must never consult a cache");
        assert!(on.hit_rate() > 0.9, "steady state should hit: {}", on.hit_rate());
        assert_eq!(on.tier_compiles.2, 0, "jit off never jit-compiles");
        assert_eq!(on.fused_steps, 0, "jit off never fuses");

        // The jit configuration computes the same result while actually
        // running fused code: same checksum, same retired base-instruction
        // count, nonzero fusion coverage.
        let jit = measure(Config::JitOn, iters);
        assert_eq!(jit.checksum, on.checksum, "jit must not change results");
        assert_eq!(jit.steps, on.steps, "fused ops must retire the base step count");
        assert!(jit.tier_compiles.2 > 0, "the jit tier never engaged");
        assert!(jit.fusion_coverage() > 0.0, "no superinstruction retired");

        // The updated configurations run v2 bodies, so their checksums
        // differ — but they must still hit warm caches (and, with jit,
        // re-promoted fused code).
        let updated = measure(Config::CachesOnUpdated, iters);
        assert_ne!(updated.checksum, on.checksum, "v2 bodies changed");
        assert!(updated.hit_rate() > 0.9, "post-update steady state: {}", updated.hit_rate());
        let jit_updated = measure(Config::JitOnUpdated, iters);
        assert_eq!(jit_updated.checksum, updated.checksum, "jit must not change v2 results");
        assert!(jit_updated.fusion_coverage() > 0.0, "post-update code re-promoted to jit");
    }
}
