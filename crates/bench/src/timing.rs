//! A minimal wall-clock measurement harness (the bench binaries' and
//! `cargo bench` targets' replacement for an external framework; the build
//! environment is offline, so the crate carries its own).
//!
//! One warmup run, then `iters` timed iterations; reporting is by median,
//! which is robust against scheduler noise on shared machines.

use std::time::{Duration, Instant};

/// Timed iterations of one benchmark, sorted ascending (nanoseconds).
#[derive(Debug, Clone)]
pub struct Samples {
    ns: Vec<u64>,
}

impl Samples {
    /// Wraps raw per-iteration nanosecond timings.
    pub fn from_ns(mut ns: Vec<u64>) -> Samples {
        assert!(!ns.is_empty(), "no samples");
        ns.sort_unstable();
        Samples { ns }
    }

    /// Median iteration time in nanoseconds.
    pub fn median_ns(&self) -> u64 {
        let n = self.ns.len();
        if n % 2 == 1 {
            self.ns[n / 2]
        } else {
            (self.ns[n / 2 - 1] + self.ns[n / 2]) / 2
        }
    }

    /// Fastest iteration in nanoseconds.
    pub fn min_ns(&self) -> u64 {
        self.ns[0]
    }

    /// Slowest iteration in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        *self.ns.last().expect("non-empty")
    }

    /// Number of timed iterations.
    pub fn len(&self) -> usize {
        self.ns.len()
    }

    /// Whether there are no samples (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.ns.is_empty()
    }
}

/// Runs `f` once for warmup, then `iters` timed iterations.
pub fn run<T>(iters: usize, mut f: impl FnMut() -> T) -> Samples {
    std::hint::black_box(f());
    let mut ns = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        ns.push(t.elapsed().as_nanos() as u64);
    }
    Samples::from_ns(ns)
}

/// Like [`run`], but each iteration gets fresh state from `setup`, whose
/// time is excluded from the measurement.
pub fn run_with_setup<S, T>(
    iters: usize,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> T,
) -> Samples {
    std::hint::black_box(routine(setup()));
    let mut ns = Vec::with_capacity(iters);
    for _ in 0..iters {
        let state = setup();
        let t = Instant::now();
        std::hint::black_box(routine(state));
        ns.push(t.elapsed().as_nanos() as u64);
    }
    Samples::from_ns(ns)
}

/// Allowed best-of-N regression before a bench check gate fails. Shared
/// by `gcbench`, `interpbench`, and `lazybench` so "no worse than 15%"
/// means the same thing across every tier-1 performance gate.
pub const REGRESSION_LIMIT: f64 = 0.15;

/// Result of one best-of-N gate comparison (see [`gate_best_of`]).
#[derive(Debug, Clone, Copy)]
pub struct GateOutcome {
    /// The best-of-N measurement being judged, after any retry.
    pub current: f64,
    /// Relative change vs the baseline: `current / baseline - 1.0`.
    pub delta: f64,
    /// Whether the retry path ran.
    pub retried: bool,
}

impl GateOutcome {
    /// Whether the gate failed even after the retry.
    pub fn regressed(&self) -> bool {
        self.delta > REGRESSION_LIMIT
    }

    /// The verdict string the bench binaries print.
    pub fn verdict(&self) -> &'static str {
        match (self.regressed(), self.retried) {
            (true, _) => "REGRESSED",
            (false, true) => "ok (after retry)",
            (false, false) => "ok",
        }
    }
}

/// Judges a best-of-N measurement against a baseline with a noise retry:
/// if `current` exceeds `baseline` by more than [`REGRESSION_LIMIT`],
/// `retry` re-measures (the gate binaries use 3× the iterations) and the
/// best of both runs is judged instead. A real regression survives the
/// retry; scheduler noise does not — noise only ever *adds* time, which
/// is why the gates compare minima rather than medians.
pub fn gate_best_of(current: f64, baseline: f64, retry: impl FnOnce() -> f64) -> GateOutcome {
    let mut current = current;
    let mut delta = current / baseline - 1.0;
    let mut retried = false;
    if delta > REGRESSION_LIMIT {
        current = current.min(retry());
        delta = current / baseline - 1.0;
        retried = true;
    }
    GateOutcome { current, delta, retried }
}

/// Prints one aligned result line: `label  median ..  min ..  max ..`.
pub fn report(label: &str, s: &Samples) {
    println!(
        "{label:<44} median {:>12}  min {:>12}  max {:>12}  ({} iters)",
        fmt_ns(s.median_ns()),
        fmt_ns(s.min_ns()),
        fmt_ns(s.max_ns()),
        s.len()
    );
}

/// Formats nanoseconds with a unit picked by magnitude.
pub fn fmt_ns(ns: u64) -> String {
    let d = Duration::from_nanos(ns);
    if ns >= 1_000_000_000 {
        format!("{:.2}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.2}µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even_sample_counts() {
        assert_eq!(Samples::from_ns(vec![3, 1, 2]).median_ns(), 2);
        assert_eq!(Samples::from_ns(vec![4, 1, 2, 3]).median_ns(), 2);
        let s = Samples::from_ns(vec![10, 5]);
        assert_eq!(s.min_ns(), 5);
        assert_eq!(s.max_ns(), 10);
    }

    #[test]
    fn run_counts_iterations() {
        let mut calls = 0;
        let s = run(4, || calls += 1);
        assert_eq!(s.len(), 4);
        assert_eq!(calls, 5, "warmup + 4 timed");
    }

    #[test]
    fn setup_time_is_excluded() {
        // The setup sleeps; the routine is trivial — medians must reflect
        // the routine only.
        let s = run_with_setup(
            3,
            || std::thread::sleep(Duration::from_millis(5)),
            |()| 1 + 1,
        );
        assert!(s.median_ns() < 1_000_000, "median {}ns includes setup", s.median_ns());
    }

    #[test]
    fn gate_passes_fast_results_without_retrying() {
        let g = gate_best_of(100.0, 100.0, || panic!("no retry needed"));
        assert!(!g.regressed());
        assert!(!g.retried);
        assert_eq!(g.verdict(), "ok");
    }

    #[test]
    fn gate_retries_and_forgives_noise() {
        // First measurement 40% over; the retry comes back clean.
        let g = gate_best_of(140.0, 100.0, || 102.0);
        assert!(!g.regressed());
        assert!(g.retried);
        assert_eq!(g.current, 102.0);
        assert_eq!(g.verdict(), "ok (after retry)");
    }

    #[test]
    fn gate_flags_regressions_that_survive_the_retry() {
        let g = gate_best_of(140.0, 100.0, || 138.0);
        assert!(g.regressed());
        assert_eq!(g.current, 138.0);
        assert_eq!(g.verdict(), "REGRESSED");
        // The retry can never make the verdict worse than the original.
        assert!(gate_best_of(140.0, 100.0, || 500.0).current <= 140.0);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
