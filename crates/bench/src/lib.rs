//! Benchmark harnesses regenerating every table and figure of the JVolve
//! paper's evaluation (§4). See DESIGN.md's per-experiment index.
//!
//! Harness binaries (run with `--release` for meaningful numbers):
//!
//! * `table1` — update pause time vs heap size × updated fraction
//! * `fig5`   — webserver throughput/latency, four configurations
//!   (stock, DSU no-jit, DSU, DSU after update)
//! * `fig6`   — pause-time series at the largest configuration
//! * `table2` / `table3` / `table4` — per-release summaries + live updates
//! * `summary` — the "20 of 22" headline and the E&C comparison
//! * `ablation` — eager vs lazy steady state; jit tier on/off/updated;
//!   barriers/OSR machinery
//! * `gcbench` — update-GC pause regression gate vs `results/BENCH_gc.json`
//! * `interpbench` — steady-state dispatch throughput gate vs
//!   `results/BENCH_interp.json` (inline caches on/off/after-update plus
//!   the template-JIT tier on and on-after-update)
//! * `lazybench` — lazy-migration pause and steady-state gate vs
//!   `results/BENCH_lazy.json` (commit pause ≤ 25% of eager, barrier-free
//!   steady state after the epoch drains)
//! * `fleetbench` — sharded fleet throughput scaling and rolling-update
//!   integrity gate vs `results/BENCH_fleet.json` (zero dropped/incorrect
//!   responses during a rolling lazy update; ≥2× aggregate throughput at
//!   4 shards on hosts with ≥4 CPUs)
//! * `streambench` — UPT release-stream gate vs `results/BENCH_stream.json`
//!   (the kvstore's 20-update chain applies eager and lazy with zero
//!   incorrect responses, mid-drain arrivals serialized, and the longest
//!   per-update pause bounded)

pub mod ablation;
pub mod fig5;
pub mod fleet;
pub mod interp;
pub mod lazy;
pub mod micro;
pub mod stream;
pub mod tables;
pub mod timing;

/// Parses `--flag value` style arguments from `std::env::args`.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// Whether a bare `--flag` is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Validates the gate binaries' shared CLI
/// (`[--check] [--iters N] [--baseline FILE] [--out FILE]`): anything
/// else prints the usage line and exits 2. `gcbench`, `interpbench`, and
/// `lazybench` all speak exactly this dialect.
pub fn enforce_gate_args(bin: &str) {
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--check" => {}
            "--iters" | "--baseline" | "--out" => {
                raw.next();
            }
            other => {
                eprintln!("{bin}: unknown argument `{other}`");
                eprintln!("usage: {bin} [--check] [--iters N] [--baseline FILE] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
}

/// `--iters N` with the gate binaries' shared default of 5.
pub fn gate_iters() -> usize {
    arg_value("--iters").and_then(|s| s.parse().ok()).unwrap_or(5)
}

/// In `--check` mode, loads the baseline JSON *before* any measurement so
/// a missing or malformed file fails immediately, not after the timed
/// runs. Returns `(path, parsed)`, or `None` outside `--check`.
pub fn baseline_for_check(bin: &str, default_path: &str) -> Option<(String, jvolve_json::Json)> {
    arg_flag("--check").then(|| {
        let path = arg_value("--baseline").unwrap_or_else(|| default_path.to_string());
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("{bin}: cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline = jvolve_json::Json::parse(&text).expect("baseline parses");
        (path, baseline)
    })
}
