//! Benchmark harnesses regenerating every table and figure of the JVolve
//! paper's evaluation (§4). See DESIGN.md's per-experiment index.
//!
//! Harness binaries (run with `--release` for meaningful numbers):
//!
//! * `table1` — update pause time vs heap size × updated fraction
//! * `fig5`   — webserver throughput/latency, three configurations
//! * `fig6`   — pause-time series at the largest configuration
//! * `table2` / `table3` / `table4` — per-release summaries + live updates
//! * `summary` — the "20 of 22" headline and the E&C comparison
//! * `ablation` — eager vs lazy steady state; barriers/OSR machinery
//! * `gcbench` — update-GC pause regression gate vs `results/BENCH_gc.json`
//! * `interpbench` — steady-state dispatch throughput gate vs
//!   `results/BENCH_interp.json` (inline caches on/off/after-update)

pub mod ablation;
pub mod fig5;
pub mod interp;
pub mod micro;
pub mod tables;
pub mod timing;

/// Parses `--flag value` style arguments from `std::env::args`.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// Whether a bare `--flag` is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}
