//! Regenerates the paper's **Table 2**: summary of updates to the
//! webserver (Jetty), with live-update outcomes per release.
//!
//! Usage: `cargo run --release -p jvolve-bench --bin table2 [--static]`
//! (`--static` skips the live-update attempts and prints only UPT output)

use jvolve_apps::Webserver;
use jvolve_bench::arg_flag;
use jvolve_bench::tables::{render_table, run_table, summarize_releases};

fn main() {
    let rows = if arg_flag("--static") {
        summarize_releases(&Webserver)
    } else {
        run_table(&Webserver)
    };
    println!("{}", render_table("webserver (Jetty, paper Table 2)", &rows));
    println!("paper: 10 updates, 5.1.3 unsupported (acceptSocket always on stack);");
    println!("method-body-only systems support the first and last three updates.");
}
