//! Release-stream regression harness: the kvstore's 20-version chain,
//! prepared by the UPT, applied end-to-end under sustained verified load.
//!
//! Gates (ISSUE 10 acceptance):
//!
//! 1. **Stream integrity** (unconditional): the full chain applies on an
//!    eager stream *and* a lazy stream — every update commits, zero
//!    aborted, zero incorrect responses, zero unanswered probes; the
//!    lazy stream serializes at least one release that arrived while the
//!    previous epoch was still draining; both streams end on the same
//!    registry version fingerprint.
//! 2. **Pause bound**: the longest single-update pause across the eager
//!    stream (best-of-N) must stay under the absolute [`PAUSE_CEILING_NS`]
//!    and within the regression limit of the committed
//!    `results/BENCH_stream.json` baseline.
//!
//! Usage (same dialect as `gcbench`/`interpbench`/`lazybench`/`fleetbench`):
//!
//! * `cargo run --release -p jvolve-bench --bin streambench` — measure
//!   and write `BENCH_stream.json` (`--out FILE`; to refresh the
//!   committed baseline, `--out results/BENCH_stream.json`).
//! * `... --bin streambench -- --check` — re-measure and exit nonzero if
//!   any gate fails (`--baseline FILE` overrides the baseline path).
//!   `scripts/tier1.sh` runs this. The timed gate compares *best-of-N*
//!   and re-measures with 3× iterations before declaring a failure.
//!
//! `--iters N` controls full eager-stream iterations (default 5).

use jvolve_apps::StreamReport;
use jvolve_bench::stream::{chain_len, measure_eager, measure_lazy};
use jvolve_bench::timing::{fmt_ns, gate_best_of, Samples, REGRESSION_LIMIT};
use jvolve_bench::{arg_value, baseline_for_check, gate_iters};
use jvolve_json::Json;

/// Absolute ceiling on the longest single-update pause in the eager
/// stream. The paper's pauses are dominated by the update GC; a chain
/// update on the kvstore's working set is far below this — the ceiling
/// catches pathological regressions even when the committed baseline
/// drifts with it.
const PAUSE_CEILING_NS: u64 = 25_000_000;

/// Best-of-`iters` eager streams. Every run must be clean — a stream
/// with a wrong answer has no pause number worth comparing.
fn best_of_eager(iters: usize) -> (Samples, StreamReport) {
    let mut pauses = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let report = measure_eager();
        assert!(
            report.clean(chain_len()) && report.unanswered == 0,
            "eager stream not clean while measuring: {report:?}"
        );
        pauses.push(report.max_pause.as_nanos() as u64);
        last = Some(report);
    }
    (Samples::from_ns(pauses), last.expect("at least one iteration"))
}

fn to_json(pauses: &Samples, eager: &StreamReport, lazy: &StreamReport, iters: usize) -> Json {
    Json::obj([
        ("schema", Json::from("jvolve-streambench-v1")),
        ("iters", Json::from(iters)),
        ("updates", Json::from(chain_len())),
        ("pause_ns_min", Json::from(pauses.min_ns())),
        ("pause_ns_median", Json::from(pauses.median_ns())),
        (
            "eager",
            Json::obj([
                ("responses", Json::from(eager.responses)),
                ("incorrect", Json::from(eager.incorrect)),
                ("unanswered", Json::from(eager.unanswered)),
            ]),
        ),
        (
            "lazy",
            Json::obj([
                ("responses", Json::from(lazy.responses)),
                ("incorrect", Json::from(lazy.incorrect)),
                ("unanswered", Json::from(lazy.unanswered)),
                ("queued_mid_drain", Json::from(lazy.queued_mid_drain)),
            ]),
        ),
    ])
}

fn print_table(pauses: &Samples, eager: &StreamReport, lazy: &StreamReport) {
    let updates = chain_len();
    println!(
        "eager stream: {}/{} updates, {} responses, {} incorrect, {} unanswered",
        eager.versions_applied, updates, eager.responses, eager.incorrect, eager.unanswered
    );
    println!(
        "lazy stream:  {}/{} updates, {} responses, {} incorrect, {} unanswered, \
         {} queued mid-drain",
        lazy.versions_applied,
        updates,
        lazy.responses,
        lazy.incorrect,
        lazy.unanswered,
        lazy.queued_mid_drain
    );
    println!(
        "max per-update pause: {} (min) / {} (median) over {} eager stream(s)",
        fmt_ns(pauses.min_ns()),
        fmt_ns(pauses.median_ns()),
        pauses.len()
    );
}

fn check(
    pauses: &Samples,
    eager: &StreamReport,
    lazy: &StreamReport,
    baseline: &Json,
    path: &str,
    iters: usize,
) -> Vec<String> {
    let mut failures = Vec::new();
    let updates = chain_len();

    // Gate 1 (unconditional): stream integrity. No timing, no retry.
    println!("\nstream integrity gate ({updates} updates):");
    let checks: [(&str, bool); 6] = [
        ("eager: full chain applied, zero aborted", eager.clean(updates)),
        ("eager: zero incorrect, zero unanswered", eager.incorrect == 0 && eager.unanswered == 0),
        ("lazy: full chain applied, zero aborted", lazy.clean(updates)),
        ("lazy: zero incorrect, zero unanswered", lazy.incorrect == 0 && lazy.unanswered == 0),
        ("lazy: serialized a mid-drain arrival", lazy.queued_mid_drain >= 1),
        (
            "eager and lazy registry fingerprints converged",
            eager.version_fingerprint == lazy.version_fingerprint,
        ),
    ];
    for (what, ok) in checks {
        println!("  {} {}", if ok { "ok  " } else { "FAIL" }, what);
        if !ok {
            failures.push(format!("stream integrity: {what}"));
        }
    }

    // Gate 2: the pause bound — absolute ceiling plus baseline drift.
    let mut pause = pauses.min_ns() as f64;
    println!("\npause gate vs {path} (limit +{:.0}%):", REGRESSION_LIMIT * 100.0);
    match baseline.get("pause_ns_min").and_then(Json::as_f64) {
        None => println!("  no baseline entry — regression check skipped"),
        Some(base) => {
            let g = gate_best_of(pause, base, || {
                let (retry, _) = best_of_eager(iters * 3);
                retry.min_ns() as f64
            });
            pause = g.current;
            println!(
                "  max pause {:>9} -> {:>9} ({:>+6.1}%) {}",
                fmt_ns(base as u64),
                fmt_ns(g.current as u64),
                g.delta * 100.0,
                g.verdict(),
            );
            if g.regressed() {
                failures.push(format!("per-update pause: {:.0} -> {:.0} ns", base, g.current));
            }
        }
    }
    println!(
        "  absolute ceiling: {} (limit {}) {}",
        fmt_ns(pause as u64),
        fmt_ns(PAUSE_CEILING_NS),
        if (pause as u64) <= PAUSE_CEILING_NS { "ok" } else { "FAIL" }
    );
    if pause as u64 > PAUSE_CEILING_NS {
        failures.push(format!(
            "per-update pause {} exceeds the absolute ceiling {}",
            fmt_ns(pause as u64),
            fmt_ns(PAUSE_CEILING_NS)
        ));
    }
    failures
}

fn main() {
    jvolve_bench::enforce_gate_args("streambench");
    let iters = gate_iters();
    let baseline = baseline_for_check("streambench", "results/BENCH_stream.json");

    eprint!("\rmeasuring eager stream...        ");
    let (pauses, eager) = best_of_eager(iters);
    eprint!("\rmeasuring lazy stream...         ");
    let lazy = measure_lazy();
    eprintln!();
    print_table(&pauses, &eager, &lazy);

    if let Some((path, baseline)) = baseline {
        let failures = check(&pauses, &eager, &lazy, &baseline, &path, iters);
        if !failures.is_empty() {
            eprintln!("\nstream gate failure(s):");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        println!("no release-stream regressions.");
    } else {
        let out = arg_value("--out").unwrap_or_else(|| "BENCH_stream.json".to_string());
        std::fs::write(&out, to_json(&pauses, &eager, &lazy, iters).pretty() + "\n")
            .expect("write output");
        println!("\nwrote {out}");
    }
}
