//! Update-GC pause regression harness.
//!
//! Measures the **update-GC phase** of the §4.1 microbenchmark — the part
//! the flattened `LayoutSnapshot` hot path optimizes — as median
//! nanoseconds per live object, at 0%/50%/100% updated fractions, two
//! heap sizes, and three GC worker counts (the parallel collector's
//! threads axis), and gates changes against the committed baseline.
//!
//! Usage:
//!
//! * `cargo run --release -p jvolve-bench --bin gcbench` — measure and
//!   write `BENCH_gc.json` (override with `--out FILE`; to refresh the
//!   committed baseline, `--out results/BENCH_gc.json`).
//! * `cargo run --release -p jvolve-bench --bin gcbench -- --check` —
//!   quick mode: re-measure and exit nonzero if any serial
//!   (`gc_threads = 1`) configuration's GC phase regressed more than 15%
//!   vs `results/BENCH_gc.json` (override with `--baseline FILE`).
//!   `scripts/tier1.sh` runs this. The gate compares *best-of-N* times,
//!   not medians — noise only adds time, so min-of-N is the stable
//!   statistic at microsecond scales. Baseline entries without a
//!   `gc_threads` field (the v1 schema) are treated as serial.
//!
//!   `--check` also gates the parallel collector itself: at the largest
//!   configuration, 4 workers must not be more than 15% *slower* than
//!   serial. That gate only makes sense with real cores behind the
//!   workers, so it is skipped (with a message) on hosts with fewer than
//!   4 logical CPUs.
//!
//! `--iters N` controls timed iterations per configuration (default 5).

use jvolve_bench::micro::{measure_pause_threads, PauseSample};
use jvolve_bench::timing::{fmt_ns, gate_best_of, Samples, REGRESSION_LIMIT};
use jvolve_bench::{arg_value, baseline_for_check, enforce_gate_args, gate_iters};
use jvolve_json::Json;

/// The gated configurations: two heap sizes (the semispace scales with the
/// object count) × three updated fractions × three GC worker counts.
const OBJECT_COUNTS: [usize; 2] = [5_000, 20_000];
const FRACTIONS: [f64; 3] = [0.0, 0.5, 1.0];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Minimum logical CPUs before the parallel-vs-serial gate is enforced.
/// With fewer cores the workers time-slice one CPU and "parallel beats
/// serial" is not a meaningful claim.
const PARALLEL_GATE_MIN_CPUS: usize = 4;

struct Entry {
    objects: usize,
    fraction: f64,
    gc_threads: usize,
    semispace_words: usize,
    gc_ns_per_object: f64,
    /// Best-of-N GC phase time. The check gate compares this, not the
    /// median: scheduler noise only ever adds time, so min-of-N is far
    /// more stable at these microsecond scales.
    gc_min_ns_per_object: f64,
    total_ns_per_object: f64,
    gc_copied_cells: usize,
    gc_copied_words: usize,
}

fn measure(iters: usize) -> Vec<Entry> {
    let mut entries = Vec::new();
    for &objects in &OBJECT_COUNTS {
        for &fraction in &FRACTIONS {
            for &gc_threads in &THREAD_COUNTS {
                eprint!(
                    "\rmeasuring {objects} objects, {:>3.0}% updated, {gc_threads} worker(s)...",
                    fraction * 100.0
                );
                let mut gc_ns = Vec::with_capacity(iters);
                let mut total_ns = Vec::with_capacity(iters);
                let mut last: Option<PauseSample> = None;
                // Warmup run, then timed runs; measure_pause_threads builds
                // a fresh VM each time, so iterations are independent.
                measure_pause_threads(objects, fraction, gc_threads);
                for _ in 0..iters {
                    let s = measure_pause_threads(objects, fraction, gc_threads);
                    gc_ns.push(s.gc_time.as_nanos() as u64);
                    total_ns.push(s.total_time.as_nanos() as u64);
                    last = Some(s);
                }
                let last = last.expect("at least one iteration");
                let gc = Samples::from_ns(gc_ns);
                entries.push(Entry {
                    objects,
                    fraction,
                    gc_threads,
                    semispace_words: last.semispace_words,
                    gc_ns_per_object: gc.median_ns() as f64 / objects as f64,
                    gc_min_ns_per_object: gc.min_ns() as f64 / objects as f64,
                    total_ns_per_object: Samples::from_ns(total_ns).median_ns() as f64
                        / objects as f64,
                    gc_copied_cells: last.gc_copied_cells,
                    gc_copied_words: last.gc_copied_words,
                });
            }
        }
    }
    eprintln!();
    entries
}

fn to_json(entries: &[Entry], iters: usize) -> Json {
    Json::obj([
        ("schema", Json::from("jvolve-gcbench-v2")),
        ("iters", Json::from(iters)),
        (
            "entries",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("objects", Json::from(e.objects)),
                            ("fraction", Json::from(e.fraction)),
                            ("gc_threads", Json::from(e.gc_threads)),
                            ("semispace_words", Json::from(e.semispace_words)),
                            ("gc_ns_per_object", Json::from(e.gc_ns_per_object)),
                            ("gc_min_ns_per_object", Json::from(e.gc_min_ns_per_object)),
                            ("total_ns_per_object", Json::from(e.total_ns_per_object)),
                            ("gc_copied_cells", Json::from(e.gc_copied_cells)),
                            ("gc_copied_words", Json::from(e.gc_copied_words)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Best-of-`iters` GC phase time for one configuration, in ns/object.
/// Used by `--check` to re-measure a configuration that tripped the gate:
/// a real regression survives the retry, scheduler noise does not.
fn gc_min_ns(objects: usize, fraction: f64, gc_threads: usize, iters: usize) -> f64 {
    let mut best = u64::MAX;
    measure_pause_threads(objects, fraction, gc_threads);
    for _ in 0..iters {
        let s = measure_pause_threads(objects, fraction, gc_threads);
        best = best.min(s.gc_time.as_nanos() as u64);
    }
    best as f64 / objects as f64
}

fn baseline_gc_ns(baseline: &Json, objects: usize, fraction: f64) -> Option<f64> {
    baseline.get("entries")?.as_arr()?.iter().find_map(|e| {
        let obj = e.get("objects")?.as_u64()? as usize;
        let frac = e.get("fraction")?.as_f64()?;
        // v1 baselines predate the threads axis: no gc_threads field means
        // the serial collector.
        let threads = e.get("gc_threads").and_then(Json::as_u64).unwrap_or(1) as usize;
        (obj == objects && threads == 1 && (frac - fraction).abs() < 1e-9)
            .then(|| e.get("gc_min_ns_per_object")?.as_f64())
            .flatten()
    })
}

fn print_table(entries: &[Entry]) {
    println!(
        "{:>9} {:>9} {:>8} {:>10} {:>16} {:>18} {:>14}",
        "objects", "updated%", "workers", "heap(MB)", "gc ns/object", "total ns/object",
        "copied cells"
    );
    for e in entries {
        println!(
            "{:>9} {:>8.0}% {:>8} {:>10.1} {:>16.1} {:>18.1} {:>14}",
            e.objects,
            e.fraction * 100.0,
            e.gc_threads,
            (e.semispace_words * 2 * 8) as f64 / (1024.0 * 1024.0),
            e.gc_ns_per_object,
            e.total_ns_per_object,
            e.gc_copied_cells,
        );
    }
}

/// The serial-vs-baseline regression gate, `gc_threads = 1` entries only.
/// Returns human-readable descriptions of configurations beyond the limit.
fn check_serial(entries: &[Entry], baseline: &Json, path: &str, iters: usize) -> Vec<String> {
    let mut regressions = Vec::new();
    println!("\nregression check vs {path} (limit +{:.0}%):", REGRESSION_LIMIT * 100.0);
    for e in entries.iter().filter(|e| e.gc_threads == 1) {
        let Some(base) = baseline_gc_ns(baseline, e.objects, e.fraction) else {
            println!(
                "  {:>7} objects {:>3.0}%: no baseline entry — skipped",
                e.objects,
                e.fraction * 100.0
            );
            continue;
        };
        // A tripped gate re-measures with 3x iterations before declaring
        // a regression.
        let g = gate_best_of(e.gc_min_ns_per_object, base, || {
            gc_min_ns(e.objects, e.fraction, 1, iters * 3)
        });
        println!(
            "  {:>7} objects {:>3.0}%: {:>9} -> {:>9} per object ({:>+6.1}%) {}",
            e.objects,
            e.fraction * 100.0,
            fmt_ns(base as u64),
            fmt_ns(g.current as u64),
            g.delta * 100.0,
            g.verdict(),
        );
        if g.regressed() {
            regressions.push(format!(
                "{} objects at {:.0}%: {:.1} -> {:.1} ns/object",
                e.objects,
                e.fraction * 100.0,
                base,
                g.current
            ));
        }
    }
    regressions
}

/// The parallel-vs-serial gate: at the largest configuration, 4 workers
/// must not be more than `REGRESSION_LIMIT` slower than serial in the
/// same run. Skipped on hosts without enough CPUs to run the workers in
/// parallel at all.
fn check_parallel(entries: &[Entry], iters: usize) -> Vec<String> {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cpus < PARALLEL_GATE_MIN_CPUS {
        println!(
            "\nparallel-vs-serial gate skipped: host has {cpus} logical CPU(s), \
             need >= {PARALLEL_GATE_MIN_CPUS}"
        );
        return Vec::new();
    }
    let objects = *OBJECT_COUNTS.last().expect("object counts");
    let fraction = *FRACTIONS.last().expect("fractions");
    let pick = |threads: usize| {
        entries
            .iter()
            .find(|e| e.objects == objects && e.fraction == fraction && e.gc_threads == threads)
            .map(|e| e.gc_min_ns_per_object)
    };
    let (Some(serial), Some(parallel)) = (pick(1), pick(4)) else {
        return Vec::new();
    };
    // Retry before declaring the parallel collector slow.
    let g = gate_best_of(parallel, serial, || gc_min_ns(objects, fraction, 4, iters * 3));
    println!(
        "\nparallel-vs-serial gate ({objects} objects, {:.0}% updated): \
         serial {} -> 4 workers {} per object ({:+.1}%)",
        fraction * 100.0,
        fmt_ns(serial as u64),
        fmt_ns(g.current as u64),
        g.delta * 100.0,
    );
    if g.regressed() {
        vec![format!(
            "4 workers slower than serial at {objects} objects: {serial:.1} -> {:.1} ns/object",
            g.current
        )]
    } else {
        Vec::new()
    }
}

fn main() {
    enforce_gate_args("gcbench");
    let iters = gate_iters();
    let baseline = baseline_for_check("gcbench", "results/BENCH_gc.json");

    let entries = measure(iters);
    print_table(&entries);

    if let Some((path, baseline)) = baseline {
        let mut regressions = check_serial(&entries, &baseline, &path, iters);
        regressions.extend(check_parallel(&entries, iters));
        if !regressions.is_empty() {
            eprintln!("\nGC pause regression(s) beyond {:.0}%:", REGRESSION_LIMIT * 100.0);
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
        println!("no GC pause regressions.");
    } else {
        let out = arg_value("--out").unwrap_or_else(|| "BENCH_gc.json".to_string());
        std::fs::write(&out, to_json(&entries, iters).pretty() + "\n").expect("write output");
        println!("\nwrote {out}");
    }
}
