//! The paper's §4 headline numbers:
//!
//! * JVolve supports **20 of the 22** updates (the two failures change
//!   methods inside always-on-stack loops);
//! * method-body-only ("edit and continue") systems support far fewer;
//! * update phase timings (§4.1's "thread-suspend < 1 ms, classloading
//!   < 20 ms, pause dominated by GC + transformers").
//!
//! Usage: `cargo run --release -p jvolve-bench --bin summary`

use jvolve_apps::harness::{attempt_update, bench_apply_options, boot, prepare_next};

fn main() {
    let migrate = std::env::args().any(|a| a == "--migrate");
    let mut opts = bench_apply_options();
    if migrate {
        // The paper's §3.5 future work: UpStare-style active-method
        // migration.
        opts.migrate_active_methods = true;
    }
    let mut total = 0;
    let mut supported = 0;
    let mut body_only_supported = 0;
    let mut failures: Vec<String> = Vec::new();
    let mut phase_lines: Vec<String> = Vec::new();

    for app in jvolve_apps::all_apps() {
        let versions = app.versions();
        for from in 0..versions.len() - 1 {
            total += 1;
            let to_label = versions[from + 1].label;
            let update = prepare_next(app.as_ref(), from);
            if update.spec.is_body_only() {
                body_only_supported += 1;
            }
            let mut vm = boot(app.as_ref(), from);
            let (outcome, stats) = attempt_update(&mut vm, app.as_ref(), from, &opts);
            if outcome.supported() {
                supported += 1;
            } else {
                failures.push(format!("{} -> {to_label}: {outcome}", app.name()));
            }
            if let Some(s) = stats {
                phase_lines.push(format!(
                    "{:<12} {:<7} safepoint {:>8.3}ms  load {:>8.3}ms  gc {:>8.3}ms  \
                     transform {:>8.3}ms  wall {:>8.3}ms (phases {:>8.3}ms)  \
                     (objects {:>4}, cells {:>5}, barriers {}, OSR {})",
                    app.name(),
                    to_label,
                    s.safepoint_time.as_secs_f64() * 1e3,
                    s.classload_time.as_secs_f64() * 1e3,
                    s.gc_time.as_secs_f64() * 1e3,
                    s.transform_time.as_secs_f64() * 1e3,
                    s.total_time.as_secs_f64() * 1e3,
                    s.phase_sum().as_secs_f64() * 1e3,
                    s.objects_transformed,
                    s.gc_copied_cells,
                    s.barriers_installed,
                    s.osr_replacements + s.active_migrations,
                ));
            }
            eprint!("\r{total} updates attempted...");
        }
    }
    eprintln!();

    if migrate {
        println!("== JVolve reproduction + §3.5 active-method migration ==\n");
    } else {
        println!("== JVolve reproduction: update-support summary (paper §4) ==\n");
    }
    println!("updates attempted:            {total}   (paper: 22)");
    println!("supported by JVolve:          {supported}   (paper: 20)");
    println!("supported by method-body-only systems: {body_only_supported}   (paper: 9)");
    println!("\nunsupported updates:");
    for f in &failures {
        println!("  {f}");
    }
    println!("\nper-update phase breakdown (paper §4.1):");
    for line in &phase_lines {
        println!("  {line}");
    }
}
