//! Steady-state dispatch-throughput regression harness.
//!
//! Measures calls/second of the dispatch-bound workload in
//! `jvolve_bench::interp` — inline caches off, on, on-after-update, and
//! the template-JIT tier on and on-after-update — and gates changes
//! against the committed baseline.
//!
//! Usage:
//!
//! * `cargo run --release -p jvolve-bench --bin interpbench` — measure
//!   and write `BENCH_interp.json` (override with `--out FILE`; to
//!   refresh the committed baseline, `--out results/BENCH_interp.json`).
//! * `cargo run --release -p jvolve-bench --bin interpbench -- --check`
//!   — re-measure and exit nonzero if any configuration regressed more
//!   than 15% vs `results/BENCH_interp.json` (override with
//!   `--baseline FILE`), if the caches-on configuration is no longer at
//!   least [`SPEEDUP_FLOOR`]× faster than caches-off, if the jit
//!   configuration is no longer at least [`JIT_SPEEDUP_FLOOR`]× faster
//!   than caches-on, or if post-update jit throughput strays more than
//!   the regression limit from warm-jit throughput.
//!   `scripts/tier1.sh` runs this. Like `gcbench`, the gate compares
//!   *best-of-N* times — noise only adds time, so min-of-N is the stable
//!   statistic — and re-measures with 3× iterations before declaring a
//!   regression.
//!
//! Baselines written by the v1 schema (three cache configurations, no
//! jit entries) stay readable: configurations without a baseline entry
//! are reported and skipped by the per-entry gate, while the
//! relative gates (speedup floors, post-update parity) always run.
//!
//! `--iters N` controls timed iterations per configuration (default 5).

use jvolve_bench::interp::{measure, Config, InterpSample};
use jvolve_bench::timing::{fmt_ns, gate_best_of, REGRESSION_LIMIT};
use jvolve_bench::{arg_value, baseline_for_check, enforce_gate_args, gate_iters};
use jvolve_json::Json;

/// `--check` fails if best-of-N caches-off time / caches-on time drops
/// below this: the inline caches must keep buying a real steady-state
/// win, not just avoid regressing.
const SPEEDUP_FLOOR: f64 = 1.20;

/// `--check` fails if best-of-N caches-on time / jit-on time drops below
/// this: superinstruction fusion plus the leaf-call fast path must keep
/// buying at least a 2× dispatch-throughput win over the cached
/// interpreter, and post-update steady state must recover it.
const JIT_SPEEDUP_FLOOR: f64 = 2.0;

/// Guest loop iterations per timed run (16 calls each).
const GUEST_ITERS: i64 = 100_000;

struct Entry {
    config: Config,
    ns_per_call: f64,
    /// Best-of-N. The check gate compares this, not the median.
    min_ns_per_call: f64,
    calls: u64,
    checksum: i64,
    ic_hit_rate: f64,
    /// Whole-run per-tier promotion counts: (base, opt, jit) compiles.
    tier_compiles: (u64, u64, u64),
    /// Fraction of retired base instructions executed inside
    /// superinstructions during the timed run.
    fusion_coverage: f64,
}

fn best_of(config: Config, iters: usize) -> (Vec<f64>, InterpSample) {
    // Warmup run, then timed runs; measure() builds a fresh VM each
    // time, so iterations are independent.
    measure(config, GUEST_ITERS);
    let mut ns = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let s = measure(config, GUEST_ITERS);
        ns.push(s.ns_per_call());
        last = Some(s);
    }
    (ns, last.expect("at least one iteration"))
}

fn run(iters: usize) -> Vec<Entry> {
    Config::all()
        .into_iter()
        .map(|config| {
            eprint!("\rmeasuring {} ...          ", config.key());
            let (mut ns, last) = best_of(config, iters);
            ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            Entry {
                config,
                ns_per_call: ns[ns.len() / 2],
                min_ns_per_call: ns[0],
                calls: last.calls,
                checksum: last.checksum,
                ic_hit_rate: last.hit_rate(),
                tier_compiles: last.tier_compiles,
                fusion_coverage: last.fusion_coverage(),
            }
        })
        .collect()
}

fn to_json(entries: &[Entry], iters: usize) -> Json {
    Json::obj([
        ("schema", Json::from("jvolve-interpbench-v2")),
        ("iters", Json::from(iters)),
        (
            "entries",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("config", Json::from(e.config.key())),
                            ("ns_per_call", Json::from(e.ns_per_call)),
                            ("min_ns_per_call", Json::from(e.min_ns_per_call)),
                            ("calls", Json::from(e.calls)),
                            ("checksum", Json::from(e.checksum as f64)),
                            ("ic_hit_rate", Json::from(e.ic_hit_rate)),
                            ("base_compiles", Json::from(e.tier_compiles.0)),
                            ("opt_compiles", Json::from(e.tier_compiles.1)),
                            ("jit_compiles", Json::from(e.tier_compiles.2)),
                            ("fusion_coverage", Json::from(e.fusion_coverage)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn baseline_min_ns(baseline: &Json, config: Config) -> Option<f64> {
    baseline.get("entries")?.as_arr()?.iter().find_map(|e| {
        (e.get("config")?.as_str()? == config.key())
            .then(|| e.get("min_ns_per_call")?.as_f64())
            .flatten()
    })
}

fn print_table(entries: &[Entry]) {
    println!(
        "{:>20} {:>14} {:>14} {:>12} {:>10} {:>16} {:>8}",
        "config", "ns/call", "min ns/call", "calls", "hit rate", "tiers b/o/j", "fused"
    );
    for e in entries {
        println!(
            "{:>20} {:>14.1} {:>14.1} {:>12} {:>9.1}% {:>16} {:>7.1}%",
            e.config.key(),
            e.ns_per_call,
            e.min_ns_per_call,
            e.calls,
            e.ic_hit_rate * 100.0,
            format!("{}/{}/{}", e.tier_compiles.0, e.tier_compiles.1, e.tier_compiles.2),
            e.fusion_coverage * 100.0,
        );
    }
}

/// Best-of-`iters` re-measurement of one configuration, for the retry
/// path: a real regression survives it, scheduler noise does not.
fn retry_min_ns(config: Config, iters: usize) -> f64 {
    let (ns, _) = best_of(config, iters);
    ns.into_iter().fold(f64::MAX, f64::min)
}

fn check(entries: &mut [Entry], baseline: &Json, path: &str, iters: usize) -> Vec<String> {
    let mut failures = Vec::new();
    println!("\nregression check vs {path} (limit +{:.0}%):", REGRESSION_LIMIT * 100.0);
    for e in entries.iter_mut() {
        let Some(base) = baseline_min_ns(baseline, e.config) else {
            println!("  {:>20}: no baseline entry — skipped", e.config.key());
            continue;
        };
        let g = gate_best_of(e.min_ns_per_call, base, || retry_min_ns(e.config, iters * 3));
        e.min_ns_per_call = g.current;
        println!(
            "  {:>20}: {:>9} -> {:>9} per call ({:>+6.1}%) {}",
            e.config.key(),
            fmt_ns(base as u64),
            fmt_ns(e.min_ns_per_call as u64),
            g.delta * 100.0,
            g.verdict(),
        );
        if g.regressed() {
            failures.push(format!(
                "{}: {:.1} -> {:.1} ns/call",
                e.config.key(),
                base,
                e.min_ns_per_call
            ));
        }
    }

    // The speedup gate: inline caches must keep earning their keep.
    let pick = |c: Config| {
        entries.iter().find(|e| e.config == c).map(|e| e.min_ns_per_call)
    };
    if let (Some(off), Some(on)) = (pick(Config::CachesOff), pick(Config::CachesOn)) {
        let speedup = off / on;
        println!(
            "\ncaches-on speedup gate: {:.2}x (floor {SPEEDUP_FLOOR:.2}x)",
            speedup
        );
        if speedup < SPEEDUP_FLOOR {
            failures.push(format!(
                "caches-on speedup {speedup:.2}x below the {SPEEDUP_FLOOR:.2}x floor"
            ));
        }
    }

    // The jit gates: superinstruction fusion must keep buying a 2× win
    // over the cached interpreter, and a dynamic update must not cost
    // steady-state jit throughput once the deopted code re-promotes.
    if let (Some(on), Some(jit)) = (pick(Config::CachesOn), pick(Config::JitOn)) {
        let speedup = on / jit;
        println!("jit speedup gate vs caches-on: {speedup:.2}x (floor {JIT_SPEEDUP_FLOOR:.2}x)");
        if speedup < JIT_SPEEDUP_FLOOR {
            failures.push(format!(
                "jit speedup {speedup:.2}x below the {JIT_SPEEDUP_FLOOR:.2}x floor"
            ));
        }
    }
    if let (Some(jit), Some(updated)) = (pick(Config::JitOn), pick(Config::JitOnUpdated)) {
        let delta = updated / jit - 1.0;
        println!(
            "post-update jit parity gate: {:+.1}% vs warm jit (limit +{:.0}%)",
            delta * 100.0,
            REGRESSION_LIMIT * 100.0
        );
        if delta > REGRESSION_LIMIT {
            failures.push(format!(
                "post-update jit throughput {:.1}% slower than warm jit (limit {:.0}%)",
                delta * 100.0,
                REGRESSION_LIMIT * 100.0
            ));
        }
    }
    failures
}

fn main() {
    enforce_gate_args("interpbench");
    let iters = gate_iters();
    let baseline = baseline_for_check("interpbench", "results/BENCH_interp.json");

    let mut entries = run(iters);
    eprintln!();
    print_table(&entries);

    if let Some((path, baseline)) = baseline {
        let failures = check(&mut entries, &baseline, &path, iters);
        if !failures.is_empty() {
            eprintln!("\ndispatch throughput failure(s):");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        println!("no dispatch throughput regressions.");
    } else {
        let out = arg_value("--out").unwrap_or_else(|| "BENCH_interp.json".to_string());
        std::fs::write(&out, to_json(&entries, iters).pretty() + "\n").expect("write output");
        println!("\nwrote {out}");
    }
}
