//! Regenerates the paper's **Table 1**: JVolve update pause time for
//! various heap sizes × updated-object fractions.
//!
//! Usage: `cargo run --release -p jvolve-bench --bin table1 [--full] [--scale N] [--json FILE]`
//!
//! By default object counts are the paper's divided by 8 (CI-friendly);
//! `--full` uses the paper's exact counts (280k–3.67M objects; needs a
//! few GB of RAM and several minutes).

use jvolve_bench::micro::{measure_pause, ms, paper_fractions, paper_object_counts, PauseSample};
use jvolve_bench::{arg_flag, arg_value};
use jvolve_json::Json;

fn main() {
    let scale = if arg_flag("--full") {
        1
    } else {
        arg_value("--scale").and_then(|s| s.parse().ok()).unwrap_or(8)
    };
    let counts = paper_object_counts(scale);
    let fractions = paper_fractions();

    println!("Table 1: JVolve update pause time (ms) — scale 1/{scale} of the paper's counts");
    println!("(paper: Intel Core 2 Quad 2.4 GHz, Jikes RVM; here: MJ VM, see DESIGN.md)\n");

    let mut samples: Vec<Vec<PauseSample>> = Vec::new();
    for &n in &counts {
        let mut row = Vec::new();
        for &f in &fractions {
            eprint!("\rmeasuring {n} objects, {:>3.0}% updated...", f * 100.0);
            row.push(measure_pause(n, f));
        }
        samples.push(row);
        eprintln!();
    }

    let header = |title: &str| {
        println!("\n{title}");
        print!("{:>9} {:>10}", "# objects", "heap(MB)");
        for f in &fractions {
            print!(" {:>7.0}%", f * 100.0);
        }
        println!();
    };
    let heap_mb =
        |s: &PauseSample| (s.semispace_words * 2 * 8) as f64 / (1024.0 * 1024.0);

    header("Garbage collection time (ms)");
    for row in &samples {
        print!("{:>9} {:>10.0}", row[0].objects, heap_mb(&row[0]));
        for s in row {
            print!(" {:>8}", ms(s.gc_time));
        }
        println!();
    }

    header("Running transformation functions (ms)");
    for row in &samples {
        print!("{:>9} {:>10.0}", row[0].objects, heap_mb(&row[0]));
        for s in row {
            print!(" {:>8}", ms(s.transform_time));
        }
        println!();
    }

    header("Total DSU pause time (ms)");
    for row in &samples {
        print!("{:>9} {:>10.0}", row[0].objects, heap_mb(&row[0]));
        for s in row {
            print!(" {:>8}", ms(s.total_time));
        }
        println!();
    }

    header("GC work: copied cells (thousands)");
    for row in &samples {
        print!("{:>9} {:>10.0}", row[0].objects, heap_mb(&row[0]));
        for s in row {
            print!(" {:>8.1}", s.gc_copied_cells as f64 / 1e3);
        }
        println!();
    }

    // Shape checks the paper's prose calls out.
    let largest = samples.last().expect("at least one row");
    let t0 = largest[0].total_time.as_secs_f64();
    let t100 = largest.last().expect("fractions").total_time.as_secs_f64();
    println!(
        "\nshape: total pause at 100% vs 0% updated = {:.1}x (paper: ~4x)",
        t100 / t0.max(1e-9)
    );

    if let Some(path) = arg_value("--json") {
        let json = Json::Arr(
            samples
                .iter()
                .flatten()
                .map(|s| {
                    Json::obj([
                        ("objects", Json::from(s.objects)),
                        ("fraction", Json::from(s.fraction)),
                        ("gc_ms", Json::from(s.gc_time.as_secs_f64() * 1e3)),
                        ("transform_ms", Json::from(s.transform_time.as_secs_f64() * 1e3)),
                        ("total_ms", Json::from(s.total_time.as_secs_f64() * 1e3)),
                        ("gc_copied_cells", Json::from(s.gc_copied_cells)),
                        ("gc_copied_words", Json::from(s.gc_copied_words)),
                    ])
                })
                .collect(),
        )
        .pretty();
        std::fs::write(&path, json).expect("write json");
        println!("wrote {path}");
    }
}
