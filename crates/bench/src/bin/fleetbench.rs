//! Fleet throughput and rolling-update regression harness.
//!
//! Measures the sharded serving stack's two claims:
//!
//! 1. **Scaling**: a 4-shard webserver fleet must complete a closed
//!    request batch at ≥ [`SCALING_MIN`]× the aggregate throughput of a
//!    single shard. Shards are OS threads, so this gate only runs on
//!    hosts with at least [`FLEET_GATE_MIN_CPUS`] CPUs (same skip rule
//!    as `gcbench`'s parallel-GC gate).
//! 2. **Roll integrity**: rolling the webserver 5.1.0 → 5.1.1 lazy
//!    update across a loaded 4-shard fleet must promote every shard,
//!    drop nothing, serve zero incorrect responses, keep serving *during*
//!    the roll, and leave every shard with an identical registry
//!    fingerprint. This gate is unconditional — it is the ISSUE 7
//!    zero-dropped-responses acceptance check.
//!
//! The single-shard request cost is additionally gated against the
//! committed `results/BENCH_fleet.json` like every other tier-1 bench.
//!
//! Usage (same dialect as `gcbench`/`interpbench`/`lazybench`):
//!
//! * `cargo run --release -p jvolve-bench --bin fleetbench` — measure and
//!   write `BENCH_fleet.json` (`--out FILE`; to refresh the committed
//!   baseline, `--out results/BENCH_fleet.json`).
//! * `... --bin fleetbench -- --check` — re-measure and exit nonzero if
//!   any gate fails (`--baseline FILE` overrides the baseline path).
//!   `scripts/tier1.sh` runs this. Timed gates compare *best-of-N* and
//!   re-measure with 3× iterations before declaring a failure.
//!
//! `--iters N` controls timed iterations per shard count (default 5).

use jvolve_bench::fleet::{measure_roll, measure_throughput, RollRun, ThroughputRun};
use jvolve_bench::timing::{fmt_ns, gate_best_of, Samples, REGRESSION_LIMIT};
use jvolve_bench::{arg_value, baseline_for_check, enforce_gate_args, gate_iters};
use jvolve_json::Json;

/// Shard counts measured; the first carries the baseline gate and the
/// pair carries the scaling gate.
const SHARD_POINTS: [usize; 2] = [1, 4];

/// Requests per timed batch — large enough that per-request cost
/// dominates channel round-trip and scheduling noise, small enough for a
/// tier-1 gate (a batch is a few milliseconds in release builds).
const REQUESTS: u64 = 2000;

/// A 4-shard fleet must reach at least this aggregate speedup over one
/// shard (ISSUE 7 acceptance: ≥ 2×).
const SCALING_MIN: f64 = 2.0;

/// Shards are OS threads: below this CPU count the scaling gate measures
/// the scheduler, not the fleet, so it is skipped (gcbench's rule).
const FLEET_GATE_MIN_CPUS: usize = 4;

struct Entry {
    shards: usize,
    /// Best-of-N. The check gates compare this, not the median.
    ns_per_request_min: f64,
    ns_per_request_median: f64,
}

/// Best-of-`iters` timed batches at one shard count. Every run boots a
/// fresh fleet, so iterations are independent; any incorrect response
/// fails immediately (throughput of wrong answers is not throughput).
fn best_of(shards: usize, iters: usize) -> Samples {
    let mut per_request = Vec::with_capacity(iters);
    for _ in 0..iters {
        let run: ThroughputRun = measure_throughput(shards, REQUESTS);
        assert_eq!(run.incorrect, 0, "fleet served incorrect responses while measuring");
        per_request.push(run.ns_per_request() as u64);
    }
    Samples::from_ns(per_request)
}

fn measure(iters: usize) -> (Vec<Entry>, RollRun) {
    let mut entries = Vec::new();
    for &shards in &SHARD_POINTS {
        eprint!("\rmeasuring {shards} shard(s)...        ");
        let samples = best_of(shards, iters);
        entries.push(Entry {
            shards,
            ns_per_request_min: samples.min_ns() as f64,
            ns_per_request_median: samples.median_ns() as f64,
        });
    }
    eprint!("\rmeasuring rolling update...        ");
    let roll = measure_roll(*SHARD_POINTS.last().expect("shard points"));
    eprintln!();
    (entries, roll)
}

/// Aggregate throughput speedup of the largest point over one shard.
fn scaling(entries: &[Entry]) -> f64 {
    entries[0].ns_per_request_min / entries.last().expect("entries").ns_per_request_min
}

fn to_json(entries: &[Entry], roll: &RollRun, iters: usize, cpus: usize) -> Json {
    Json::obj([
        ("schema", Json::from("jvolve-fleetbench-v1")),
        ("iters", Json::from(iters)),
        ("requests", Json::from(REQUESTS)),
        ("cpus", Json::from(cpus)),
        (
            "entries",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("shards", Json::from(e.shards)),
                            ("ns_per_request_min", Json::from(e.ns_per_request_min)),
                            ("ns_per_request_median", Json::from(e.ns_per_request_median)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("scaling_x", Json::from(scaling(entries))),
        (
            "roll",
            Json::obj([
                ("shards", Json::from(roll.shards)),
                ("promoted", Json::from(roll.promoted)),
                ("rolled_back", Json::from(roll.rolled_back)),
                ("mid_roll_responses", Json::from(roll.mid_roll_responses)),
                ("dropped", Json::from(roll.dropped)),
                ("incorrect", Json::from(roll.incorrect)),
                ("fingerprints_converged", Json::from(roll.converged)),
            ]),
        ),
    ])
}

fn baseline_single_shard_ns(baseline: &Json) -> Option<f64> {
    baseline.get("entries")?.as_arr()?.iter().find_map(|e| {
        (e.get("shards")?.as_u64()? == 1)
            .then(|| e.get("ns_per_request_min")?.as_f64())
            .flatten()
    })
}

fn print_table(entries: &[Entry], roll: &RollRun) {
    println!("{:>7} {:>16} {:>16}", "shards", "ns/req (min)", "ns/req (median)");
    for e in entries {
        println!(
            "{:>7} {:>16} {:>16}",
            e.shards,
            fmt_ns(e.ns_per_request_min as u64),
            fmt_ns(e.ns_per_request_median as u64)
        );
    }
    println!("aggregate scaling at {} shards: {:.2}x", SHARD_POINTS[1], scaling(entries));
    println!(
        "rolling lazy update across {} shards: {} promoted, {} mid-roll responses, \
         {} dropped, {} incorrect, fingerprints {}{}",
        roll.shards,
        roll.promoted,
        roll.mid_roll_responses,
        roll.dropped,
        roll.incorrect,
        if roll.converged { "converged" } else { "DIVERGED" },
        if roll.rolled_back { " [ROLLED BACK]" } else { "" },
    );
}

fn check(entries: &[Entry], roll: &RollRun, baseline: &Json, path: &str, iters: usize) -> Vec<String> {
    let mut failures = Vec::new();

    // Gate 2 (unconditional): roll integrity. No timing, no retry — a
    // dropped or incorrect response is a correctness bug at any speed.
    println!("\nroll integrity gate ({} shards):", roll.shards);
    let checks: [(&str, bool); 5] = [
        ("every shard promoted", !roll.rolled_back && roll.promoted == roll.shards),
        ("zero dropped responses", roll.dropped == 0),
        ("zero incorrect responses", roll.incorrect == 0),
        ("served during the roll", roll.mid_roll_responses > 0),
        ("registry fingerprints converged", roll.converged),
    ];
    for (what, ok) in checks {
        println!("  {} {}", if ok { "ok  " } else { "FAIL" }, what);
        if !ok {
            failures.push(format!("roll integrity: {what}"));
        }
    }

    // Baseline gate: single-shard request cost vs the committed numbers.
    println!("\nregression check vs {path} (limit +{:.0}%):", REGRESSION_LIMIT * 100.0);
    match baseline_single_shard_ns(baseline) {
        None => println!("  1 shard: no baseline entry — skipped"),
        Some(base) => {
            let g = gate_best_of(entries[0].ns_per_request_min, base, || {
                best_of(1, iters * 3).min_ns() as f64
            });
            println!(
                "  1 shard: ns/request {:>9} -> {:>9} ({:>+6.1}%) {}",
                fmt_ns(base as u64),
                fmt_ns(g.current as u64),
                g.delta * 100.0,
                g.verdict(),
            );
            if g.regressed() {
                failures.push(format!(
                    "single-shard request cost: {:.0} -> {:.0} ns",
                    base, g.current
                ));
            }
        }
    }

    // Gate 1: aggregate scaling — only meaningful with real parallelism.
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cpus < FLEET_GATE_MIN_CPUS {
        println!(
            "\nscaling gate skipped: host has {cpus} CPU(s), gate needs {FLEET_GATE_MIN_CPUS} \
             (shards are OS threads; below that the gate measures the scheduler)"
        );
    } else {
        let mut one = entries[0].ns_per_request_min;
        let mut four = entries.last().expect("entries").ns_per_request_min;
        let mut speedup = one / four;
        if speedup < SCALING_MIN {
            one = one.min(best_of(SHARD_POINTS[0], iters * 3).min_ns() as f64);
            four = four.min(best_of(SHARD_POINTS[1], iters * 3).min_ns() as f64);
            speedup = one / four;
        }
        println!(
            "\nscaling gate: {} vs {} per request = {:.2}x at {} shards (limit {:.1}x)",
            fmt_ns(one as u64),
            fmt_ns(four as u64),
            speedup,
            SHARD_POINTS[1],
            SCALING_MIN,
        );
        if speedup < SCALING_MIN {
            failures.push(format!(
                "aggregate throughput scaled {:.2}x at {} shards (limit {:.1}x)",
                speedup, SHARD_POINTS[1], SCALING_MIN
            ));
        }
    }
    failures
}

fn main() {
    enforce_gate_args("fleetbench");
    let iters = gate_iters();
    let baseline = baseline_for_check("fleetbench", "results/BENCH_fleet.json");
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let (entries, roll) = measure(iters);
    print_table(&entries, &roll);

    if let Some((path, baseline)) = baseline {
        let failures = check(&entries, &roll, &baseline, &path, iters);
        if !failures.is_empty() {
            eprintln!("\nfleet gate failure(s):");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        println!("no fleet regressions.");
    } else {
        let out = arg_value("--out").unwrap_or_else(|| "BENCH_fleet.json".to_string());
        std::fs::write(&out, to_json(&entries, &roll, iters, cpus).pretty() + "\n")
            .expect("write output");
        println!("\nwrote {out}");
    }
}
