//! Regenerates the paper's **Figure 5**: webserver throughput and latency
//! under saturating load for the stock VM, the DSU-capable VM with the
//! template-JIT tier off and on, and the DSU-capable VM after a dynamic
//! 5.1.5 → 5.1.6 update.
//!
//! Usage: `cargo run --release -p jvolve-bench --bin fig5 [--runs N] [--slices N]`
//! (paper: 21 runs of 60 s; default here: 5 runs of 20k slices)

use jvolve_bench::arg_value;
use jvolve_bench::fig5::{run_config, Config};

fn main() {
    let runs: usize = arg_value("--runs").and_then(|s| s.parse().ok()).unwrap_or(5);
    let slices: u64 = arg_value("--slices").and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let concurrency = 8;

    println!(
        "Figure 5: webserver 5.1.6 under saturating load ({runs} runs x {slices} slices, \
         concurrency {concurrency})\n"
    );
    println!(
        "{:<22} {:>12} {:>17} {:>12} {:>17} {:>10} {:>6}",
        "Config.", "Tput (r/ks)", "quartiles", "Lat (slices)", "quartiles", "IC hits", "jits"
    );

    let mut rows = Vec::new();
    for config in Config::all() {
        eprintln!("measuring {} ...", config.label());
        let row = run_config(config, runs, concurrency, slices);
        println!(
            "{:<22} {:>12.2} {:>7.2}/{:>7.2}  {:>12.1} {:>7.1}/{:>7.1} {:>9.1}% {:>6}",
            config.label(),
            row.throughput_median,
            row.throughput_quartiles.0,
            row.throughput_quartiles.1,
            row.latency_median,
            row.latency_quartiles.0,
            row.latency_quartiles.1,
            row.ic_hit_rate * 100.0,
            row.jit_compiles
        );
        rows.push(row);
    }

    let tput = |c: Config| {
        rows.iter()
            .find(|r| r.config == c)
            .map(|r| r.throughput_median)
            .expect("config measured")
            .max(1e-9)
    };
    println!(
        "\nshape: updated/stock throughput = {:.3} (paper: essentially identical; \
         inter-quartile ranges largely overlap)",
        tput(Config::JvolveUpdated) / tput(Config::Stock)
    );
    println!(
        "shape: updated/jit throughput = {:.3} (post-update steady state must \
         recover the jit tier)",
        tput(Config::JvolveUpdated) / tput(Config::Jvolve)
    );

    // Post-update warm-up: invalidated methods re-baseline on first call,
    // then the adaptive system re-optimizes the hot ones (paper §3.3).
    println!("\npost-update warm-up (adaptive recompilation):");
    println!(
        "{:>8} {:>14} {:>14} {:>13} {:>13}",
        "window", "tput (r/ks)", "base compiles", "opt compiles", "jit compiles"
    );
    for w in jvolve_bench::fig5::warmup_series(5, 2_000, concurrency) {
        println!(
            "{:>8} {:>14.1} {:>14} {:>13} {:>13}",
            w.window, w.throughput, w.base_compiles, w.opt_compiles, w.jit_compiles
        );
    }
}
