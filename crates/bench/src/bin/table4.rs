//! Regenerates the paper's **Table 4**: summary of updates to the
//! ftpserver (CrossFTP), including the busy-vs-idle behaviour of the
//! 1.07 → 1.08 update (paper §4.4).
//!
//! Usage: `cargo run --release -p jvolve-bench --bin table4 [--static]`

use jvolve::UpdateOutcome;
use jvolve_apps::harness::{attempt_update, bench_apply_options, boot};
use jvolve_apps::Ftpserver;
use jvolve_bench::arg_flag;
use jvolve_bench::tables::{render_table, run_table, summarize_releases};

fn main() {
    let rows = if arg_flag("--static") {
        summarize_releases(&Ftpserver)
    } else {
        run_table(&Ftpserver)
    };
    println!("{}", render_table("ftpserver (CrossFTP, paper Table 4)", &rows));
    println!("paper: all 3 updates supported; every update adds/deletes fields,");
    println!("so method-body-only systems support none of them.");

    if !arg_flag("--static") {
        // The §4.4 experiment: 1.08 under load vs idle.
        println!("\n1.07 -> 1.08 with an active session (RequestHandler.run on stack):");
        let app = Ftpserver;
        let mut vm = boot(&app, 2);
        let conn = vm.net_mut().client_connect(2121).expect("ftp listening");
        vm.net_mut().client_send(conn, "USER admin adminpw");
        for _ in 0..2_000 {
            vm.step_slice();
            if vm.net_mut().client_recv(conn).is_some() {
                break;
            }
        }
        let (busy, _) = attempt_update(&mut vm, &app, 2, &bench_apply_options());
        println!("  busy: {busy}");
        assert!(matches!(busy, UpdateOutcome::TimedOut { .. }));

        vm.net_mut().client_send(conn, "QUIT");
        for _ in 0..2_000 {
            vm.step_slice();
            if vm.net_mut().client_recv(conn).is_some() {
                break;
            }
        }
        vm.net_mut().client_close(conn);
        vm.run_slices(300);
        let (idle, _) = attempt_update(&mut vm, &app, 2, &bench_apply_options());
        println!("  idle: {idle}");
        println!("(paper: \"JVolve could only apply the update from 1.07 to 1.08 when the");
        println!(" server was relatively idle\")");
    }
}
