//! Regenerates the paper's **Figure 6**: microbenchmark pause times at
//! the largest configuration, as three series (GC time, transformer time,
//! total) over the updated fraction.
//!
//! Usage: `cargo run --release -p jvolve-bench --bin fig6 [--full] [--scale N]`

use jvolve_bench::micro::{measure_pause, paper_fractions, paper_object_counts};
use jvolve_bench::{arg_flag, arg_value};

fn main() {
    let scale = if arg_flag("--full") {
        1
    } else {
        arg_value("--scale").and_then(|s| s.parse().ok()).unwrap_or(8)
    };
    let objects = *paper_object_counts(scale).last().expect("counts");

    println!("Figure 6: pause times with {objects} objects (paper: 3.67M in a 1280 MB heap)\n");
    println!(
        "{:>9} {:>12} {:>14} {:>12} {:>14}",
        "updated%", "GC (ms)", "transform (ms)", "total (ms)", "copied cells"
    );

    let mut gc = Vec::new();
    let mut tf = Vec::new();
    for f in paper_fractions() {
        let s = measure_pause(objects, f);
        println!(
            "{:>8.0}% {:>12.1} {:>14.1} {:>12.1} {:>14}",
            f * 100.0,
            s.gc_time.as_secs_f64() * 1e3,
            s.transform_time.as_secs_f64() * 1e3,
            s.total_time.as_secs_f64() * 1e3,
            s.gc_copied_cells
        );
        gc.push(s.gc_time.as_secs_f64());
        tf.push(s.transform_time.as_secs_f64());
    }

    // The paper's observation: "The Running Transformers line is steeper
    // than the GC time line."
    let gc_slope = gc.last().expect("gc") - gc.first().expect("gc");
    let tf_slope = tf.last().expect("tf") - tf.first().expect("tf");
    println!(
        "\nshape: transformer slope {:.1} ms vs GC slope {:.1} ms over 0-100% \
         (paper: transformer line steeper)",
        tf_slope * 1e3,
        gc_slope * 1e3
    );
}
