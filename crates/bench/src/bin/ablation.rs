//! Ablation harness: the design-choice comparisons DESIGN.md §5 calls out.
//!
//! * eager (GC-time) vs lazy (access-time, JDrums/DVM-style) updating —
//!   steady-state throughput with and without per-access indirection
//!   checks (the paper's "zero overhead during steady-state execution" vs
//!   ~10% for DVM, §5);
//! * the §3.2 safe-point machinery (return barriers + OSR) on vs off;
//! * the template-JIT tier on vs off, warm and after a dynamic update —
//!   DSU must cost nothing even when hot loops run superinstruction-fused
//!   code with baked-in offsets.
//!
//! Usage: `cargo run --release -p jvolve-bench --bin ablation`

use jvolve_bench::ablation::safepoint_ablation;


fn main() {

    println!("== Ablation 1: eager vs lazy-indirection DSU (steady state) ==\n");
    // CPU-bound guest workload (field accesses + virtual dispatch), timed
    // by wall clock; interleaved rounds, medians.
    use jvolve_bench::ablation::{churn_wall_time, ChurnMode};
    let rounds = 5;
    let (nodes, iters) = (400, 4_000);
    let mut results: Vec<(ChurnMode, &str, Vec<f64>)> = vec![
        (ChurnMode::Eager, "eager (JVolve), no update", Vec::new()),
        (ChurnMode::EagerUpdated, "eager (JVolve), after GC update", Vec::new()),
        (ChurnMode::Lazy, "lazy indirection, no update", Vec::new()),
        (ChurnMode::LazyUpdated, "lazy indirection, after lazy update", Vec::new()),
    ];
    let mut checksum = None;
    let _ = churn_wall_time(ChurnMode::Eager, nodes, iters); // process warm-up
    for round in 0..rounds {
        eprintln!("round {}/{rounds} ...", round + 1);
        for (mode, _, samples) in &mut results {
            let (wall, sum) = churn_wall_time(*mode, nodes, iters);
            match checksum {
                None => checksum = Some(sum),
                Some(c) => assert_eq!(c, sum, "all modes must compute the same result"),
            }
            samples.push(wall.as_secs_f64());
        }
    }
    let median = |xs: &mut Vec<f64>| {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        xs[xs.len() / 2]
    };
    let mut base = 0.0;
    println!("{:<38} {:>12} {:>10}", "mode", "time (ms)", "vs eager");
    for (i, (_, name, samples)) in results.iter_mut().enumerate() {
        let med = median(samples);
        if i == 0 {
            base = med;
        }
        println!(
            "{:<38} {:>12.1} {:>9.1}%",
            name,
            med * 1e3,
            (med / base - 1.0) * 100.0
        );
    }
    println!("(median of {rounds} interleaved rounds; {nodes}-node list x {iters} traversals)");
    println!(
        "\n(paper \u{a7}5: eager updating imposes no steady-state overhead; \
         indirection-based lazy systems pay on every access \u{2014} ~10% for DVM)"
    );

    println!("\n== Ablation 2: template-JIT tier (superinstruction fusion) ==\n");
    // Same churn, eager mode, jit axis: off, warm on, and on after a
    // GC-based update (deopted fused code must re-promote and recover).
    use jvolve_bench::ablation::churn_wall_time_with_jit;
    let mut jit_rows: Vec<(ChurnMode, bool, &str, Vec<f64>)> = vec![
        (ChurnMode::Eager, false, "jit off (cached interpreter)", Vec::new()),
        (ChurnMode::Eager, true, "jit on, warm", Vec::new()),
        (ChurnMode::EagerUpdated, true, "jit on, after GC update", Vec::new()),
    ];
    for round in 0..rounds {
        eprintln!("jit round {}/{rounds} ...", round + 1);
        for (mode, jit, _, samples) in &mut jit_rows {
            let (wall, sum) = churn_wall_time_with_jit(*mode, nodes, iters, *jit);
            assert_eq!(checksum, Some(sum), "jit must not change the churn result");
            samples.push(wall.as_secs_f64());
        }
    }
    let mut no_jit = 0.0;
    println!("{:<38} {:>12} {:>10}", "mode", "time (ms)", "vs no-jit");
    for (i, (_, _, name, samples)) in jit_rows.iter_mut().enumerate() {
        let med = median(samples);
        if i == 0 {
            no_jit = med;
        }
        println!("{:<38} {:>12.1} {:>9.1}%", name, med * 1e3, (med / no_jit - 1.0) * 100.0);
    }
    println!(
        "\n(fused code embeds resolved offsets and call targets; the update deopts it \
         at the epoch bump\n and the counters re-promote it — post-update steady state \
         must track the warm-jit row)"
    );

    println!("\n== Ablation 3: safe-point machinery (return barriers + OSR) ==\n");
    let sp = safepoint_ablation();
    println!(
        "with barriers + OSR:   {}",
        sp.with_machinery
            .map_or("TIMED OUT".to_string(), |s| format!("safe point after {s} slices"))
    );
    println!(
        "without barriers:      {}",
        sp.without_barriers
            .map_or("TIMED OUT".to_string(), |s| format!("safe point after {s} slices"))
    );
    println!(
        "without OSR:           {}",
        if sp.without_osr_applied { "applied (unexpected)" } else { "TIMED OUT (category-2 frame never leaves the stack)" }
    );
    println!("\n(paper §3.2: OSR lifts category-2 restrictions; return barriers speed up");
    println!(" reaching a safe point when changed methods are on stack)");
}
