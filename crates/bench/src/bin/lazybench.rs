//! Lazy-migration pause and steady-state regression harness.
//!
//! Measures the tentpole claim of the lazy mode at §4.1-shaped heap
//! points (the paper's object counts scaled down, 100% updated — the
//! worst case for an eager commit):
//!
//! 1. **Pause**: the lazy commit pause (safe point + install + barrier
//!    arm + class transformers, everything before the mutator is
//!    released) must be at most [`PAUSE_RATIO_LIMIT`] of the eager pause
//!    at the largest heap point — O(roots) vs O(heap).
//! 2. **Steady state**: after the epoch drains and the barrier is
//!    disarmed, a field-read spin loop must cost no more than
//!    `REGRESSION_LIMIT` over the same loop after an eager commit —
//!    the zero-steady-state-overhead half of the claim.
//! 3. **Baseline**: the lazy pause itself is gated against the committed
//!    `results/BENCH_lazy.json` like every other tier-1 bench.
//! 4. **Flatness**: the lazy pause at the largest heap point must be
//!    within [`FLATNESS_LIMIT`] of the smallest point's — with the SATB
//!    watermark arm there is no per-object work left in the pause, so it
//!    must not grow with the heap.
//!
//! Usage (same dialect as `gcbench`/`interpbench`):
//!
//! * `cargo run --release -p jvolve-bench --bin lazybench` — measure and
//!   write `BENCH_lazy.json` (`--out FILE`; to refresh the committed
//!   baseline, `--out results/BENCH_lazy.json`).
//! * `... --bin lazybench -- --check` — re-measure and exit nonzero if
//!   any gate fails (`--baseline FILE` overrides the baseline path).
//!   `scripts/tier1.sh` runs this. Gates compare *best-of-N* times and
//!   re-measure with 3× iterations before declaring a failure.
//!
//! `--iters N` controls timed iterations per configuration (default 5).

use jvolve_bench::lazy::{measure_update, UpdateRun};
use jvolve_bench::micro::paper_object_counts;
use jvolve_bench::timing::{fmt_ns, gate_best_of, Samples, REGRESSION_LIMIT};
use jvolve_bench::{arg_value, baseline_for_check, enforce_gate_args, gate_iters};
use jvolve_json::Json;

/// The lazy commit pause may cost at most this fraction of the eager
/// pause at the largest heap point.
const PAUSE_RATIO_LIMIT: f64 = 0.25;

/// The lazy commit pause at the largest §4.1 point may be at most this
/// multiple of the pause at the smallest point (a ~13× heap-size spread).
/// Heap-size-independent work (safe point, install, class transformers)
/// dominates the pause, so the ratio sits near 1; the old commit-time
/// linear heap scan put it near the heap-size spread instead.
const FLATNESS_LIMIT: f64 = 2.0;

/// Paper object counts are scaled by 1/80 (the gate must run in seconds,
/// not minutes); the largest point is still the harness's biggest heap.
const SCALE_DIV: usize = 80;

/// Every object is an instance of the updated class: the eager pause is
/// maximal and the lazy drain does the most possible deferred work.
const FRACTION: f64 = 1.0;

/// Spin-loop iterations per steady-state measurement (three field reads
/// and an array load each).
const SPIN_ITERS: i64 = 200_000;

struct Entry {
    objects: usize,
    eager_pause_ns: f64,
    eager_pause_min_ns: f64,
    lazy_pause_ns: f64,
    /// Best-of-N. The check gates compare this, not the median.
    lazy_pause_min_ns: f64,
    /// Best-of-N barrier-arm portion of the lazy pause (the entire
    /// in-pause heap cost; recorded for the O(roots) story).
    arm_min_ns: f64,
    lazy_drain_ns: f64,
    steady_eager_min_ns_per_op: f64,
    steady_lazy_min_ns_per_op: f64,
    transformed: usize,
}

impl Entry {
    /// Best-of-N lazy pause as a fraction of best-of-N eager pause.
    fn pause_ratio(&self) -> f64 {
        self.lazy_pause_min_ns / self.eager_pause_min_ns
    }
}

/// Best-of-`iters` runs of one configuration in one mode (warmup first;
/// each run builds a fresh VM, so iterations are independent).
fn best_of(objects: usize, lazy: bool, iters: usize) -> (Samples, Vec<f64>, Samples, UpdateRun) {
    measure_update(objects, FRACTION, lazy, SPIN_ITERS);
    let mut pause = Vec::with_capacity(iters);
    let mut steady = Vec::with_capacity(iters);
    let mut arm = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let r = measure_update(objects, FRACTION, lazy, SPIN_ITERS);
        pause.push(r.pause_ns);
        steady.push(r.steady_ns_per_op);
        arm.push(r.arm_ns);
        last = Some(r);
    }
    steady.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    (Samples::from_ns(pause), steady, Samples::from_ns(arm), last.expect("at least one iteration"))
}

fn measure(iters: usize) -> Vec<Entry> {
    // First and last scaled §4.1 points: the small one shows the scan is
    // cheap even when the heap is, the large one carries the gates.
    let counts = paper_object_counts(SCALE_DIV);
    let points = [counts[0], *counts.last().expect("paper counts")];
    let mut entries = Vec::new();
    for &objects in &points {
        eprint!("\rmeasuring {objects} objects, eager...        ");
        let (eager_pause, eager_steady, _, eager_last) = best_of(objects, false, iters);
        eprint!("\rmeasuring {objects} objects, lazy...         ");
        let (lazy_pause, lazy_steady, lazy_arm, lazy_last) = best_of(objects, true, iters);
        assert_eq!(
            eager_last.spin_result, lazy_last.spin_result,
            "modes disagree on the heap contents"
        );
        entries.push(Entry {
            objects,
            eager_pause_ns: eager_pause.median_ns() as f64,
            eager_pause_min_ns: eager_pause.min_ns() as f64,
            lazy_pause_ns: lazy_pause.median_ns() as f64,
            lazy_pause_min_ns: lazy_pause.min_ns() as f64,
            arm_min_ns: lazy_arm.min_ns() as f64,
            lazy_drain_ns: lazy_last.drain_ns as f64,
            steady_eager_min_ns_per_op: eager_steady[0],
            steady_lazy_min_ns_per_op: lazy_steady[0],
            transformed: lazy_last.transformed,
        });
    }
    eprintln!();
    entries
}

fn to_json(entries: &[Entry], iters: usize) -> Json {
    Json::obj([
        ("schema", Json::from("jvolve-lazybench-v2")),
        ("iters", Json::from(iters)),
        ("spin_iters", Json::from(SPIN_ITERS as f64)),
        (
            "entries",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("objects", Json::from(e.objects)),
                            ("fraction", Json::from(FRACTION)),
                            ("eager_pause_ns", Json::from(e.eager_pause_ns)),
                            ("eager_pause_min_ns", Json::from(e.eager_pause_min_ns)),
                            ("lazy_pause_ns", Json::from(e.lazy_pause_ns)),
                            ("lazy_pause_min_ns", Json::from(e.lazy_pause_min_ns)),
                            ("arm_min_ns", Json::from(e.arm_min_ns)),
                            ("pause_ratio", Json::from(e.pause_ratio())),
                            ("lazy_drain_ns", Json::from(e.lazy_drain_ns)),
                            (
                                "steady_eager_min_ns_per_op",
                                Json::from(e.steady_eager_min_ns_per_op),
                            ),
                            (
                                "steady_lazy_min_ns_per_op",
                                Json::from(e.steady_lazy_min_ns_per_op),
                            ),
                            ("transformed", Json::from(e.transformed)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn baseline_lazy_pause_ns(baseline: &Json, objects: usize) -> Option<f64> {
    baseline.get("entries")?.as_arr()?.iter().find_map(|e| {
        (e.get("objects")?.as_u64()? as usize == objects)
            .then(|| e.get("lazy_pause_min_ns")?.as_f64())
            .flatten()
    })
}

fn print_table(entries: &[Entry]) {
    println!(
        "{:>9} {:>14} {:>14} {:>8} {:>10} {:>13} {:>16} {:>15}",
        "objects", "eager pause", "lazy pause", "ratio", "arm", "lazy drain", "steady eager/op",
        "steady lazy/op"
    );
    for e in entries {
        println!(
            "{:>9} {:>14} {:>14} {:>7.1}% {:>10} {:>13} {:>16.1} {:>15.1}",
            e.objects,
            fmt_ns(e.eager_pause_ns as u64),
            fmt_ns(e.lazy_pause_ns as u64),
            e.pause_ratio() * 100.0,
            fmt_ns(e.arm_min_ns as u64),
            fmt_ns(e.lazy_drain_ns as u64),
            e.steady_eager_min_ns_per_op,
            e.steady_lazy_min_ns_per_op,
        );
    }
}

/// Best-of-`iters` lazy pause for the retry path.
fn retry_lazy_pause_ns(objects: usize, iters: usize) -> f64 {
    best_of(objects, true, iters).0.min_ns() as f64
}

fn check(entries: &[Entry], baseline: &Json, path: &str, iters: usize) -> Vec<String> {
    let mut failures = Vec::new();

    // Gate 3: the lazy pause vs the committed baseline, every point.
    println!("\nregression check vs {path} (limit +{:.0}%):", REGRESSION_LIMIT * 100.0);
    for e in entries {
        let Some(base) = baseline_lazy_pause_ns(baseline, e.objects) else {
            println!("  {:>7} objects: no baseline entry — skipped", e.objects);
            continue;
        };
        let g = gate_best_of(e.lazy_pause_min_ns, base, || {
            retry_lazy_pause_ns(e.objects, iters * 3)
        });
        println!(
            "  {:>7} objects: lazy pause {:>9} -> {:>9} ({:>+6.1}%) {}",
            e.objects,
            fmt_ns(base as u64),
            fmt_ns(g.current as u64),
            g.delta * 100.0,
            g.verdict(),
        );
        if g.regressed() {
            failures.push(format!(
                "lazy pause at {} objects: {:.0} -> {:.0} ns",
                e.objects, base, g.current
            ));
        }
    }

    let largest = entries.last().expect("at least one entry");

    // Gate 1: the pause contract at the largest heap point. A tripped
    // gate re-measures both modes with 3× iterations before failing.
    let mut lazy_min = largest.lazy_pause_min_ns;
    let mut eager_min = largest.eager_pause_min_ns;
    let mut ratio = lazy_min / eager_min;
    if ratio > PAUSE_RATIO_LIMIT {
        lazy_min = lazy_min.min(retry_lazy_pause_ns(largest.objects, iters * 3));
        eager_min = eager_min.min(best_of(largest.objects, false, iters * 3).0.min_ns() as f64);
        ratio = lazy_min / eager_min;
    }
    println!(
        "\npause gate ({} objects): lazy {} / eager {} = {:.1}% (limit {:.0}%)",
        largest.objects,
        fmt_ns(lazy_min as u64),
        fmt_ns(eager_min as u64),
        ratio * 100.0,
        PAUSE_RATIO_LIMIT * 100.0,
    );
    if ratio > PAUSE_RATIO_LIMIT {
        failures.push(format!(
            "lazy pause is {:.1}% of eager at {} objects (limit {:.0}%)",
            ratio * 100.0,
            largest.objects,
            PAUSE_RATIO_LIMIT * 100.0
        ));
    }

    // Gate 4: pause flatness across heap sizes. The smallest and largest
    // §4.1 points differ ~13× in heap size; an O(roots) pause must stay
    // within FLATNESS_LIMIT. A tripped gate re-measures both points with
    // 3× iterations before failing (commit pauses are microseconds, so
    // scheduling noise needs the retry).
    let smallest = entries.first().expect("at least one entry");
    let mut small_min = smallest.lazy_pause_min_ns;
    let mut large_min = largest.lazy_pause_min_ns;
    let mut flatness = large_min / small_min;
    if flatness > FLATNESS_LIMIT {
        small_min = small_min.min(retry_lazy_pause_ns(smallest.objects, iters * 3));
        large_min = large_min.min(retry_lazy_pause_ns(largest.objects, iters * 3));
        flatness = large_min / small_min;
    }
    println!(
        "flatness gate: lazy pause {} at {} objects vs {} at {} objects = {:.2}x (limit {:.1}x)",
        fmt_ns(large_min as u64),
        largest.objects,
        fmt_ns(small_min as u64),
        smallest.objects,
        flatness,
        FLATNESS_LIMIT,
    );
    if flatness > FLATNESS_LIMIT {
        failures.push(format!(
            "lazy pause grew {:.2}x from {} to {} objects (limit {:.1}x): the commit \
             pause is not heap-size independent",
            flatness, smallest.objects, largest.objects, FLATNESS_LIMIT
        ));
    }

    // Gate 2: zero steady-state overhead once the epoch has drained.
    let g = gate_best_of(
        largest.steady_lazy_min_ns_per_op,
        largest.steady_eager_min_ns_per_op,
        || best_of(largest.objects, true, iters * 3).1[0],
    );
    println!(
        "steady-state gate ({} objects): eager {:.1} -> lazy {:.1} ns/op ({:+.1}%) {}",
        largest.objects,
        largest.steady_eager_min_ns_per_op,
        g.current,
        g.delta * 100.0,
        g.verdict(),
    );
    if g.regressed() {
        failures.push(format!(
            "post-drain steady state {:.1}% over eager at {} objects",
            g.delta * 100.0,
            largest.objects
        ));
    }
    failures
}

fn main() {
    enforce_gate_args("lazybench");
    let iters = gate_iters();
    let baseline = baseline_for_check("lazybench", "results/BENCH_lazy.json");

    let entries = measure(iters);
    print_table(&entries);

    if let Some((path, baseline)) = baseline {
        let failures = check(&entries, &baseline, &path, iters);
        if !failures.is_empty() {
            eprintln!("\nlazy migration gate failure(s):");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        println!("no lazy migration regressions.");
    } else {
        let out = arg_value("--out").unwrap_or_else(|| "BENCH_lazy.json".to_string());
        std::fs::write(&out, to_json(&entries, iters).pretty() + "\n").expect("write output");
        println!("\nwrote {out}");
    }
}
