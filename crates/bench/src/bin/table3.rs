//! Regenerates the paper's **Table 3**: summary of updates to the
//! emailserver (JavaEmailServer), with live-update outcomes per release.
//!
//! Usage: `cargo run --release -p jvolve-bench --bin table3 [--static]`

use jvolve_apps::Emailserver;
use jvolve_bench::arg_flag;
use jvolve_bench::tables::{render_table, run_table, summarize_releases};

fn main() {
    let rows = if arg_flag("--static") {
        summarize_releases(&Emailserver)
    } else {
        run_table(&Emailserver)
    };
    println!("{}", render_table("emailserver (JavaEmailServer, paper Table 3)", &rows));
    println!("paper: 9 updates, 1.3 unsupported (always-active processing loops);");
    println!("1.2.3/1.3.2 proceed via OSR of the always-running run() methods.");
}
