//! The paper's §4.1 microbenchmark (Table 1 and Figure 6).
//!
//! "The microbenchmark has two simple classes, Change and NoChange. Both
//! contain three integer fields, and three reference fields that are
//! always null. The update adds an integer field to Change. The
//! user-provided object transformation function copies the existing
//! fields and initializes the new field to zero. We measure the cost of
//! performing an update while varying the total number of objects and the
//! fraction of objects of each type."

use std::time::Duration;

use jvolve::{ApplyOptions, MemorySink, Update, UpdateController, UpdateEvent};
use jvolve_vm::{Value, Vm, VmConfig};

/// Guest classes for the microbenchmark (old version).
pub const MICRO_V1: &str = "
class Change {
  field a: int; field b: int; field c: int;
  field x: Object; field y: Object; field z: Object;
}
class NoChange {
  field a: int; field b: int; field c: int;
  field x: Object; field y: Object; field z: Object;
}
";

/// New version: `Change` gains an integer field.
pub const MICRO_V2: &str = "
class Change {
  field a: int; field b: int; field c: int; field w: int;
  field x: Object; field y: Object; field z: Object;
}
class NoChange {
  field a: int; field b: int; field c: int;
  field x: Object; field y: Object; field z: Object;
}
";

/// One Table 1 cell.
#[derive(Debug, Clone)]
pub struct PauseSample {
    /// Total live objects.
    pub objects: usize,
    /// Fraction of objects whose class is updated (0.0–1.0).
    pub fraction: f64,
    /// Semispace words the VM was configured with.
    pub semispace_words: usize,
    /// Update-GC time (Table 1's first group).
    pub gc_time: Duration,
    /// Transformer-execution time (second group).
    pub transform_time: Duration,
    /// Total update pause (third group).
    pub total_time: Duration,
    /// Sum of the four timed phases (the stacked bars of Figure 6).
    pub phase_sum: Duration,
    /// Objects actually transformed.
    pub transformed: usize,
    /// Cells the update GC copied (duplicated objects count twice).
    pub gc_copied_cells: usize,
    /// Words the update GC copied, headers included.
    pub gc_copied_words: usize,
}

/// Runs one microbenchmark configuration: `objects` live objects, a
/// `fraction` of which are instances of the updated class, on the serial
/// (single-worker) collector — the paper's configuration, and the one
/// `table1`/`fig6` report.
///
/// # Panics
///
/// Panics on fixture errors (the microbenchmark classes always compile
/// and the update always applies).
pub fn measure_pause(objects: usize, fraction: f64) -> PauseSample {
    measure_pause_threads(objects, fraction, 1)
}

/// [`measure_pause`] with an explicit GC worker count (`gcbench`'s
/// threads axis). Any worker count yields the same transformed counts,
/// copied cells/words, and post-update heap — only the timings move.
///
/// # Panics
///
/// Panics on fixture errors, like [`measure_pause`].
pub fn measure_pause_threads(objects: usize, fraction: f64, gc_threads: usize) -> PauseSample {
    // Size the heap generously (the paper uses 5x the minimum): live data
    // is ~7 words per object; the update GC additionally materializes an
    // old copy (7 words) and a new object (8 words) per updated object.
    let per_object = 8 + 1;
    let semispace_words = (objects * per_object * 3).max(64 * 1024);
    let mut vm = Vm::new(VmConfig { semispace_words, gc_threads, ..VmConfig::default() });

    let old = jvolve_lang::compile(MICRO_V1).expect("micro v1 compiles");
    let new = jvolve_lang::compile(MICRO_V2).expect("micro v2 compiles");
    vm.load_classes(&old).expect("micro classes load");

    let n_change = (objects as f64 * fraction).round() as usize;
    for i in 0..objects {
        let class = if i < n_change { "Change" } else { "NoChange" };
        let root = vm.host_alloc(class).expect("population fits");
        let r = vm.host_root(root);
        vm.write_field(r, "a", Value::Int(i as i64));
        vm.write_field(r, "b", Value::Int(2 * i as i64));
        vm.write_field(r, "c", Value::Int(3 * i as i64));
    }

    let update = Update::prepare(&old, &new, "v1_").expect("non-empty update");
    let mut events = MemorySink::default();
    let mut controller = UpdateController::new(&update, ApplyOptions::default());
    controller.attach_sink(&mut events);
    let stats = controller.run_to_completion(&mut vm).expect("update applies");

    // Sanity: transformed objects kept their fields and gained w = 0.
    if objects > 0 && n_change > 0 {
        let r = vm.host_root(0);
        assert_eq!(vm.read_field(r, "a"), Value::Int(0));
        assert_eq!(vm.read_field(r, "w"), Value::Int(0));
    }

    // The GC and transformer outcomes come from the controller's typed
    // event stream; the aggregate stats must agree with them (this keeps
    // the default stats sink honest).
    let mut transformed = 0;
    let mut gc_copied_cells = 0;
    let mut gc_copied_words = 0;
    for event in &events.events {
        match *event {
            UpdateEvent::GcCompleted { copied_cells, copied_words, .. } => {
                gc_copied_cells = copied_cells;
                gc_copied_words = copied_words;
            }
            UpdateEvent::TransformersRun { objects_transformed } => {
                transformed = objects_transformed;
            }
            _ => {}
        }
    }
    assert_eq!(transformed, stats.objects_transformed, "event stream and stats disagree");
    assert_eq!(gc_copied_cells, stats.gc_copied_cells, "event stream and stats disagree");
    assert_eq!(gc_copied_words, stats.gc_copied_words, "event stream and stats disagree");

    PauseSample {
        objects,
        fraction,
        semispace_words,
        gc_time: stats.gc_time,
        transform_time: stats.transform_time,
        total_time: stats.total_time,
        phase_sum: stats.phase_sum(),
        transformed,
        gc_copied_cells,
        gc_copied_words,
    }
}

/// The paper's object counts (280k–3.67M), scaled by `1/scale_div`.
pub fn paper_object_counts(scale_div: usize) -> Vec<usize> {
    [280_000usize, 770_000, 1_760_000, 3_670_000]
        .into_iter()
        .map(|n| n / scale_div.max(1))
        .collect()
}

/// The paper's updated-object fractions: 0%, 10%, …, 100%.
pub fn paper_fractions() -> Vec<f64> {
    (0..=10).map(|p| p as f64 / 10.0).collect()
}

/// Formats a duration in fractional milliseconds, like the paper's table.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_update_transforms_expected_fraction() {
        let s = measure_pause(1_000, 0.3);
        assert_eq!(s.transformed, 300);
        assert!(s.total_time >= s.gc_time);
        assert!(s.total_time >= s.phase_sum);
        // 1000 live objects + 300 duplicates (old copy + new object each
        // replaces the single normal copy).
        assert!(s.gc_copied_cells >= 1_300, "copied {} cells", s.gc_copied_cells);
        assert!(s.gc_copied_words > s.gc_copied_cells);
    }

    #[test]
    fn zero_fraction_transforms_nothing() {
        let s = measure_pause(500, 0.0);
        assert_eq!(s.transformed, 0);
    }

    #[test]
    fn full_fraction_transforms_everything() {
        let s = measure_pause(500, 1.0);
        assert_eq!(s.transformed, 500);
    }

    #[test]
    fn threads_axis_changes_only_timings() {
        let serial = measure_pause_threads(2_000, 0.5, 1);
        let par = measure_pause_threads(2_000, 0.5, 4);
        assert_eq!(par.transformed, serial.transformed);
        assert_eq!(par.gc_copied_cells, serial.gc_copied_cells);
        assert_eq!(par.gc_copied_words, serial.gc_copied_words);
    }

    #[test]
    fn counts_and_fractions_match_paper() {
        assert_eq!(paper_object_counts(1), vec![280_000, 770_000, 1_760_000, 3_670_000]);
        assert_eq!(paper_fractions().len(), 11);
    }
}
