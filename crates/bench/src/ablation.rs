//! Ablations over the paper's design choices.
//!
//! * **Eager (GC-time) vs lazy (access-time) transformation** — the paper
//!   argues eager updating has *zero* steady-state overhead while
//!   JDrums/DVM-style indirection pays on every access (§5, ~10% for
//!   DVM). We measure webserver throughput in both modes.
//! * **Return barriers / OSR on vs off** — the safe-point machinery of
//!   §3.2. Without OSR, updates restricted by category-2 methods on
//!   always-running stacks time out; without barriers, reaching a safe
//!   point under load takes longer.
//! * **Template-JIT tier on vs off** — the stock-vs-DSU overhead story
//!   with real compiled code in the picture: fused superinstructions
//!   embed resolved offsets and call targets, so a dynamic update must
//!   deopt and re-promote them, and steady state afterwards must still
//!   match the warm-jit run.

use jvolve::modes::apply_lazy;
use jvolve::{apply, ApplyOptions, UpdateError};
use jvolve_apps::harness::{app_vm_config, boot_with, prepare_next};
use jvolve_apps::webserver::{Webserver, PORT};
use jvolve_apps::workload::{drive_http, LoadStats};
use jvolve_vm::VmConfig;

const PATHS: [&str; 3] = ["/index.html", "/about.html", "/data.json"];

/// Steady-state throughput of webserver 5.1.6 in eager mode (no update
/// pending — the deployment-steady-state case).
pub fn eager_steady_state(concurrency: usize, slices: u64) -> LoadStats {
    let mut vm = boot_with(&Webserver, 6, app_vm_config());
    drive_http(&mut vm, PORT, &PATHS, concurrency, 2_000); // warm-up
    drive_http(&mut vm, PORT, &PATHS, concurrency, slices)
}

/// Steady-state throughput with lazy-indirection checks armed: the VM
/// pays a forwarding check on every field access and virtual dispatch,
/// the cost the paper attributes to JDrums/DVM-style systems.
pub fn lazy_steady_state(concurrency: usize, slices: u64, with_update: bool) -> LoadStats {
    let config = VmConfig { lazy_indirection: true, ..app_vm_config() };
    if with_update {
        // Start at 5.1.5, lazily update to 5.1.6, then measure: objects
        // migrate on first touch, checks persist forever after.
        let mut vm = boot_with(&Webserver, 5, config);
        drive_http(&mut vm, PORT, &PATHS, concurrency, 2_000);
        let update = prepare_next(&Webserver, 5);
        apply_lazy(&mut vm, &update).expect("lazy update applies");
        drive_http(&mut vm, PORT, &PATHS, concurrency, 2_000);
        drive_http(&mut vm, PORT, &PATHS, concurrency, slices)
    } else {
        let mut vm = boot_with(&Webserver, 6, config);
        drive_http(&mut vm, PORT, &PATHS, concurrency, 2_000);
        drive_http(&mut vm, PORT, &PATHS, concurrency, slices)
    }
}

/// Guest program for the CPU-bound indirection-overhead measurement: a
/// linked-list traversal that is nothing but field accesses and virtual
/// dispatch — the operations lazy indirection taxes.
pub const CHURN_V1: &str = "
class Node {
  field value: int;
  field next: Node;
  ctor(v: int, n: Node) { this.value = v; this.next = n; }
  method get(): int { return this.value; }
}
class Bench {
  static field head: Node;
  static method setup(n: int): void {
    var head: Node = null;
    var i: int = 0;
    while (i < n) { head = new Node(i, head); i = i + 1; }
    Bench.head = head;
  }
  static method churn(iters: int): int {
    var sum: int = 0;
    var i: int = 0;
    while (i < iters) {
      var cur: Node = Bench.head;
      while (cur != null) { sum = sum + cur.get(); cur = cur.next; }
      i = i + 1;
    }
    return sum;
  }
}
";

/// New version for the update variants: `Node` gains a field.
pub const CHURN_V2: &str = "
class Node {
  field value: int;
  field tag: int;
  field next: Node;
  ctor(v: int, n: Node) { this.value = v; this.next = n; this.tag = 0; }
  method get(): int { return this.value; }
}
class Bench {
  static field head: Node;
  static method setup(n: int): void {
    var head: Node = null;
    var i: int = 0;
    while (i < n) { head = new Node(i, head); i = i + 1; }
    Bench.head = head;
  }
  static method churn(iters: int): int {
    var sum: int = 0;
    var i: int = 0;
    while (i < iters) {
      var cur: Node = Bench.head;
      while (cur != null) { sum = sum + cur.get(); cur = cur.next; }
      i = i + 1;
    }
    return sum;
  }
}
";

/// Which steady-state configuration to time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChurnMode {
    /// Plain eager VM, no update.
    Eager,
    /// Eager VM after a full (GC-based) update — checks still never run.
    EagerUpdated,
    /// Lazy-indirection VM, no update pending: the check executes on
    /// every access but always takes the fast path.
    Lazy,
    /// Lazy-indirection VM after a lazy update: objects migrated on first
    /// touch; the checks keep running forever.
    LazyUpdated,
}

/// Wall-clock time of the CPU-bound churn under `mode` on the default VM
/// (template-JIT tier on), plus the computed checksum (identical across
/// modes — the correctness anchor).
pub fn churn_wall_time(mode: ChurnMode, nodes: i64, iters: i64) -> (std::time::Duration, i64) {
    churn_wall_time_with_jit(mode, nodes, iters, true)
}

/// [`churn_wall_time`] with the template-JIT tier pinned on or off — the
/// jit ablation axis: the same churn, same checksum, with fused code
/// either carrying the hot loops or the cached interpreter doing so.
pub fn churn_wall_time_with_jit(
    mode: ChurnMode,
    nodes: i64,
    iters: i64,
    jit: bool,
) -> (std::time::Duration, i64) {
    use jvolve_vm::Value;
    let lazy = matches!(mode, ChurnMode::Lazy | ChurnMode::LazyUpdated);
    let mut vm = jvolve_vm::Vm::new(VmConfig {
        lazy_indirection: lazy,
        semispace_words: 512 * 1024,
        enable_jit: jit,
        ..VmConfig::default()
    });
    let old = jvolve_lang::compile(CHURN_V1).expect("churn v1 compiles");
    vm.load_classes(&old).expect("churn loads");
    vm.call_static_sync("Bench", "setup", &[Value::Int(nodes)]).expect("setup runs");

    match mode {
        ChurnMode::Eager | ChurnMode::Lazy => {}
        ChurnMode::EagerUpdated | ChurnMode::LazyUpdated => {
            let new = jvolve_lang::compile(CHURN_V2).expect("churn v2 compiles");
            let update =
                jvolve::Update::prepare(&old, &new, "v1_").expect("non-empty churn update");
            if lazy {
                apply_lazy(&mut vm, &update).expect("lazy churn update");
            } else {
                apply(&mut vm, &update, &ApplyOptions::default()).expect("eager churn update");
            }
        }
    }

    // Warm up (drives opt compilation), then measure.
    vm.call_static_sync("Bench", "churn", &[Value::Int(iters / 4)]).expect("warmup");
    let start = std::time::Instant::now();
    let sum = vm
        .call_static_sync("Bench", "churn", &[Value::Int(iters)])
        .expect("churn runs")
        .expect("churn returns");
    (start.elapsed(), sum.as_int())
}

/// Outcome of the safe-point machinery ablation.
#[derive(Debug, Clone)]
pub struct SafepointAblation {
    /// Slices to reach a safe point with barriers + OSR (the paper's
    /// configuration).
    pub with_machinery: Option<u64>,
    /// Slices with return barriers disabled (plain polling).
    pub without_barriers: Option<u64>,
    /// Whether the update still applied with OSR disabled (category-2
    /// frames then block like changed methods).
    pub without_osr_applied: bool,
}

/// Measures how the §3.2 machinery affects reaching a safe point for the
/// webserver 5.1.6 → 5.1.7 update while a long-running method holds
/// category-2 state on stack.
pub fn safepoint_ablation() -> SafepointAblation {
    let attempt = |barriers: bool, osr: bool| -> Result<u64, UpdateError> {
        let mut vm = boot_with(&Webserver, 6, app_vm_config());
        drive_http(&mut vm, PORT, &PATHS, 4, 1_500);
        let update = prepare_next(&Webserver, 6);
        let opts = ApplyOptions {
            timeout_slices: 3_000,
            use_return_barriers: barriers,
            use_osr: osr,
            ..ApplyOptions::default()
        };
        apply(&mut vm, &update, &opts).map(|s| s.slices_waited)
    };

    SafepointAblation {
        with_machinery: attempt(true, true).ok(),
        without_barriers: attempt(false, true).ok(),
        without_osr_applied: attempt(true, false).is_ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_mode_still_serves() {
        let stats = lazy_steady_state(2, 3_000, false);
        assert!(stats.completed > 0);
    }

    #[test]
    fn lazy_update_migrates_and_serves() {
        let stats = lazy_steady_state(2, 3_000, true);
        assert!(stats.completed > 0);
    }

    #[test]
    fn eager_serves() {
        let stats = eager_steady_state(2, 3_000);
        assert!(stats.completed > 0);
    }

    #[test]
    fn safepoint_machinery_reaches_safe_point() {
        let ablation = safepoint_ablation();
        assert!(
            ablation.with_machinery.is_some(),
            "5.1.7 update must apply with the full machinery: {ablation:?}"
        );
        // 5.1.7 is a FileStore class update; `main` holds it on stack
        // forever, so without OSR the update cannot apply.
        assert!(!ablation.without_osr_applied, "{ablation:?}");
    }
}
