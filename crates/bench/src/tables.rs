//! Tables 2–4: per-release change summaries and live-update outcomes.

use jvolve::{ReleaseSummary, Update, UpdateOutcome};
use jvolve_apps::harness::{attempt_update, bench_apply_options, boot, prepare_next};
use jvolve_apps::workload::{ftp_retr, one_shot, smtp_send};
use jvolve_apps::GuestApp;

/// One row of a Table 2/3/4 reproduction.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Per-release change counts (the paper's columns).
    pub summary: ReleaseSummary,
    /// Whether a method-body-only system could apply this release.
    pub body_only: bool,
    /// Live-update outcome, when the update was attempted.
    pub outcome: Option<UpdateOutcome>,
}

/// Computes the change-summary rows for an application (the static part
/// of the table: pure UPT output, no VM needed).
pub fn summarize_releases(app: &dyn GuestApp) -> Vec<TableRow> {
    let versions = app.versions();
    let mut rows = Vec::new();
    for from in 0..versions.len() - 1 {
        let update: Update = prepare_next(app, from);
        let summary = ReleaseSummary::from_spec(versions[from + 1].label, &update.spec);
        rows.push(TableRow { body_only: update.spec.is_body_only(), summary, outcome: None });
    }
    rows
}

/// Computes the full table: summaries plus live-update attempts against a
/// freshly booted server per release, exercised with traffic first so the
/// update hits a server with live state (the paper's §4 methodology: "we
/// ran Jetty under full load; after 30 seconds we tried to apply the
/// update").
pub fn run_table(app: &dyn GuestApp) -> Vec<TableRow> {
    let versions = app.versions();
    let mut rows = summarize_releases(app);
    for (from, row) in rows.iter_mut().enumerate() {
        let mut vm = boot(app, from);
        match app.name() {
            "webserver" => {
                for _ in 0..5 {
                    let _ = one_shot(&mut vm, app.port(), "GET /index.html", 40_000);
                }
            }
            "emailserver" => {
                let _ = smtp_send(&mut vm, app.port(), "alice", "bob", "load", 60_000);
            }
            "ftpserver" => {
                let _ = ftp_retr(&mut vm, app.port(), "admin", "adminpw", "/motd.txt", 60_000);
                vm.run_slices(300); // let the session thread finish
            }
            _ => {}
        }
        let (outcome, _) = attempt_update(&mut vm, app, from, &bench_apply_options());
        let _ = &versions; // labels live in the summaries
        row.outcome = Some(outcome);
    }
    rows
}

/// Renders a table in the paper's layout.
pub fn render_table(app_name: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("Summary of updates to {app_name}\n"));
    out.push_str(&ReleaseSummary::table_header());
    out.push_str(" | E&C?  | outcome\n");
    for row in rows {
        out.push_str(&row.summary.to_string());
        out.push_str(&format!(" | {:<5}", if row.body_only { "yes" } else { "no" }));
        match &row.outcome {
            Some(o) => out.push_str(&format!(" | {o}\n")),
            None => out.push_str(" | (not attempted)\n"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvolve_apps::{Emailserver, Ftpserver, Webserver};

    #[test]
    fn webserver_classification_matches_paper_structure() {
        let rows = summarize_releases(&Webserver);
        assert_eq!(rows.len(), 10);
        let body_only: Vec<&str> = rows
            .iter()
            .filter(|r| r.body_only)
            .map(|r| r.summary.version.as_str())
            .collect();
        // The paper: only the first and the last three of the ten Jetty
        // updates are within reach of method-body-only systems.
        assert_eq!(body_only, ["5.1.1", "5.1.8", "5.1.9", "5.1.10"]);
    }

    #[test]
    fn emailserver_classification_matches_paper_structure() {
        let rows = summarize_releases(&Emailserver);
        assert_eq!(rows.len(), 9);
        let body_only: Vec<&str> = rows
            .iter()
            .filter(|r| r.body_only)
            .map(|r| r.summary.version.as_str())
            .collect();
        // Paper §4.3: four of the nine updates are body-only.
        assert_eq!(body_only, ["1.2.2", "1.2.4", "1.3.1", "1.3.3"]);
    }

    #[test]
    fn ftpserver_no_release_is_body_only() {
        let rows = summarize_releases(&Ftpserver);
        assert_eq!(rows.len(), 3);
        // Paper §4.4: every CrossFTP update adds or deletes fields.
        assert!(rows.iter().all(|r| !r.body_only));
        assert!(rows.iter().all(|r| {
            r.summary.fields_added + r.summary.fields_deleted + r.summary.fields_changed > 0
        }));
    }

    #[test]
    fn render_contains_rows() {
        let rows = summarize_releases(&Ftpserver);
        let text = render_table("ftpserver", &rows);
        assert!(text.contains("1.06"), "{text}");
        assert!(text.contains("1.08"), "{text}");
    }
}
