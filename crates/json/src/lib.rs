//! A small, dependency-free JSON layer.
//!
//! The reproduction needs JSON in exactly three places: the on-disk update
//! specification (`upt --spec`), the bench harnesses' `--json` dumps, and
//! the committed GC pause-time baseline (`results/BENCH_gc.json`) that the
//! regression gate compares against. None of that warrants an external
//! dependency, so this crate provides a [`Json`] value with a pretty
//! printer and a strict recursive-descent parser.
//!
//! Object member order is preserved (members are a `Vec`, not a map), so
//! printing is deterministic and diffs of committed baselines stay small.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers included; they round-trip exactly up to
    /// 2^53, far beyond any count this repo serializes).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a member of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline-free root,
    /// matching the style of the previously committed spec files.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    /// Renders without whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        indent(out, depth + 1);
                    }
                    item.write(out, depth + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    indent(out, depth);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        indent(out, depth + 1);
                    }
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, depth + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    indent(out, depth);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the whole input must be one value).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the byte offset and problem.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus description.
#[derive(Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl fmt::Debug for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ParseError({self})")
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // printer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| ParseError { offset: start, message: format!("bad number '{text}'") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_value() {
        let v = Json::obj([
            ("name", Json::from("User")),
            ("count", Json::from(42usize)),
            ("ratio", Json::from(1.5)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj([("empty", Json::Arr(vec![]))])),
        ]);
        for text in [v.pretty(), v.compact()] {
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::Str("quote \" backslash \\ newline \n tab \t unicode é \u{1}".into());
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(1700usize).pretty(), "1700");
        assert_eq!(Json::from(0.25).pretty(), "0.25");
        assert_eq!(Json::Num(-3.0).pretty(), "-3");
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"a\": 3, \"b\": \"x\", \"c\": [1], \"d\": true}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn pretty_layout_is_stable() {
        let v = Json::obj([("k", Json::Arr(vec![Json::from(1usize)]))]);
        assert_eq!(v.pretty(), "{\n  \"k\": [\n    1\n  ]\n}");
    }
}
