//! The execution engine.
//!
//! Executes resolved code ([`RInstr`]) against the heap. Yield points sit
//! at method entries, method exits and loop back-edges (paper §3.2) — a
//! thread asked to stop only pauses at one of those, which is what makes
//! every inter-slice point a VM safe point. Return barriers and the
//! lazy-indirection access checks are implemented here.

use std::sync::Arc;

use jvolve_classfile::STRING_CLASS;

use crate::compiled::{CompileLevel, CompiledMethod, RInstr};
use crate::error::VmError;
use crate::heap::HeapKind;
use crate::icache::SiteEntry;
use crate::ids::{ClassId, MethodId};
use crate::lazy::MAX_TRANSFORMER_DEPTH;
use crate::natives::NativeFn;
use crate::thread::{BlockOn, Frame, FrameNote, ThreadState, VmThread, FRAME_POOL_CAP};
use crate::value::{GcRef, Value};
use crate::vm::Vm;

/// Why a thread execution slice stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum SliceEvent {
    /// Quantum exhausted (stopped at a yield point) or explicit yield.
    Quantum,
    /// Thread blocked on a resource; pc/stack are positioned to retry.
    Blocked,
    /// Thread ran to completion.
    Finished,
    /// Thread died with a trap.
    Trapped(VmError),
    /// A frame with a return barrier returned (paper §3.2).
    ReturnBarrier {
        /// The method that returned.
        method: MethodId,
    },
    /// An allocation needs a collection; pc/stack are positioned to retry.
    NeedGc,
}

/// Outcome of a native call.
enum NOut {
    /// Pop the arguments, push the value (if any), advance.
    Val(Option<Value>),
    /// Leave pc and stack untouched; block the thread.
    Block(BlockOn),
    /// Pop the arguments, advance, then block (sleep-style).
    BlockAfter(BlockOn),
    /// Leave pc and stack untouched; run a GC and retry.
    NeedGc,
    /// Kill the thread.
    Trap(VmError),
    /// Pop the arguments, advance, then run this frame (transformers).
    Frame(Box<Frame>),
    /// Leave pc and stack untouched; run this frame, then retry the
    /// instruction (lazy-migration barrier hit inside a native).
    Barrier(Box<Frame>),
    /// Pop the arguments, advance, then end the slice.
    Yield,
}

/// Result of a lazy object check (JDrums indirection or the
/// lazy-migration read barrier).
enum Lazy {
    /// Access this (resolved, current-version) object.
    Ready(GcRef),
    /// An allocation needs a collection; retry the instruction after.
    NeedGc,
    /// Lazy migration duplicated a stale object: run this transformer
    /// frame with pc and stack untouched, then retry the instruction.
    Run(Box<Frame>),
    /// The barrier itself trapped (depth limit, missing transformer).
    Trap(VmError),
}

impl Vm {
    /// Runs `t` until a slice-ending event, with `budget` steps before the
    /// next yield point ends the slice.
    pub(crate) fn exec_thread(&mut self, t: &mut VmThread, budget: usize) -> SliceEvent {
        let (event, steps) = self.exec_inner(t, budget);
        // Folded once per slice rather than once per instruction; callers
        // (e.g. GC-retry stuck detection) only read the total between
        // `exec_thread` calls, which always see it up to date.
        self.stats.steps += steps as u64;
        event
    }

    fn exec_inner(&mut self, t: &mut VmThread, budget: usize) -> (SliceEvent, usize) {
        let mut steps: usize = 0;
        let use_ic = self.config.enable_inline_caches;
        let opt_threshold = self.config.opt_threshold;
        let enable_opt = self.config.enable_opt;
        let enable_jit = self.config.enable_jit;
        let jit_threshold = self.config.jit_threshold;

        'outer: loop {
            let Some(fi) = t.frames.len().checked_sub(1) else {
                t.state = ThreadState::Finished;
                return (SliceEvent::Finished, steps);
            };
            // Template-JIT epoch check at method entry/re-entry: a fused
            // frame whose dispatch epoch moved revalidates against the
            // registry, deoptimizing onto its retained base body if its
            // method was replaced underneath it (DESIGN §5). One cached
            // epoch compare when nothing changed.
            self.jit_revalidate(t, fi);
            // SAFETY: nothing replaces `frames[fi].compiled` while this
            // activation executes — OSR runs only between slices, a
            // registry recompilation swaps the *registry's* `Arc`, never
            // the frame's, and the in-loop swaps (template-JIT OSR-in on
            // a back-edge, deopt via `jit_revalidate`) re-enter 'outer
            // immediately without touching the borrow again — and the
            // borrow is last used before the frame pops (the return path
            // re-enters 'outer immediately, and the popped frame keeps
            // the `Arc` alive through the arm).
            // Pushing frames may move the `Arc` struct itself; the
            // pointee is heap-allocated and unaffected.
            let code: &CompiledMethod =
                unsafe { &*Arc::as_ptr(&t.frames[fi].compiled) };
            let code_key = Arc::as_ptr(&t.frames[fi].compiled) as usize;

            loop {
                steps += 1;
                let pc = t.frames[fi].pc as usize;
                debug_assert!(pc < code.code.len(), "pc ran off method end");
                let instr = &code.code[pc];
                let frame = &mut t.frames[fi];

                macro_rules! trap {
                    ($e:expr) => {{
                        return (SliceEvent::Trapped($e), steps);
                    }};
                }
                macro_rules! push {
                    ($v:expr) => {
                        frame.stack.push($v)
                    };
                }
                macro_rules! pop {
                    () => {
                        frame.stack.pop().expect("verified code: stack underflow")
                    };
                }
                // The read-barrier dance shared by every reference load:
                // `Run` pushes the object transformer with pc and stack
                // untouched, so the faulting instruction (which only
                // *peeked* its operands) retries after it returns.
                macro_rules! barrier {
                    ($obj:expr) => {
                        match self.lazy_object($obj) {
                            Lazy::Ready(o) => o,
                            Lazy::NeedGc => return (SliceEvent::NeedGc, steps),
                            Lazy::Run(f) => {
                                if t.frames.len() >= self.config.max_stack_depth {
                                    trap!(VmError::StackOverflow);
                                }
                                t.frames.push(*f);
                                continue 'outer;
                            }
                            Lazy::Trap(e) => trap!(e),
                        }
                    };
                }
                // The shared return path: pops the frame, processes its
                // note, recycles its vectors, delivers the value, and
                // ends the slice if a barrier fired, the thread finished,
                // or the budget ran out. Used by the plain return arms
                // and every fused superinstruction ending in a return.
                macro_rules! do_return {
                    ($value:expr) => {{
                        let value: Option<Value> = $value;
                        let mut done = t.frames.pop().expect("frame present");
                        if let Some(FrameNote::TransformOf(addr)) = done.note {
                            self.dsu.in_progress.remove(&addr);
                            self.dsu.done.insert(addr);
                            if self.lazy.active {
                                self.lazy.transformed += 1;
                            }
                        }
                        // Recycle the frame's vectors (cleared, so the GC
                        // and roots never see stale references). Gated with
                        // the inline caches: together they are the
                        // steady-state dispatch fast path, and caches-off
                        // holds the stock per-call allocation behavior.
                        if use_ic && t.pool.len() < FRAME_POOL_CAP {
                            done.locals.clear();
                            done.stack.clear();
                            t.pool.push((
                                std::mem::take(&mut done.locals),
                                std::mem::take(&mut done.stack),
                            ));
                        }
                        match t.frames.last_mut() {
                            Some(caller) => {
                                if let Some(v) = value {
                                    caller.stack.push(v);
                                }
                            }
                            None => {
                                t.result = value;
                            }
                        }
                        if done.return_barrier {
                            // Paper §3.2: the bridge code notifies the
                            // update driver, which restarts the update.
                            return (
                                SliceEvent::ReturnBarrier { method: done.method },
                                steps,
                            );
                        }
                        if t.frames.is_empty() {
                            t.state = ThreadState::Finished;
                            return (SliceEvent::Finished, steps);
                        }
                        if steps >= budget {
                            return (SliceEvent::Quantum, steps);
                        }
                        continue 'outer;
                    }};
                }

                let mut next_pc = pc + 1;

                // The inline-cache hit tail shared by every call arm:
                // hotness sampling (so adaptive recompilation triggers at
                // the same call number as with caches off), tier
                // promotion to Opt or to the template JIT, and — for
                // whitelisted leaf callees — execution without
                // materializing a frame. Expands to `true` when the call
                // was fully handled (the surrounding arm must have left
                // via `continue`), `false` to fall through to the
                // resolving slow path.
                macro_rules! ic_hit {
                    ($callee:ident, $total:expr) => {{
                        let pre = $callee.invocations.bump();
                        let promote = (enable_opt
                            && $callee.level == CompileLevel::Base
                            && pre >= opt_threshold)
                            || (enable_jit
                                && $callee.level != CompileLevel::Jit
                                && pre.saturating_add($callee.loop_trips.get())
                                    >= jit_threshold);
                        if promote {
                            // Crossed a tier threshold: fall through to
                            // the slow path, which recompiles.
                            false
                        } else {
                            if enable_jit
                                && $callee.leaf
                                && steps < budget
                                && !self.lazy.active
                                && !self.config.lazy_indirection
                                && t.frames.len() < self.config.max_stack_depth
                            {
                                // Leaf fast path: run the callee on the
                                // caller's operand stack. Gated on the
                                // budget so a slice that would have
                                // paused inside the callee frame still
                                // does, and on lazy modes so no read
                                // barrier is ever skipped.
                                match self.exec_leaf(t, fi, &$callee, $total, &mut steps) {
                                    Ok(()) => {
                                        t.frames[fi].pc = next_pc as u32;
                                        if steps >= budget {
                                            return (SliceEvent::Quantum, steps);
                                        }
                                        continue;
                                    }
                                    Err(e) => trap!(e),
                                }
                            }
                            if let Err(e) = self.push_callee(t, fi, $callee, $total, next_pc)
                            {
                                trap!(e);
                            }
                            if steps >= budget {
                                return (SliceEvent::Quantum, steps);
                            }
                            continue 'outer;
                        }
                    }};
                }
                // The virtual-call dispatch tail shared by `CallVirtual`
                // and `FusedLoadCallVirtual`: IC fast path, then TIB walk
                // + adaptive recompilation + cache fill. Always leaves
                // via `continue` or a slice-ending return.
                macro_rules! dispatch_virtual {
                    ($vslot:expr, $site:expr, $class:expr, $total:expr) => {{
                        let class = $class;
                        let total: usize = $total;
                        let site = $site;
                        if use_ic {
                            let epoch = self.registry.code_epoch();
                            let row = t.ic.site(code, code_key, site);
                            if let Some(entry) = row.lookup(epoch, class) {
                                let callee = Arc::clone(&entry.code);
                                self.stats.ic_hits += 1;
                                // Hotness sampled on the hit path too, so
                                // adaptive recompilation triggers at the
                                // same call number as with caches off.
                                let _ = ic_hit!(callee, total);
                            } else {
                                self.stats.ic_misses += 1;
                            }
                        }
                        let vslot = $vslot;
                        let tib = &self.registry.class(class).tib;
                        let Some(&mid) = tib.get(vslot as usize) else {
                            trap!(VmError::Internal {
                                message: format!(
                                    "TIB slot {vslot} missing on {} — stale compiled code?",
                                    self.registry.class(class).name
                                ),
                            });
                        };
                        let callee = match self.compiled_for(mid) {
                            Ok(c) => c,
                            Err(e) => trap!(e),
                        };
                        if use_ic {
                            // Epoch read *after* compiled_for: a fresh
                            // compile bumps it, and an entry stamped with
                            // the pre-compile epoch would never hit.
                            let epoch = self.registry.code_epoch();
                            t.ic.site(code, code_key, site).insert(
                                epoch,
                                SiteEntry { class, method: mid, code: Arc::clone(&callee) },
                            );
                        }
                        if let Err(e) = self.push_callee(t, fi, callee, total, next_pc) {
                            trap!(e);
                        }
                        if steps >= budget {
                            return (SliceEvent::Quantum, steps);
                        }
                        continue 'outer;
                    }};
                }
                // The direct-call dispatch tail shared by `CallDirect` and
                // `FusedLoadCallDirect`.
                macro_rules! dispatch_direct {
                    ($method:expr, $site:expr, $total:expr) => {{
                        let mid = $method;
                        let total: usize = $total;
                        let site = $site;
                        if use_ic {
                            let epoch = self.registry.code_epoch();
                            let row = t.ic.site(code, code_key, site);
                            if let Some(entry) = row.lookup_direct(epoch) {
                                let callee = Arc::clone(&entry.code);
                                self.stats.ic_hits += 1;
                                let _ = ic_hit!(callee, total);
                            } else {
                                self.stats.ic_misses += 1;
                            }
                        }
                        let callee = match self.compiled_for(mid) {
                            Ok(c) => c,
                            Err(e) => trap!(e),
                        };
                        if use_ic {
                            let epoch = self.registry.code_epoch();
                            t.ic.site(code, code_key, site).insert_direct(
                                epoch,
                                // Direct calls have no receiver class to key
                                // on; way 0 is guarded by the epoch alone.
                                SiteEntry {
                                    class: ClassId(0),
                                    method: mid,
                                    code: Arc::clone(&callee),
                                },
                            );
                        }
                        if let Err(e) = self.push_callee(t, fi, callee, total, next_pc) {
                            trap!(e);
                        }
                        if steps >= budget {
                            return (SliceEvent::Quantum, steps);
                        }
                        continue 'outer;
                    }};
                }
                match instr {
                    RInstr::ConstInt(v) => push!(Value::Int(*v)),
                    RInstr::ConstBool(v) => push!(Value::Bool(*v)),
                    RInstr::ConstNull => push!(Value::Null),
                    RInstr::ConstStr(s) => match self.heap.alloc_string(s) {
                        Some(r) => t.frames[fi].stack.push(Value::Ref(r)),
                        None => return (SliceEvent::NeedGc, steps),
                    },
                    RInstr::Load(slot) => {
                        let v = frame.locals[*slot as usize];
                        push!(v);
                    }
                    RInstr::Store(slot) => {
                        let v = pop!();
                        frame.locals[*slot as usize] = v;
                    }
                    RInstr::Add => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        push!(Value::Int(a.wrapping_add(b)));
                    }
                    RInstr::Sub => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        push!(Value::Int(a.wrapping_sub(b)));
                    }
                    RInstr::Mul => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        push!(Value::Int(a.wrapping_mul(b)));
                    }
                    RInstr::Div => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        if b == 0 {
                            trap!(VmError::DivisionByZero);
                        }
                        push!(Value::Int(a.wrapping_div(b)));
                    }
                    RInstr::Rem => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        if b == 0 {
                            trap!(VmError::DivisionByZero);
                        }
                        push!(Value::Int(a.wrapping_rem(b)));
                    }
                    RInstr::Neg => {
                        let a = pop!().as_int();
                        push!(Value::Int(a.wrapping_neg()));
                    }
                    RInstr::CmpEq => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        push!(Value::Bool(a == b));
                    }
                    RInstr::CmpNe => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        push!(Value::Bool(a != b));
                    }
                    RInstr::CmpLt => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        push!(Value::Bool(a < b));
                    }
                    RInstr::CmpLe => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        push!(Value::Bool(a <= b));
                    }
                    RInstr::CmpGt => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        push!(Value::Bool(a > b));
                    }
                    RInstr::CmpGe => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        push!(Value::Bool(a >= b));
                    }
                    RInstr::Not => {
                        let a = pop!().as_bool();
                        push!(Value::Bool(!a));
                    }
                    RInstr::BoolEq => {
                        let b = pop!().as_bool();
                        let a = pop!().as_bool();
                        push!(Value::Bool(a == b));
                    }
                    RInstr::RefEq | RInstr::RefNe => {
                        let b = pop!();
                        let a = pop!();
                        let eq = match (a, b) {
                            (Value::Null, Value::Null) => true,
                            // Mid-epoch (or under JDrums indirection) one
                            // operand may be a stale address and the other
                            // its migrated copy: identity must compare
                            // through the forwarding words.
                            (Value::Ref(x), Value::Ref(y)) => {
                                x == y
                                    || ((self.lazy.active || self.config.lazy_indirection)
                                        && self.heap.resolve(x) == self.heap.resolve(y))
                            }
                            _ => false,
                        };
                        push!(Value::Bool(if matches!(instr, RInstr::RefEq) { eq } else { !eq }));
                    }
                    RInstr::StrEq => {
                        let b = pop!().as_ref_opt();
                        let a = pop!().as_ref_opt();
                        let eq = match (a, b) {
                            (None, None) => true,
                            (Some(x), Some(y)) => {
                                x == y || self.heap.read_string(x) == self.heap.read_string(y)
                            }
                            _ => false,
                        };
                        t.frames[fi].stack.push(Value::Bool(eq));
                    }
                    RInstr::StrConcat => {
                        // Peek (no pops) so a GC retry sees an intact stack.
                        let n = frame.stack.len();
                        let (Some(a), Some(b)) = (
                            frame.stack[n - 2].as_ref_opt(),
                            frame.stack[n - 1].as_ref_opt(),
                        ) else {
                            trap!(VmError::NullPointer { context: "string concatenation".into() });
                        };
                        let joined =
                            format!("{}{}", self.heap.read_string(a), self.heap.read_string(b));
                        match self.heap.alloc_string(&joined) {
                            Some(r) => {
                                let frame = &mut t.frames[fi];
                                frame.stack.truncate(n - 2);
                                frame.stack.push(Value::Ref(r));
                            }
                            None => return (SliceEvent::NeedGc, steps),
                        }
                    }
                    RInstr::New { class, size } => {
                        match self.heap.alloc_object(*class, *size as usize) {
                            Some(r) => t.frames[fi].stack.push(Value::Ref(r)),
                            None => return (SliceEvent::NeedGc, steps),
                        }
                    }
                    RInstr::NewArray { is_ref } => {
                        let len = frame.stack.last().expect("verified").as_int();
                        if len < 0 {
                            trap!(VmError::IndexOutOfBounds { index: len, len: 0 });
                        }
                        match self.heap.alloc_array(*is_ref, len as usize) {
                            Some(r) => {
                                let frame = &mut t.frames[fi];
                                frame.stack.pop();
                                frame.stack.push(Value::Ref(r));
                            }
                            None => return (SliceEvent::NeedGc, steps),
                        }
                    }
                    RInstr::GetField { offset, is_ref } => {
                        let n = frame.stack.len();
                        let Some(obj) = frame.stack[n - 1].as_ref_opt() else {
                            trap!(VmError::NullPointer { context: "field read".into() });
                        };
                        let obj = barrier!(obj);
                        let mut word = self.heap.get(obj, *offset as usize);
                        // Mid-epoch, loaded references resolve through any
                        // forwarding word: during the collapse sweep this
                        // keeps stale addresses read from unswept cells
                        // from recontaminating swept ones (the SATB/
                        // collapse invariant); outside an epoch the branch
                        // is never taken.
                        if *is_ref && word != 0 && self.lazy.active {
                            word = u64::from(self.heap.resolve(GcRef(word as u32)).0);
                        }
                        let frame = &mut t.frames[fi];
                        frame.stack.pop();
                        frame.stack.push(Value::from_word(word, *is_ref));
                    }
                    RInstr::PutField { offset } => {
                        let n = frame.stack.len();
                        let Some(obj) = frame.stack[n - 2].as_ref_opt() else {
                            trap!(VmError::NullPointer { context: "field write".into() });
                        };
                        let obj = barrier!(obj);
                        let frame = &mut t.frames[fi];
                        let val = frame.stack.pop().expect("verified");
                        frame.stack.pop();
                        self.heap.set(obj, *offset as usize, val.to_word());
                    }
                    RInstr::GetStatic { slot, is_ref } => {
                        let word = self.registry.jtoc_get(*slot);
                        push!(Value::from_word(word, *is_ref));
                    }
                    RInstr::PutStatic { slot } => {
                        let val = pop!();
                        self.registry.jtoc_set(*slot, val.to_word());
                    }
                    RInstr::ALoad => {
                        let idx = pop!().as_int();
                        let Some(arr) = pop!().as_ref_opt() else {
                            trap!(VmError::NullPointer { context: "array read".into() });
                        };
                        let arr = self.heap.resolve(arr);
                        let len = self.heap.len_of(arr);
                        if idx < 0 || idx as u32 >= len {
                            trap!(VmError::IndexOutOfBounds { index: idx, len });
                        }
                        let is_ref = self.heap.kind(arr) == HeapKind::RefArray;
                        let mut word = self.heap.get(arr, idx as usize);
                        // Same mid-epoch load resolution as GetField.
                        if is_ref && word != 0 && self.lazy.active {
                            word = u64::from(self.heap.resolve(GcRef(word as u32)).0);
                        }
                        t.frames[fi].stack.push(Value::from_word(word, is_ref));
                    }
                    RInstr::AStore => {
                        let val = pop!();
                        let idx = pop!().as_int();
                        let Some(arr) = pop!().as_ref_opt() else {
                            trap!(VmError::NullPointer { context: "array write".into() });
                        };
                        let arr = self.heap.resolve(arr);
                        let len = self.heap.len_of(arr);
                        if idx < 0 || idx as u32 >= len {
                            trap!(VmError::IndexOutOfBounds { index: idx, len });
                        }
                        self.heap.set(arr, idx as usize, val.to_word());
                    }
                    RInstr::ArrayLen => {
                        let Some(arr) = pop!().as_ref_opt() else {
                            trap!(VmError::NullPointer { context: "array length".into() });
                        };
                        let arr = self.heap.resolve(arr);
                        let len = self.heap.len_of(arr);
                        t.frames[fi].stack.push(Value::Int(i64::from(len)));
                    }
                    RInstr::CallVirtual { vslot, argc, site } => {
                        let n = frame.stack.len();
                        let ridx = n - 1 - *argc as usize;
                        let Some(recv) = frame.stack[ridx].as_ref_opt() else {
                            trap!(VmError::NullPointer { context: "virtual call".into() });
                        };
                        let recv = barrier!(recv);
                        t.frames[fi].stack[ridx] = Value::Ref(recv);
                        let class = self.heap.class_of(recv);
                        dispatch_virtual!(*vslot, *site, class, *argc as usize + 1)
                    }
                    RInstr::CallDirect { method, argc, has_receiver, site } => {
                        let total = *argc as usize + usize::from(*has_receiver);
                        if *has_receiver {
                            let n = frame.stack.len();
                            if frame.stack[n - total].as_ref_opt().is_none() {
                                trap!(VmError::NullPointer { context: "instance call".into() });
                            }
                        }
                        dispatch_direct!(*method, *site, total)
                    }
                    RInstr::CallNative { native, argc } => {
                        let argc = *argc as usize;
                        match self.exec_native(t, fi, *native, argc) {
                            NOut::Val(result) => {
                                let frame = &mut t.frames[fi];
                                let n = frame.stack.len();
                                frame.stack.truncate(n - argc);
                                if let Some(v) = result {
                                    frame.stack.push(v);
                                }
                            }
                            NOut::Block(on) => {
                                t.state = ThreadState::Blocked(on);
                                return (SliceEvent::Blocked, steps);
                            }
                            NOut::BlockAfter(on) => {
                                let frame = &mut t.frames[fi];
                                let n = frame.stack.len();
                                frame.stack.truncate(n - argc);
                                frame.pc = next_pc as u32;
                                t.state = ThreadState::Blocked(on);
                                return (SliceEvent::Blocked, steps);
                            }
                            NOut::NeedGc => return (SliceEvent::NeedGc, steps),
                            NOut::Trap(e) => trap!(e),
                            NOut::Frame(new_frame) => {
                                let frame = &mut t.frames[fi];
                                let n = frame.stack.len();
                                frame.stack.truncate(n - argc);
                                frame.pc = next_pc as u32;
                                t.frames.push(*new_frame);
                                continue 'outer;
                            }
                            NOut::Barrier(new_frame) => {
                                if t.frames.len() >= self.config.max_stack_depth {
                                    trap!(VmError::StackOverflow);
                                }
                                t.frames.push(*new_frame);
                                continue 'outer;
                            }
                            NOut::Yield => {
                                let frame = &mut t.frames[fi];
                                let n = frame.stack.len();
                                frame.stack.truncate(n - argc);
                                frame.pc = next_pc as u32;
                                return (SliceEvent::Quantum, steps);
                            }
                        }
                    }
                    RInstr::Jump(target) => {
                        let target = *target as usize;
                        t.frames[fi].pc = target as u32;
                        if target <= pc {
                            // Loop back-edge: a yield point.
                            if steps >= budget {
                                return (SliceEvent::Quantum, steps);
                            }
                            if enable_jit {
                                match code.level {
                                    CompileLevel::Base => {
                                        // Count loop trips toward template-JIT
                                        // heat; a long-running loop promotes
                                        // mid-method (OSR-in) without waiting
                                        // for the next invocation.
                                        let trips = code.loop_trips.bump();
                                        if trips.saturating_add(code.invocations.get())
                                            >= jit_threshold
                                            && self.osr_into_jit(t, fi)
                                        {
                                            continue 'outer;
                                        }
                                    }
                                    CompileLevel::Jit => {
                                        // DSU safe point: a fused frame
                                        // re-checks the dispatch epoch on
                                        // every back-edge, deoptimizing if
                                        // its method was replaced.
                                        if self.jit_revalidate(t, fi) {
                                            continue 'outer;
                                        }
                                    }
                                    CompileLevel::Opt => {}
                                }
                            }
                        }
                        continue;
                    }
                    RInstr::JumpIfTrue(target) => {
                        if pop!().as_bool() {
                            next_pc = *target as usize;
                        }
                    }
                    RInstr::JumpIfFalse(target) => {
                        if !pop!().as_bool() {
                            next_pc = *target as usize;
                        }
                    }
                    RInstr::Return | RInstr::ReturnValue => {
                        let value = if matches!(instr, RInstr::ReturnValue) {
                            Some(frame.stack.pop().expect("verified"))
                        } else {
                            None
                        };
                        do_return!(value)
                    }
                    RInstr::Pop => {
                        pop!();
                    }
                    RInstr::Dup => {
                        let v = *frame.stack.last().expect("verified");
                        push!(v);
                    }

                    // ---- template-JIT superinstructions (crate::jit2) ----
                    //
                    // Each arm executes its covered base instructions in one
                    // dispatch. Step accounting mirrors the base tier
                    // exactly: the loop top counted 1, the completion path
                    // adds covered-1 (and the partial count before a trap
                    // matches the base trap point), so slice budgets, yield
                    // positions, and the differential oracles see identical
                    // totals. Barrier exits add nothing — the whole
                    // superinstruction retries, costing 1 per attempt just
                    // as the base tier's faulting instruction does.
                    RInstr::FusedIncLocal { slot, delta } => {
                        steps += 3;
                        self.stats.fused_steps += 4;
                        let v = frame.locals[*slot as usize].as_int();
                        frame.locals[*slot as usize] = Value::Int(v.wrapping_add(*delta));
                    }
                    RInstr::FusedLoadGetField { slot, offset, is_ref } => {
                        let Some(obj) = frame.locals[*slot as usize].as_ref_opt() else {
                            steps += 1;
                            trap!(VmError::NullPointer { context: "field read".into() });
                        };
                        let obj = barrier!(obj);
                        steps += 1;
                        self.stats.fused_steps += 2;
                        let mut word = self.heap.get(obj, *offset as usize);
                        // Same mid-epoch load resolution as GetField.
                        if *is_ref && word != 0 && self.lazy.active {
                            word = u64::from(self.heap.resolve(GcRef(word as u32)).0);
                        }
                        t.frames[fi].stack.push(Value::from_word(word, *is_ref));
                    }
                    RInstr::FusedLoadGetFieldReturn { slot, offset, is_ref } => {
                        let Some(obj) = frame.locals[*slot as usize].as_ref_opt() else {
                            steps += 1;
                            trap!(VmError::NullPointer { context: "field read".into() });
                        };
                        let obj = barrier!(obj);
                        steps += 2;
                        self.stats.fused_steps += 3;
                        let mut word = self.heap.get(obj, *offset as usize);
                        if *is_ref && word != 0 && self.lazy.active {
                            word = u64::from(self.heap.resolve(GcRef(word as u32)).0);
                        }
                        do_return!(Some(Value::from_word(word, *is_ref)))
                    }
                    RInstr::FusedLoadLoadCmpBr { a, b, op, when, target } => {
                        steps += 3;
                        self.stats.fused_steps += 4;
                        let x = frame.locals[*a as usize].as_int();
                        let y = frame.locals[*b as usize].as_int();
                        if op.apply(x, y) == *when {
                            next_pc = *target as usize;
                        }
                    }
                    RInstr::FusedLoadConstCmpBr { slot, k, op, when, target } => {
                        steps += 3;
                        self.stats.fused_steps += 4;
                        let x = frame.locals[*slot as usize].as_int();
                        if op.apply(x, *k) == *when {
                            next_pc = *target as usize;
                        }
                    }
                    RInstr::FusedStackConstCmpBr { k, op, when, target } => {
                        steps += 2;
                        self.stats.fused_steps += 3;
                        let x = pop!().as_int();
                        if op.apply(x, *k) == *when {
                            next_pc = *target as usize;
                        }
                    }
                    RInstr::FusedLoadLoadAdd { a, b } => {
                        steps += 2;
                        self.stats.fused_steps += 3;
                        let x = frame.locals[*a as usize].as_int();
                        let y = frame.locals[*b as usize].as_int();
                        push!(Value::Int(x.wrapping_add(y)));
                    }
                    RInstr::FusedLoadConstAdd { slot, k } => {
                        steps += 2;
                        self.stats.fused_steps += 3;
                        let x = frame.locals[*slot as usize].as_int();
                        push!(Value::Int(x.wrapping_add(*k)));
                    }
                    RInstr::FusedLoadConstAddReturn { slot, k } => {
                        steps += 3;
                        self.stats.fused_steps += 4;
                        let x = frame.locals[*slot as usize].as_int();
                        do_return!(Some(Value::Int(x.wrapping_add(*k))))
                    }
                    RInstr::FusedConstReturn { k } => {
                        steps += 1;
                        self.stats.fused_steps += 2;
                        do_return!(Some(Value::Int(*k)))
                    }
                    RInstr::FusedLoadReturn { slot } => {
                        steps += 1;
                        self.stats.fused_steps += 2;
                        let v = frame.locals[*slot as usize];
                        do_return!(Some(v))
                    }
                    RInstr::FusedLoadStore { from, to } => {
                        steps += 1;
                        self.stats.fused_steps += 2;
                        frame.locals[*to as usize] = frame.locals[*from as usize];
                    }
                    RInstr::FusedLoadCallVirtual { slot, vslot, site } => {
                        let Some(recv) = frame.locals[*slot as usize].as_ref_opt() else {
                            steps += 1;
                            trap!(VmError::NullPointer { context: "virtual call".into() });
                        };
                        let recv = barrier!(recv);
                        steps += 1;
                        self.stats.fused_steps += 2;
                        // Base pushes the receiver then resolves the stack
                        // copy in place; pushing the resolved receiver is
                        // the same final stack (the local keeps the stale
                        // ref in both tiers).
                        t.frames[fi].stack.push(Value::Ref(recv));
                        let class = self.heap.class_of(recv);
                        dispatch_virtual!(*vslot, *site, class, 1)
                    }
                    RInstr::FusedLoadCallDirect { slot, method, argc, has_receiver, site } => {
                        let v = frame.locals[*slot as usize];
                        let total = *argc as usize + usize::from(*has_receiver);
                        frame.stack.push(v);
                        if *has_receiver {
                            let n = frame.stack.len();
                            if frame.stack[n - total].as_ref_opt().is_none() {
                                steps += 1;
                                trap!(VmError::NullPointer { context: "instance call".into() });
                            }
                        }
                        steps += 1;
                        self.stats.fused_steps += 2;
                        dispatch_direct!(*method, *site, total)
                    }
                }
                t.frames[fi].pc = next_pc as u32;
            }
        }
    }

    /// Pushes a frame for already-resolved code, consuming `total` stack
    /// values as arguments. Reuses pooled vectors when available.
    fn push_callee(
        &mut self,
        t: &mut VmThread,
        fi: usize,
        compiled: Arc<CompiledMethod>,
        total: usize,
        caller_next_pc: usize,
    ) -> Result<(), VmError> {
        if t.frames.len() >= self.config.max_stack_depth {
            return Err(VmError::StackOverflow);
        }
        let (mut locals, stack) = t.pool.pop().unwrap_or_default();
        let frame = &mut t.frames[fi];
        frame.pc = caller_next_pc as u32;
        let base = frame.stack.len() - total;
        // Pooled vectors arrive cleared, so resize nulls every slot past
        // the arguments — same as a fresh `Frame::new`.
        locals.resize((compiled.max_locals as usize).max(total), Value::Null);
        locals[..total].copy_from_slice(&frame.stack[base..]);
        frame.stack.truncate(base);
        t.frames.push(Frame {
            method: compiled.method,
            compiled,
            pc: 0,
            locals,
            stack,
            return_barrier: false,
            note: None,
        });
        Ok(())
    }

    /// Executes a whitelisted leaf callee (see [`crate::jit2::is_leaf`])
    /// inline on the caller's operand stack, without materializing a
    /// [`Frame`]. Only reachable from inline-cache hit paths when the
    /// template JIT is enabled and no lazy epoch or indirection is
    /// active, so reference loads need no read barrier; the whitelist
    /// excludes allocation, so no GC can interleave and the scratch
    /// locals never need root scanning. Step accounting mirrors the main
    /// loop exactly — one step per plain op, the covered count per fused
    /// op — so slice budgets and the differential oracles see identical
    /// totals to framed execution.
    fn exec_leaf(
        &mut self,
        t: &mut VmThread,
        fi: usize,
        callee: &CompiledMethod,
        total: usize,
        steps: &mut usize,
    ) -> Result<(), VmError> {
        let mut locals = std::mem::take(&mut t.leaf_locals);
        debug_assert!(locals.is_empty());
        let frame = &mut t.frames[fi];
        let stack_base = frame.stack.len() - total;
        locals.extend_from_slice(&frame.stack[stack_base..]);
        if locals.len() < callee.max_locals as usize {
            locals.resize(callee.max_locals as usize, Value::Null);
        }
        frame.stack.truncate(stack_base);

        let mut pc = 0usize;
        let mut error: Option<VmError> = None;
        macro_rules! fail {
            ($e:expr) => {{
                error = Some($e);
                break None;
            }};
        }
        let ret: Option<Value> = loop {
            *steps += 1;
            match &callee.code[pc] {
                RInstr::ConstInt(v) => frame.stack.push(Value::Int(*v)),
                RInstr::ConstBool(v) => frame.stack.push(Value::Bool(*v)),
                RInstr::ConstNull => frame.stack.push(Value::Null),
                RInstr::Load(slot) => frame.stack.push(locals[*slot as usize]),
                RInstr::Store(slot) => {
                    locals[*slot as usize] = frame.stack.pop().expect("verified");
                }
                RInstr::Add => {
                    let b = frame.stack.pop().expect("verified").as_int();
                    let a = frame.stack.pop().expect("verified").as_int();
                    frame.stack.push(Value::Int(a.wrapping_add(b)));
                }
                RInstr::Sub => {
                    let b = frame.stack.pop().expect("verified").as_int();
                    let a = frame.stack.pop().expect("verified").as_int();
                    frame.stack.push(Value::Int(a.wrapping_sub(b)));
                }
                RInstr::Mul => {
                    let b = frame.stack.pop().expect("verified").as_int();
                    let a = frame.stack.pop().expect("verified").as_int();
                    frame.stack.push(Value::Int(a.wrapping_mul(b)));
                }
                RInstr::Div => {
                    let b = frame.stack.pop().expect("verified").as_int();
                    let a = frame.stack.pop().expect("verified").as_int();
                    if b == 0 {
                        fail!(VmError::DivisionByZero);
                    }
                    frame.stack.push(Value::Int(a.wrapping_div(b)));
                }
                RInstr::Rem => {
                    let b = frame.stack.pop().expect("verified").as_int();
                    let a = frame.stack.pop().expect("verified").as_int();
                    if b == 0 {
                        fail!(VmError::DivisionByZero);
                    }
                    frame.stack.push(Value::Int(a.wrapping_rem(b)));
                }
                RInstr::Neg => {
                    let a = frame.stack.pop().expect("verified").as_int();
                    frame.stack.push(Value::Int(a.wrapping_neg()));
                }
                RInstr::CmpEq => {
                    let b = frame.stack.pop().expect("verified").as_int();
                    let a = frame.stack.pop().expect("verified").as_int();
                    frame.stack.push(Value::Bool(a == b));
                }
                RInstr::CmpNe => {
                    let b = frame.stack.pop().expect("verified").as_int();
                    let a = frame.stack.pop().expect("verified").as_int();
                    frame.stack.push(Value::Bool(a != b));
                }
                RInstr::CmpLt => {
                    let b = frame.stack.pop().expect("verified").as_int();
                    let a = frame.stack.pop().expect("verified").as_int();
                    frame.stack.push(Value::Bool(a < b));
                }
                RInstr::CmpLe => {
                    let b = frame.stack.pop().expect("verified").as_int();
                    let a = frame.stack.pop().expect("verified").as_int();
                    frame.stack.push(Value::Bool(a <= b));
                }
                RInstr::CmpGt => {
                    let b = frame.stack.pop().expect("verified").as_int();
                    let a = frame.stack.pop().expect("verified").as_int();
                    frame.stack.push(Value::Bool(a > b));
                }
                RInstr::CmpGe => {
                    let b = frame.stack.pop().expect("verified").as_int();
                    let a = frame.stack.pop().expect("verified").as_int();
                    frame.stack.push(Value::Bool(a >= b));
                }
                RInstr::Not => {
                    let a = frame.stack.pop().expect("verified").as_bool();
                    frame.stack.push(Value::Bool(!a));
                }
                RInstr::BoolEq => {
                    let b = frame.stack.pop().expect("verified").as_bool();
                    let a = frame.stack.pop().expect("verified").as_bool();
                    frame.stack.push(Value::Bool(a == b));
                }
                instr @ (RInstr::RefEq | RInstr::RefNe) => {
                    let b = frame.stack.pop().expect("verified");
                    let a = frame.stack.pop().expect("verified");
                    // Plain identity: the leaf path is gated on no lazy
                    // epoch / indirection, so no forwarding word exists.
                    let eq = match (a, b) {
                        (Value::Null, Value::Null) => true,
                        (Value::Ref(x), Value::Ref(y)) => x == y,
                        _ => false,
                    };
                    frame
                        .stack
                        .push(Value::Bool(if matches!(instr, RInstr::RefEq) { eq } else { !eq }));
                }
                RInstr::StrEq => {
                    let b = frame.stack.pop().expect("verified").as_ref_opt();
                    let a = frame.stack.pop().expect("verified").as_ref_opt();
                    let eq = match (a, b) {
                        (None, None) => true,
                        (Some(x), Some(y)) => {
                            x == y || self.heap.read_string(x) == self.heap.read_string(y)
                        }
                        _ => false,
                    };
                    frame.stack.push(Value::Bool(eq));
                }
                RInstr::GetField { offset, is_ref } => {
                    let n = frame.stack.len();
                    let Some(obj) = frame.stack[n - 1].as_ref_opt() else {
                        fail!(VmError::NullPointer { context: "field read".into() });
                    };
                    let word = self.heap.get(obj, *offset as usize);
                    frame.stack.pop();
                    frame.stack.push(Value::from_word(word, *is_ref));
                }
                RInstr::PutField { offset } => {
                    let n = frame.stack.len();
                    let Some(obj) = frame.stack[n - 2].as_ref_opt() else {
                        fail!(VmError::NullPointer { context: "field write".into() });
                    };
                    let val = frame.stack.pop().expect("verified");
                    frame.stack.pop();
                    self.heap.set(obj, *offset as usize, val.to_word());
                }
                RInstr::GetStatic { slot, is_ref } => {
                    let word = self.registry.jtoc_get(*slot);
                    frame.stack.push(Value::from_word(word, *is_ref));
                }
                RInstr::PutStatic { slot } => {
                    let val = frame.stack.pop().expect("verified");
                    self.registry.jtoc_set(*slot, val.to_word());
                }
                RInstr::ALoad => {
                    let idx = frame.stack.pop().expect("verified").as_int();
                    let Some(arr) = frame.stack.pop().expect("verified").as_ref_opt() else {
                        fail!(VmError::NullPointer { context: "array read".into() });
                    };
                    let arr = self.heap.resolve(arr);
                    let len = self.heap.len_of(arr);
                    if idx < 0 || idx as u32 >= len {
                        fail!(VmError::IndexOutOfBounds { index: idx, len });
                    }
                    let is_ref = self.heap.kind(arr) == HeapKind::RefArray;
                    let word = self.heap.get(arr, idx as usize);
                    frame.stack.push(Value::from_word(word, is_ref));
                }
                RInstr::AStore => {
                    let val = frame.stack.pop().expect("verified");
                    let idx = frame.stack.pop().expect("verified").as_int();
                    let Some(arr) = frame.stack.pop().expect("verified").as_ref_opt() else {
                        fail!(VmError::NullPointer { context: "array write".into() });
                    };
                    let arr = self.heap.resolve(arr);
                    let len = self.heap.len_of(arr);
                    if idx < 0 || idx as u32 >= len {
                        fail!(VmError::IndexOutOfBounds { index: idx, len });
                    }
                    self.heap.set(arr, idx as usize, val.to_word());
                }
                RInstr::ArrayLen => {
                    let Some(arr) = frame.stack.pop().expect("verified").as_ref_opt() else {
                        fail!(VmError::NullPointer { context: "array length".into() });
                    };
                    let arr = self.heap.resolve(arr);
                    frame.stack.push(Value::Int(i64::from(self.heap.len_of(arr))));
                }
                RInstr::Pop => {
                    frame.stack.pop().expect("verified");
                }
                RInstr::Dup => {
                    let v = *frame.stack.last().expect("verified");
                    frame.stack.push(v);
                }
                RInstr::Return => break None,
                RInstr::ReturnValue => break Some(frame.stack.pop().expect("verified")),

                RInstr::FusedIncLocal { slot, delta } => {
                    *steps += 3;
                    self.stats.fused_steps += 4;
                    let v = locals[*slot as usize].as_int();
                    locals[*slot as usize] = Value::Int(v.wrapping_add(*delta));
                }
                RInstr::FusedLoadGetField { slot, offset, is_ref } => {
                    let Some(obj) = locals[*slot as usize].as_ref_opt() else {
                        *steps += 1;
                        fail!(VmError::NullPointer { context: "field read".into() });
                    };
                    *steps += 1;
                    self.stats.fused_steps += 2;
                    let word = self.heap.get(obj, *offset as usize);
                    frame.stack.push(Value::from_word(word, *is_ref));
                }
                RInstr::FusedLoadGetFieldReturn { slot, offset, is_ref } => {
                    let Some(obj) = locals[*slot as usize].as_ref_opt() else {
                        *steps += 1;
                        fail!(VmError::NullPointer { context: "field read".into() });
                    };
                    *steps += 2;
                    self.stats.fused_steps += 3;
                    let word = self.heap.get(obj, *offset as usize);
                    break Some(Value::from_word(word, *is_ref));
                }
                RInstr::FusedLoadLoadAdd { a, b } => {
                    *steps += 2;
                    self.stats.fused_steps += 3;
                    let x = locals[*a as usize].as_int();
                    let y = locals[*b as usize].as_int();
                    frame.stack.push(Value::Int(x.wrapping_add(y)));
                }
                RInstr::FusedLoadConstAdd { slot, k } => {
                    *steps += 2;
                    self.stats.fused_steps += 3;
                    let x = locals[*slot as usize].as_int();
                    frame.stack.push(Value::Int(x.wrapping_add(*k)));
                }
                RInstr::FusedLoadConstAddReturn { slot, k } => {
                    *steps += 3;
                    self.stats.fused_steps += 4;
                    let x = locals[*slot as usize].as_int();
                    break Some(Value::Int(x.wrapping_add(*k)));
                }
                RInstr::FusedConstReturn { k } => {
                    *steps += 1;
                    self.stats.fused_steps += 2;
                    break Some(Value::Int(*k));
                }
                RInstr::FusedLoadReturn { slot } => {
                    *steps += 1;
                    self.stats.fused_steps += 2;
                    break Some(locals[*slot as usize]);
                }
                RInstr::FusedLoadStore { from, to } => {
                    *steps += 1;
                    self.stats.fused_steps += 2;
                    locals[*to as usize] = locals[*from as usize];
                }

                other => unreachable!("non-leaf instruction {other:?} in leaf code"),
            }
            pc += 1;
        };

        if let Some(e) = error {
            // Reconstruct the framed trap state for the GC and the heap
            // fingerprint: a framed callee would hold the arguments in
            // its locals (enumerated between the caller's stack and the
            // callee's partial operands), so reinsert them at the same
            // point in root order before surfacing the trap.
            let frame = &mut t.frames[fi];
            let args = &locals[..total];
            frame.stack.splice(stack_base..stack_base, args.iter().copied());
            locals.clear();
            t.leaf_locals = locals;
            return Err(e);
        }
        if let Some(v) = ret {
            frame.stack.push(v);
        }
        debug_assert_eq!(frame.stack.len(), stack_base + usize::from(ret.is_some()));
        locals.clear();
        t.leaf_locals = locals;
        Ok(())
    }

    /// Template-JIT epoch revalidation for the frame `fi` of `t`, called
    /// at method entry/re-entry and on every loop back-edge of fused
    /// code. Fast path: the fused code's cached epoch matches the
    /// registry's — nothing to do. On a mismatch, the frame's code is
    /// checked against the registry: still current (the epoch moved for
    /// an unrelated method) refreshes the cache; replaced deoptimizes
    /// the frame onto the retained base body at the mapped pc — exact
    /// and semantically a no-op, because the base body is the very
    /// stream the fusion was built from (a frame suspended mid-method
    /// keeps pinned stale code in both tiers; the registry's *new* code
    /// takes over at the next call, through the invalidatable dispatch
    /// path). Returns whether the frame was deoptimized (its `compiled`
    /// and `pc` changed).
    fn jit_revalidate(&mut self, t: &mut VmThread, fi: usize) -> bool {
        use std::sync::atomic::Ordering;
        let frame = &t.frames[fi];
        let Some(fused) = frame.compiled.fused.as_ref() else {
            return false;
        };
        let epoch = self.registry.code_epoch();
        if fused.valid_epoch.load(Ordering::Relaxed) == epoch {
            return false;
        }
        let current = self.registry.method(frame.compiled.method).compiled.as_ref();
        if current.is_some_and(|c| Arc::ptr_eq(c, &frame.compiled)) {
            fused.valid_epoch.store(epoch, Ordering::Relaxed);
            return false;
        }
        let (base, pc) = (Arc::clone(&fused.base), fused.base_pc[frame.pc as usize]);
        let f = &mut t.frames[fi];
        f.compiled = base;
        f.pc = pc;
        self.stats.deopts += 1;
        true
    }

    /// Promotes a hot loop mid-method: compiles the frame's method at the
    /// template-JIT tier, publishes it, and swaps the executing frame
    /// onto the fused stream with the pc translated through the fusion
    /// boundary map (the frame's pc is a branch target, which fusion
    /// never swallows). Declines — returning `false` — when the frame is
    /// running stale code (the registry moved on; promoting it would
    /// republish a dead version) or compilation fails.
    fn osr_into_jit(&mut self, t: &mut VmThread, fi: usize) -> bool {
        let mid = t.frames[fi].compiled.method;
        let current = self.registry.method(mid).compiled.as_ref();
        if !current.is_some_and(|c| Arc::ptr_eq(c, &t.frames[fi].compiled)) {
            return false;
        }
        let Ok(fresh) = crate::jit::compile(&self.registry, mid, CompileLevel::Jit, &self.config)
        else {
            return false;
        };
        let fresh = Arc::new(fresh);
        self.stats.jit_compiles += 1;
        self.registry.set_compiled(mid, Arc::clone(&fresh));
        let target = t.frames[fi].pc;
        let new_pc =
            fresh.fused.as_ref().expect("jit code carries a fusion map").fused_index_of(target);
        let f = &mut t.frames[fi];
        f.compiled = fresh;
        f.pc = new_pc;
        true
    }

    /// Lazy object check on every reference load. Three modes:
    ///
    /// * Eager (default): the identity — zero steady-state cost, the
    ///   paper's headline property. Outside an epoch, lazy-migration VMs
    ///   take this same path, which is what `lazybench`'s steady-state
    ///   gate asserts.
    /// * Lazy-migration epoch active: the read barrier
    ///   ([`Vm::barrier_object`]) — duplicate stale objects on first
    ///   touch and hand back their transformer frame to run.
    /// * JDrums/DVM lazy indirection (paper §5 baseline): resolve
    ///   forwarding pointers and apply the default field-copy migration
    ///   on first touch, forever.
    fn lazy_object(&mut self, r: GcRef) -> Lazy {
        if self.lazy.active {
            return self.barrier_object(r);
        }
        if !self.config.lazy_indirection {
            return Lazy::Ready(r);
        }
        let r = self.heap.resolve(r);
        let class = self.heap.class_of(r);
        let Some(&new_class) = self.dsu.lazy_remap.get(&class) else {
            return Lazy::Ready(r);
        };
        // Migrate: allocate the new version, copy same-named same-typed
        // fields (the default transformation, applied in-VM as JDrums
        // does), and leave a forwarding pointer.
        let new_layout_len = self.registry.class(new_class).layout.len();
        let Some(new_obj) = self.heap.alloc_object(new_class, new_layout_len) else {
            return Lazy::NeedGc;
        };
        let old_class_info = self.registry.class(class);
        let new_class_info = self.registry.class(new_class);
        let mut copies: Vec<(usize, usize)> = Vec::new();
        for (old_off, slot) in old_class_info.layout.iter().enumerate() {
            if let Some(new_off) =
                new_class_info.layout.iter().position(|s| s.name == slot.name && s.ty == slot.ty)
            {
                copies.push((old_off, new_off));
            }
        }
        for (old_off, new_off) in copies {
            let w = self.heap.get(r, old_off);
            self.heap.set(new_obj, new_off, w);
        }
        self.heap.install_forward(r, new_obj);
        Lazy::Ready(new_obj)
    }

    /// The lazy-migration read barrier: first touch of a stale object
    /// duplicates it ([`Vm::lazy_dup`]) and returns its object-transformer
    /// frame as [`Lazy::Run`]; everything else is a resolve. The caller
    /// runs the frame with the faulting instruction's pc and stack
    /// untouched, so the access retries against the transformed object —
    /// the same transformer, in the same (new, old-copy) calling
    /// convention, the eager protocol runs from the update log.
    fn barrier_object(&mut self, r: GcRef) -> Lazy {
        let r = self.heap.resolve(r);
        if self.heap.kind(r) != HeapKind::Object {
            return Lazy::Ready(r);
        }
        let class = self.heap.class_of(r);
        if !self.lazy.remap.contains_key(&class) || self.lazy.old_copies.contains(&r.0) {
            // Old copies keep their stale class on purpose: transformers
            // read them with old offsets, and migrating one would recurse
            // forever.
            return Lazy::Ready(r);
        }
        if self.dsu.in_progress.len() >= MAX_TRANSFORMER_DEPTH {
            return Lazy::Trap(VmError::TransformerDepthExceeded {
                limit: MAX_TRANSFORMER_DEPTH,
            });
        }
        let Some((old_copy, new_obj)) = self.lazy_dup(r) else {
            return Lazy::NeedGc;
        };
        let new_class = self.heap.class_of(new_obj);
        let Some(&mid) = self.dsu.transformer_for.get(&new_class) else {
            return Lazy::Trap(VmError::Internal {
                message: format!(
                    "read barrier: no object transformer for {}",
                    self.registry.class(new_class).name
                ),
            });
        };
        let compiled = match self.compiled_for(mid) {
            Ok(c) => c,
            Err(e) => return Lazy::Trap(e),
        };
        self.dsu.in_progress.insert(new_obj.0);
        let mut frame = match Frame::new(compiled, &[Value::Ref(new_obj), Value::Ref(old_copy)]) {
            Ok(f) => f,
            Err(e) => return Lazy::Trap(e),
        };
        frame.note = Some(FrameNote::TransformOf(new_obj.0));
        Lazy::Run(Box::new(frame))
    }

    /// Executes a native call. Arguments are *peeked* (not popped) so
    /// blocking/GC outcomes can retry with an intact stack.
    fn exec_native(&mut self, t: &mut VmThread, fi: usize, native: NativeFn, argc: usize) -> NOut {
        let frame = &t.frames[fi];
        let n = frame.stack.len();
        let arg = |i: usize| frame.stack[n - argc + i];

        macro_rules! str_arg {
            ($i:expr) => {
                match arg($i).as_ref_opt() {
                    Some(r) => self.heap.read_string(self.heap.resolve(r)),
                    None => {
                        return NOut::Trap(VmError::NullPointer {
                            context: format!("native {:?}", native),
                        })
                    }
                }
            };
        }

        match native {
            NativeFn::SysPrint => {
                let s = str_arg!(0);
                if self.config.echo_output {
                    println!("{s}");
                }
                self.output.push(s);
                NOut::Val(None)
            }
            NativeFn::SysPrintInt => {
                let v = arg(0).as_int();
                if self.config.echo_output {
                    println!("{v}");
                }
                self.output.push(v.to_string());
                NOut::Val(None)
            }
            NativeFn::SysTime => NOut::Val(Some(Value::Int(self.tick as i64))),
            NativeFn::SysSleep => {
                let ms = arg(0).as_int().max(0) as u64;
                NOut::BlockAfter(BlockOn::SleepUntil(self.tick + ms))
            }
            NativeFn::SysRand => {
                let bound = arg(0).as_int();
                self.rng_state ^= self.rng_state << 13;
                self.rng_state ^= self.rng_state >> 7;
                self.rng_state ^= self.rng_state << 17;
                let v = if bound <= 0 { 0 } else { (self.rng_state % bound as u64) as i64 };
                NOut::Val(Some(Value::Int(v)))
            }
            NativeFn::SysYield => NOut::Yield,
            NativeFn::SysThreadId => NOut::Val(Some(Value::Int(i64::from(t.id.0)))),
            NativeFn::SysSpawn => {
                let Some(obj) = arg(0).as_ref_opt() else {
                    return NOut::Trap(VmError::NullPointer { context: "Sys.spawn".into() });
                };
                let obj = self.heap.resolve(obj);
                if self.heap.kind(obj) != HeapKind::Object {
                    return NOut::Trap(VmError::Internal {
                        message: "Sys.spawn target is not an object".into(),
                    });
                }
                // Spawning a stale receiver mid-epoch would look run() up
                // on the stripped old class: migrate it first, retrying
                // the native after the transformer runs.
                if self.lazy.active {
                    match self.barrier_object(obj) {
                        Lazy::Ready(_) => {}
                        Lazy::NeedGc => return NOut::NeedGc,
                        Lazy::Run(f) => return NOut::Barrier(f),
                        Lazy::Trap(e) => return NOut::Trap(e),
                    }
                }
                let obj = self.heap.resolve(obj);
                let class = self.heap.class_of(obj);
                let Some(vslot) = self.registry.vslot(class, "run") else {
                    return NOut::Trap(VmError::ResolutionError {
                        message: format!(
                            "Sys.spawn: class {} has no run() method",
                            self.registry.class(class).name
                        ),
                    });
                };
                let Some(&mid) = self.registry.class(class).tib.get(vslot as usize) else {
                    return NOut::Trap(VmError::Internal {
                        message: format!(
                            "Sys.spawn: TIB slot {vslot} missing on {} — stale compiled code?",
                            self.registry.class(class).name
                        ),
                    });
                };
                let compiled = match self.compiled_for(mid) {
                    Ok(c) => c,
                    Err(e) => return NOut::Trap(e),
                };
                let new_frame = match Frame::new(compiled, &[Value::Ref(obj)]) {
                    Ok(f) => f,
                    Err(e) => return NOut::Trap(e),
                };
                let name = format!("{}::run", self.registry.class(class).name);
                let tid = self.add_thread(name, new_frame);
                NOut::Val(Some(Value::Int(i64::from(tid.0))))
            }

            NativeFn::StrLen => {
                let s = str_arg!(0);
                NOut::Val(Some(Value::Int(s.len() as i64)))
            }
            NativeFn::StrSubstr => {
                let s = str_arg!(0);
                let from = arg(1).as_int();
                let to = arg(2).as_int();
                if from < 0 || to < from || to as usize > s.len() {
                    return NOut::Trap(VmError::IndexOutOfBounds {
                        index: to,
                        len: s.len() as u32,
                    });
                }
                match self.heap.alloc_string(&s[from as usize..to as usize]) {
                    Some(r) => NOut::Val(Some(Value::Ref(r))),
                    None => NOut::NeedGc,
                }
            }
            NativeFn::StrIndexOf => {
                let s = str_arg!(0);
                let needle = str_arg!(1);
                let idx = s.find(&needle).map_or(-1, |i| i as i64);
                NOut::Val(Some(Value::Int(idx)))
            }
            NativeFn::StrSplit => {
                let s = str_arg!(0);
                let sep = str_arg!(1);
                let parts: Vec<&str> =
                    if sep.is_empty() { vec![s.as_str()] } else { s.split(&sep).collect() };
                let Some(arr) = self.heap.alloc_array(true, parts.len()) else {
                    return NOut::NeedGc;
                };
                for (i, p) in parts.iter().enumerate() {
                    let Some(r) = self.heap.alloc_string(p) else {
                        return NOut::NeedGc;
                    };
                    self.heap.set(arr, i, u64::from(r.0));
                }
                NOut::Val(Some(Value::Ref(arr)))
            }
            NativeFn::StrFromInt => {
                let v = arg(0).as_int();
                match self.heap.alloc_string(&v.to_string()) {
                    Some(r) => NOut::Val(Some(Value::Ref(r))),
                    None => NOut::NeedGc,
                }
            }
            NativeFn::StrToInt => {
                let s = str_arg!(0);
                // Lenient parse: invalid input yields 0 (documented).
                let v = s.trim().parse::<i64>().unwrap_or(0);
                NOut::Val(Some(Value::Int(v)))
            }
            NativeFn::StrCharAt => {
                let s = str_arg!(0);
                let i = arg(1).as_int();
                if i < 0 || i as usize >= s.len() {
                    return NOut::Trap(VmError::IndexOutOfBounds { index: i, len: s.len() as u32 });
                }
                NOut::Val(Some(Value::Int(i64::from(s.as_bytes()[i as usize]))))
            }
            NativeFn::StrContains => {
                let s = str_arg!(0);
                let needle = str_arg!(1);
                NOut::Val(Some(Value::Bool(s.contains(&needle))))
            }
            NativeFn::StrStartsWith => {
                let s = str_arg!(0);
                let prefix = str_arg!(1);
                NOut::Val(Some(Value::Bool(s.starts_with(&prefix))))
            }
            NativeFn::StrTrim => {
                let s = str_arg!(0);
                match self.heap.alloc_string(s.trim()) {
                    Some(r) => NOut::Val(Some(Value::Ref(r))),
                    None => NOut::NeedGc,
                }
            }

            NativeFn::NetListen => {
                let port = arg(0).as_int();
                let id = self.net.listen(port as u16);
                NOut::Val(Some(Value::Int(id as i64)))
            }
            NativeFn::NetAccept => {
                let listener = arg(0).as_int() as usize;
                match self.net.try_accept(listener) {
                    Some(conn) => NOut::Val(Some(Value::Int(conn as i64))),
                    None => NOut::Block(BlockOn::Accept(listener)),
                }
            }
            NativeFn::NetTryAccept => {
                let listener = arg(0).as_int() as usize;
                let conn = self.net.try_accept(listener).map_or(-1, |c| c as i64);
                NOut::Val(Some(Value::Int(conn)))
            }
            NativeFn::NetReadLine => {
                let conn = arg(0).as_int() as usize;
                if !self.net.guest_readable(conn) {
                    return NOut::Block(BlockOn::ReadLine(conn));
                }
                match self.net.guest_read(conn) {
                    crate::net::GuestRead::Line(line) => match self.heap.alloc_string(&line) {
                        Some(r) => NOut::Val(Some(Value::Ref(r))),
                        None => {
                            self.net.guest_unread(conn, line);
                            NOut::NeedGc
                        }
                    },
                    crate::net::GuestRead::Eof => NOut::Val(Some(Value::Null)),
                    crate::net::GuestRead::WouldBlock => NOut::Block(BlockOn::ReadLine(conn)),
                }
            }
            NativeFn::NetWrite => {
                let conn = arg(0).as_int() as usize;
                let line = str_arg!(1);
                self.net.guest_write(conn, line);
                NOut::Val(None)
            }
            NativeFn::NetClose => {
                let conn = arg(0).as_int() as usize;
                self.net.guest_close(conn);
                NOut::Val(None)
            }

            NativeFn::DsuForceTransform => {
                let Some(obj) = arg(0).as_ref_opt() else {
                    return NOut::Val(None);
                };
                let obj = self.heap.resolve(obj);
                if self.heap.kind(obj) != HeapKind::Object {
                    return NOut::Val(None);
                }
                let addr = obj.0;
                if self.dsu.done.contains(&addr) {
                    return NOut::Val(None);
                }
                if !self.dsu.index_of.contains_key(&addr) {
                    // Mid-lazy-epoch an *untouched* stale object has no
                    // logged pair yet: duplicate and transform it now,
                    // retrying the native afterwards — the lazy analogue
                    // of forcing an entry out of the eager update log.
                    if self.lazy.stale_target(self.heap.class_of(obj)).is_some()
                        && !self.lazy.old_copies.contains(&addr)
                    {
                        return match self.barrier_object(obj) {
                            Lazy::Ready(_) => NOut::Val(None),
                            Lazy::NeedGc => NOut::NeedGc,
                            Lazy::Run(f) => NOut::Barrier(f),
                            Lazy::Trap(e) => NOut::Trap(e),
                        };
                    }
                    return NOut::Val(None);
                }
                if self.dsu.in_progress.contains(&addr) {
                    // Recursive transformation of an in-flight object:
                    // ill-defined transformer set (paper §3.4 aborts).
                    return NOut::Trap(VmError::TransformerCycle);
                }
                if self.dsu.in_progress.len() >= MAX_TRANSFORMER_DEPTH {
                    return NOut::Trap(VmError::TransformerDepthExceeded {
                        limit: MAX_TRANSFORMER_DEPTH,
                    });
                }
                let i = self.dsu.index_of[&addr];
                let (old, new) = self.dsu.pending[i];
                let class = self.heap.class_of(new);
                let Some(&mid) = self.dsu.transformer_for.get(&class) else {
                    return NOut::Trap(VmError::Internal {
                        message: "forceTransform: no transformer for class".into(),
                    });
                };
                let compiled = match self.compiled_for(mid) {
                    Ok(c) => c,
                    Err(e) => return NOut::Trap(e),
                };
                self.dsu.in_progress.insert(addr);
                let mut new_frame = match Frame::new(compiled, &[Value::Ref(new), Value::Ref(old)])
                {
                    Ok(f) => f,
                    Err(e) => return NOut::Trap(e),
                };
                new_frame.note = Some(FrameNote::TransformOf(addr));
                NOut::Frame(Box::new(new_frame))
            }
            NativeFn::DsuUpdateCount => {
                NOut::Val(Some(Value::Int(self.dsu.update_count as i64)))
            }
        }
    }
}

/// Marker so `STRING_CLASS` stays referenced (string cells carry their own
/// heap kind rather than a class id).
#[allow(dead_code)]
const _STRING: &str = STRING_CLASS;
