//! Green threads and activation frames.

use std::sync::Arc;

use crate::compiled::CompiledMethod;
use crate::error::VmError;
use crate::icache::InlineCaches;
use crate::ids::{MethodId, ThreadId};
use crate::value::Value;

/// Recycled `(locals, stack)` vectors kept per thread beyond this count
/// are dropped instead of pooled.
pub(crate) const FRAME_POOL_CAP: usize = 32;

/// One activation record.
///
/// Because locals and operand-stack slots are tagged [`Value`]s, every
/// frame *is* a precise stack map: the GC enumerates reference slots
/// directly, standing in for the per-safe-point stack maps the paper's
/// compiler emits.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The executing method.
    pub method: MethodId,
    /// The resolved code this frame runs. An OSR replaces this `Arc` (and
    /// nothing else — base-tier code is 1:1 with bytecode, so `pc` and
    /// `locals` carry over).
    pub compiled: Arc<CompiledMethod>,
    /// Next instruction index.
    pub pc: u32,
    /// Local variable slots.
    pub locals: Vec<Value>,
    /// Operand stack.
    pub stack: Vec<Value>,
    /// Return barrier (paper §3.2): when set, returning from this frame
    /// pauses the thread and notifies the update driver so it can re-check
    /// for a DSU safe point.
    pub return_barrier: bool,
    /// Bookkeeping attached by the VM, processed when the frame returns.
    pub note: Option<FrameNote>,
}

impl Frame {
    /// Creates a frame for `compiled` with arguments in the leading locals.
    ///
    /// # Errors
    ///
    /// Traps with [`VmError::Internal`] when `args` exceeds the `u16`
    /// local-slot space instead of silently truncating the count.
    pub fn new(compiled: Arc<CompiledMethod>, args: &[Value]) -> Result<Frame, VmError> {
        let argc = u16::try_from(args.len()).map_err(|_| VmError::Internal {
            message: format!(
                "{} arguments overflow the frame's local slots (max {})",
                args.len(),
                u16::MAX
            ),
        })?;
        let mut locals = vec![Value::Null; compiled.max_locals.max(argc) as usize];
        locals[..args.len()].copy_from_slice(args);
        Ok(Frame {
            method: compiled.method,
            compiled,
            pc: 0,
            locals,
            stack: Vec::with_capacity(8),
            return_barrier: false,
            note: None,
        })
    }
}

/// VM-internal bookkeeping attached to frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameNote {
    /// This frame runs an object transformer for the object at the given
    /// heap address; on return the object is marked transformed.
    TransformOf(u32),
}

/// What a blocked thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockOn {
    /// `Net.accept` on a listener with an empty backlog.
    Accept(usize),
    /// `Net.readLine` on a connection with no queued data.
    ReadLine(usize),
    /// `Sys.sleep` until the given scheduler tick.
    SleepUntil(u64),
}

/// Scheduler-visible thread state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible to run.
    Runnable,
    /// Parked on a resource; the scheduler polls for wake-up.
    Blocked(BlockOn),
    /// Ran to completion.
    Finished,
    /// Died with a trap.
    Trapped(crate::error::VmError),
}

/// A green thread.
#[derive(Debug)]
pub struct VmThread {
    /// Identifier.
    pub id: ThreadId,
    /// Debug name.
    pub name: String,
    /// Activation stack, innermost last.
    pub frames: Vec<Frame>,
    /// Scheduler state.
    pub state: ThreadState,
    /// Value returned by the outermost frame, once finished (used by
    /// synchronous host-initiated calls).
    pub result: Option<Value>,
    /// Per-thread inline caches for call dispatch (epoch-guarded; see
    /// [`crate::icache`]). Thread-local so `CompiledMethod` stays
    /// shareable and no synchronization touches the call fast path.
    pub(crate) ic: InlineCaches,
    /// Recycled `(locals, stack)` vectors from popped frames, so a call
    /// in steady state reuses allocations instead of making fresh ones.
    /// Always cleared before pooling — the GC scans only live frames.
    pub(crate) pool: Vec<(Vec<Value>, Vec<Value>)>,
    /// Scratch locals for the template JIT's leaf-call fast path, which
    /// executes a small callee without pushing a [`Frame`]. Always drained
    /// back to empty before the fast path returns, so the GC (which scans
    /// only `frames`) never needs to see it.
    pub(crate) leaf_locals: Vec<Value>,
}

impl VmThread {
    /// Creates a runnable thread with one initial frame.
    pub fn new(id: ThreadId, name: impl Into<String>, frame: Frame) -> VmThread {
        VmThread {
            id,
            name: name.into(),
            frames: vec![frame],
            state: ThreadState::Runnable,
            result: None,
            ic: InlineCaches::default(),
            pool: Vec::new(),
            leaf_locals: Vec::new(),
        }
    }

    /// Whether the thread can still make progress.
    pub fn is_live(&self) -> bool {
        matches!(self.state, ThreadState::Runnable | ThreadState::Blocked(_))
    }

    /// Method ids currently on the activation stack (outermost first).
    pub fn stack_methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.frames.iter().map(|f| f.method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::{CompileLevel, RInstr};

    fn dummy_compiled(max_locals: u16) -> Arc<CompiledMethod> {
        Arc::new(CompiledMethod {
            method: MethodId(0),
            level: CompileLevel::Base,
            code: vec![RInstr::Return],
            max_locals,
            inlined: vec![],
            referenced_classes: vec![],
            invocations: Default::default(),
            loop_trips: Default::default(),
            call_sites: 0,
            fused: None,
            leaf: false,
        })
    }

    #[test]
    fn frame_seeds_arguments() {
        let f = Frame::new(dummy_compiled(4), &[Value::Int(7), Value::Bool(true)]).unwrap();
        assert_eq!(f.locals.len(), 4);
        assert_eq!(f.locals[0], Value::Int(7));
        assert_eq!(f.locals[1], Value::Bool(true));
        assert_eq!(f.locals[2], Value::Null);
    }

    #[test]
    fn frame_rejects_oversized_argument_lists() {
        let args = vec![Value::Int(0); usize::from(u16::MAX) + 1];
        let err = Frame::new(dummy_compiled(0), &args).unwrap_err();
        assert!(matches!(err, VmError::Internal { .. }), "{err}");
    }

    #[test]
    fn thread_liveness() {
        let frame = Frame::new(dummy_compiled(0), &[]).unwrap();
        let mut t = VmThread::new(ThreadId(0), "main", frame);
        assert!(t.is_live());
        t.state = ThreadState::Finished;
        assert!(!t.is_live());
    }
}
