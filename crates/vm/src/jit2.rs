//! Template-JIT tier: superinstruction fusion over resolved [`RInstr`]
//! streams.
//!
//! The third execution tier. Hot methods (promoted by invocation counts
//! plus loop-trip counts, see [`VmConfig::jit_threshold`]) are recompiled
//! by peephole-fusing high-frequency pairs/triples/quads of base-resolved
//! instructions into single *superinstructions* — e.g. `Load x; GetField
//! off` becomes one `FusedLoadGetField { slot, offset }` op. The fused
//! stream is still a `Vec<RInstr>` executed by the interpreter's dense
//! `match` (which compiles to a jump table), so one fused op costs one
//! dispatch where the base stream paid two to four.
//!
//! # Why this still counts as "JIT" for the paper's purposes
//!
//! What makes Jvolve's update model VM-centric is that compiled code
//! *bakes in* resolved offsets, dispatch slots, and direct-call targets,
//! forcing the update protocol to invalidate and recompile (paper §3.2).
//! Fused code bakes in exactly those operands — a `FusedLoadGetField`
//! carries a physical word offset, a `FusedLoadCallDirect` a concrete
//! [`MethodId`] — so the DSU constraint stays load-bearing: the tier
//! revalidates against [`Registry::code_epoch`] at method entry and loop
//! back-edges, and **deopts** to freshly compiled base code mid-method
//! when its method was invalidated or replaced.
//!
//! # Deopt / OSR mapping
//!
//! [`FusedCode::base_pc`] maps every fused index to the base pc of the
//! first base instruction it covers (identity for unfused ops). The
//! vector is non-decreasing, so the reverse direction (base pc → fused
//! index, needed by OSR-in at a back-edge) is a binary search. Fusion
//! never crosses a branch target, so every branch target is an op
//! boundary and both directions are exact at the pcs that matter:
//! a frame stopped at any fused-op boundary reconstructs at the recorded
//! base pc with identical locals and operand stack (fused ops only ever
//! retire whole base-instruction groups; they never publish intermediate
//! stack states at a yield or trap point).
//!
//! What is **not** fused: allocating ops (`New`, `NewArray`, `ConstStr`,
//! `StrConcat`) because they can trigger GC mid-op; unconditional `Jump`
//! because the loop back-edge is the interpreter's yield point and the
//! jit tier's epoch-revalidation point, and keeping it a plain op keeps
//! that logic in one arm; and anything spanning a branch target.
//!
//! [`RInstr`]: crate::compiled::RInstr
//! [`MethodId`]: crate::ids::MethodId
//! [`VmConfig::jit_threshold`]: crate::config::VmConfig::jit_threshold
//! [`Registry::code_epoch`]: crate::registry::Registry::code_epoch

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use crate::compiled::{CompiledMethod, RInstr};

/// Integer comparison baked into a fused compare-and-branch op.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison.
    #[inline]
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Fusion metadata attached to a [`CompileLevel::Jit`] body.
///
/// The fused stream itself lives in [`CompiledMethod::code`] — the
/// interpreter's existing dispatch executes it directly. This struct
/// carries what the *update* machinery needs: the retained base body,
/// the deopt mapping, and the epoch-revalidation cache.
///
/// [`CompileLevel::Jit`]: crate::compiled::CompileLevel::Jit
/// [`CompiledMethod::code`]: crate::compiled::CompiledMethod::code
#[derive(Debug)]
pub struct FusedCode {
    /// The 1:1 base body the fused stream was built from, compiled
    /// against the same registry snapshot. Deopt swaps a fused frame onto
    /// this body at the mapped pc — semantically a no-op (same resolved
    /// stream, just unfused), so a mid-method deopt is *always* safe no
    /// matter how the registry changed underneath. Bringing the method's
    /// code up to date stays the update protocol's job (controller OSR at
    /// safe points, recompile on next call), exactly as for stale base
    /// frames in the jit-off VM.
    pub base: Arc<CompiledMethod>,
    /// Fused index → base pc of the first covered base instruction.
    /// Same length as the fused stream; non-decreasing.
    pub base_pc: Vec<u32>,
    /// The last [`Registry::code_epoch`] at which this body was observed
    /// to still be the method's installed code. Method entry and loop
    /// back-edges compare this against the current epoch with one relaxed
    /// load; on mismatch the interpreter re-checks the registry and
    /// either refreshes this cache (the epoch bump was unrelated — e.g.
    /// some *other* method got recompiled) or deopts. Without this cache
    /// every unrelated recompile anywhere in the VM would permanently
    /// kick every fused frame back to base code.
    ///
    /// [`Registry::code_epoch`]: crate::registry::Registry::code_epoch
    pub valid_epoch: AtomicU64,
    /// Number of superinstructions in the fused stream (the rest are
    /// passed-through base ops). Drives the fusion-coverage stat.
    pub fused_count: u32,
}

impl FusedCode {
    /// Fused index whose op *starts at* base pc `base` — exact lookup;
    /// panics if `base` is not an op boundary. Callers only translate
    /// branch targets and OSR entry pcs, which fusion guarantees are
    /// boundaries.
    pub fn fused_index_of(&self, base: u32) -> u32 {
        fused_index_of(&self.base_pc, base)
    }
}

/// Exact reverse lookup in a fused-index → base-pc map; panics if `base`
/// is not an op boundary (see [`FusedCode::fused_index_of`]).
pub fn fused_index_of(map: &[u32], base: u32) -> u32 {
    map.binary_search(&base)
        .unwrap_or_else(|_| panic!("base pc {base} is not a fused-op boundary")) as u32
}

/// Raw output of the fusion pass, assembled into a [`FusedCode`] (plus
/// the retained base body) by the JIT driver in [`crate::jit`].
#[derive(Debug)]
pub struct Fusion {
    /// The fused stream (branch targets already remapped to fused
    /// indices).
    pub code: Vec<RInstr>,
    /// Fused index → base pc of the first covered base instruction.
    pub base_pc: Vec<u32>,
    /// Number of superinstructions emitted.
    pub fused_count: u32,
}

/// Longest-first peephole match at `i`. Returns the superinstruction and
/// how many base instructions it covers. A candidate is rejected if any
/// *interior* pc is a branch target (the target must stay addressable);
/// `i` itself being a target is fine — the fused op starts there.
fn try_fuse(base: &[RInstr], i: usize, target: &[bool]) -> Option<(RInstr, usize)> {
    use RInstr::*;
    let clear = |n: usize| i + n <= base.len() && (i + 1..i + n).all(|p| !target[p]);
    let cmp_of = |ins: &RInstr| match ins {
        CmpEq => Some(CmpOp::Eq),
        CmpNe => Some(CmpOp::Ne),
        CmpLt => Some(CmpOp::Lt),
        CmpLe => Some(CmpOp::Le),
        CmpGt => Some(CmpOp::Gt),
        CmpGe => Some(CmpOp::Ge),
        _ => None,
    };
    let br_of = |ins: &RInstr| match ins {
        JumpIfTrue(t) => Some((true, *t)),
        JumpIfFalse(t) => Some((false, *t)),
        _ => None,
    };

    // --- quads ---
    if let [Load(s), ConstInt(k), rest @ ..] = &base[i..] {
        if clear(4) {
            match rest {
                [Add, Store(d), ..] if d == s => {
                    return Some((FusedIncLocal { slot: *s, delta: *k }, 4));
                }
                [Add, ReturnValue, ..] => {
                    return Some((FusedLoadConstAddReturn { slot: *s, k: *k }, 4));
                }
                [c, b, ..] => {
                    if let (Some(op), Some((when, t))) = (cmp_of(c), br_of(b)) {
                        return Some(
                            (FusedLoadConstCmpBr { slot: *s, k: *k, op, when, target: t }, 4),
                        );
                    }
                }
                _ => {}
            }
        }
    }
    if let [Load(a), Load(b), c, j, ..] = &base[i..] {
        if clear(4) {
            if let (Some(op), Some((when, t))) = (cmp_of(c), br_of(j)) {
                return Some((FusedLoadLoadCmpBr { a: *a, b: *b, op, when, target: t }, 4));
            }
        }
    }

    // --- triples ---
    if clear(3) {
        match &base[i..] {
            [Load(s), GetField { offset, is_ref }, ReturnValue, ..] => {
                return Some(
                    (FusedLoadGetFieldReturn { slot: *s, offset: *offset, is_ref: *is_ref }, 3),
                );
            }
            [Load(a), Load(b), Add, ..] => {
                return Some((FusedLoadLoadAdd { a: *a, b: *b }, 3));
            }
            [Load(s), ConstInt(k), Add, ..] => {
                return Some((FusedLoadConstAdd { slot: *s, k: *k }, 3));
            }
            [ConstInt(k), c, b, ..] => {
                if let (Some(op), Some((when, t))) = (cmp_of(c), br_of(b)) {
                    return Some((FusedStackConstCmpBr { k: *k, op, when, target: t }, 3));
                }
            }
            _ => {}
        }
    }

    // --- pairs ---
    if clear(2) {
        match &base[i..] {
            [Load(s), GetField { offset, is_ref }, ..] => {
                return Some((FusedLoadGetField { slot: *s, offset: *offset, is_ref: *is_ref }, 2));
            }
            [Load(s), CallVirtual { vslot, argc: 0, site }, ..] => {
                return Some((FusedLoadCallVirtual { slot: *s, vslot: *vslot, site: *site }, 2));
            }
            [Load(s), CallDirect { method, argc, has_receiver, site }, ..] => {
                return Some((
                    FusedLoadCallDirect {
                        slot: *s,
                        method: *method,
                        argc: *argc,
                        has_receiver: *has_receiver,
                        site: *site,
                    },
                    2,
                ));
            }
            [Load(s), ReturnValue, ..] => return Some((FusedLoadReturn { slot: *s }, 2)),
            [Load(f), Store(t), ..] => return Some((FusedLoadStore { from: *f, to: *t }, 2)),
            [ConstInt(k), ReturnValue, ..] => return Some((FusedConstReturn { k: *k }, 2)),
            _ => {}
        }
    }
    None
}

/// Peephole-fuses a 1:1 base-resolved stream into superinstruction
/// threaded code. Returns the fused stream (branch targets remapped to
/// fused indices) with its deopt mapping.
pub fn fuse(base: &[RInstr]) -> Fusion {
    use RInstr::*;
    // Branch targets force op boundaries so they stay addressable after
    // fusion (and so the deopt mapping is exact wherever control lands).
    let mut target = vec![false; base.len() + 1];
    for ins in base {
        if let Jump(t) | JumpIfTrue(t) | JumpIfFalse(t) = ins {
            target[*t as usize] = true;
        }
    }

    let mut out = Vec::with_capacity(base.len());
    let mut base_pc = Vec::with_capacity(base.len());
    // Base boundary pc → fused index, for the branch-target fixup pass.
    let mut fused_of = vec![u32::MAX; base.len() + 1];
    let mut fused_count = 0u32;
    let mut i = 0;
    while i < base.len() {
        fused_of[i] = out.len() as u32;
        base_pc.push(i as u32);
        match try_fuse(base, i, &target) {
            Some((op, n)) => {
                out.push(op);
                fused_count += 1;
                i += n;
            }
            None => {
                out.push(base[i].clone());
                i += 1;
            }
        }
    }
    fused_of[base.len()] = out.len() as u32;

    // Fixup: branch targets were base pcs; rewrite them as fused indices.
    // Every target is a boundary (forced above), so the map is defined.
    for ins in &mut out {
        match ins {
            Jump(t) | JumpIfTrue(t) | JumpIfFalse(t) => {
                debug_assert_ne!(fused_of[*t as usize], u32::MAX);
                *t = fused_of[*t as usize];
            }
            FusedLoadLoadCmpBr { target: t, .. }
            | FusedLoadConstCmpBr { target: t, .. }
            | FusedStackConstCmpBr { target: t, .. } => {
                debug_assert_ne!(fused_of[*t as usize], u32::MAX);
                *t = fused_of[*t as usize];
            }
            _ => {}
        }
    }

    Fusion { code: out, base_pc, fused_count }
}

/// Longest body eligible for the leaf-call fast path.
const LEAF_MAX_LEN: usize = 16;

/// Whether a (possibly fused) body qualifies for the leaf-call fast
/// path: short, straight-line, allocation- and call-free code a fused
/// caller's inline-cache hit may execute without pushing a frame. The
/// whitelist is exactly the op set the interpreter's leaf mini-loop
/// implements; anything else (branches, calls, allocation, string
/// concat) disqualifies the body.
pub fn is_leaf(code: &[RInstr]) -> bool {
    use RInstr::*;
    code.len() <= LEAF_MAX_LEN
        && code.iter().all(|ins| {
            matches!(
                ins,
                ConstInt(_)
                    | ConstBool(_)
                    | ConstNull
                    | Load(_)
                    | Store(_)
                    | Add
                    | Sub
                    | Mul
                    | Div
                    | Rem
                    | Neg
                    | CmpEq
                    | CmpNe
                    | CmpLt
                    | CmpLe
                    | CmpGt
                    | CmpGe
                    | Not
                    | BoolEq
                    | RefEq
                    | RefNe
                    | StrEq
                    | GetField { .. }
                    | PutField { .. }
                    | GetStatic { .. }
                    | PutStatic { .. }
                    | ALoad
                    | AStore
                    | ArrayLen
                    | Pop
                    | Dup
                    | Return
                    | ReturnValue
                    | FusedIncLocal { .. }
                    | FusedLoadGetField { .. }
                    | FusedLoadGetFieldReturn { .. }
                    | FusedLoadLoadAdd { .. }
                    | FusedLoadConstAdd { .. }
                    | FusedLoadConstAddReturn { .. }
                    | FusedConstReturn { .. }
                    | FusedLoadReturn { .. }
                    | FusedLoadStore { .. }
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use RInstr::*;

    #[test]
    fn getter_fuses_to_a_single_superinstruction() {
        // `int area() { return this.side; }` — Load 0, GetField, ReturnValue.
        let base =
            vec![Load(0), GetField { offset: 0, is_ref: false }, ReturnValue];
        let f = fuse(&base);
        assert_eq!(
            f.code,
            vec![FusedLoadGetFieldReturn { slot: 0, offset: 0, is_ref: false }]
        );
        assert_eq!(f.base_pc, vec![0]);
        assert_eq!(f.fused_count, 1);
        assert!(is_leaf(&f.code));
    }

    #[test]
    fn counted_loop_fuses_guard_increment_and_keeps_backedge_plain() {
        // i = 0; while (i < n) { acc = acc + i; i = i + 1; } return acc;
        //  0 ConstInt 0      — i = 0
        //  1 Store 1
        //  2 Load 1          — guard: i < n
        //  3 Load 0
        //  4 CmpLt
        //  5 JumpIfFalse 15
        //  6 Load 2          — acc = acc + i
        //  7 Load 1
        //  8 Add
        //  9 Store 2
        // 10 Load 1          — i = i + 1
        // 11 ConstInt 1
        // 12 Add
        // 13 Store 1
        // 14 Jump 2
        // 15 Load 2
        // 16 ReturnValue
        let base = vec![
            ConstInt(0),
            Store(1),
            Load(1),
            Load(0),
            CmpLt,
            JumpIfFalse(15),
            Load(2),
            Load(1),
            Add,
            Store(2),
            Load(1),
            ConstInt(1),
            Add,
            Store(1),
            Jump(2),
            Load(2),
            ReturnValue,
        ];
        let f = fuse(&base);
        assert_eq!(
            f.code,
            vec![
                ConstInt(0),
                Store(1),
                // guard at base pc 2 (a branch target, so it starts an op)
                FusedLoadLoadCmpBr { a: 1, b: 0, op: CmpOp::Lt, when: false, target: 7 },
                FusedLoadLoadAdd { a: 2, b: 1 },
                Store(2),
                FusedIncLocal { slot: 1, delta: 1 },
                // the back-edge stays a plain Jump — it is the yield and
                // epoch-revalidation point — retargeted to fused index 2
                Jump(2),
                FusedLoadReturn { slot: 2 },
            ]
        );
        assert_eq!(f.base_pc, vec![0, 1, 2, 6, 9, 10, 14, 15]);
        assert_eq!(f.fused_count, 4);
        // The loop-exit target (base 15) resolved to fused index 7.
        assert_eq!(fused_index_of(&f.base_pc, 15), 7);
        assert_eq!(fused_index_of(&f.base_pc, 2), 2);
    }

    #[test]
    fn interior_branch_target_blocks_fusion() {
        // Load 0 / ReturnValue would fuse, but pc 2 (the ReturnValue) is
        // a jump target *interior* to the candidate, so the pair must
        // stay split. Contrast: a target at the candidate's *first* pc is
        // fine — the fused op starts there (see the counted-loop guard).
        let base = vec![JumpIfTrue(2), Load(0), ReturnValue, Jump(2)];
        let f = fuse(&base);
        assert_eq!(f.code[1], Load(0));
        assert_eq!(f.code[2], ReturnValue);
        assert_eq!(f.fused_count, 0);
        assert_eq!(f.base_pc, vec![0, 1, 2, 3]);
        // Both branches retarget to the (unchanged) fused index 2.
        assert_eq!(f.code[0], JumpIfTrue(2));
        assert_eq!(f.code[3], Jump(2));
    }

    #[test]
    fn base_pc_mapping_is_nondecreasing_and_covers_the_stream() {
        let base = vec![
            Load(0),
            GetField { offset: 1, is_ref: false },
            Load(1),
            ConstInt(3),
            Add,
            ReturnValue,
        ];
        let f = fuse(&base);
        assert_eq!(f.code.len(), f.base_pc.len());
        assert!(f.base_pc.windows(2).all(|w| w[0] < w[1]));
        assert!(f.base_pc.iter().all(|&p| (p as usize) < base.len()));
    }

    #[test]
    fn leaf_rejects_calls_branches_and_allocation() {
        assert!(is_leaf(&[Load(0), ReturnValue]));
        assert!(!is_leaf(&[Jump(0)]));
        assert!(!is_leaf(&[CallVirtual { vslot: 0, argc: 0, site: 0 }, Return]));
        assert!(!is_leaf(&[New { class: crate::ids::ClassId(0), size: 2 }, Return]));
        assert!(!is_leaf(&[StrConcat, Return]));
        assert!(!is_leaf(&vec![Pop; LEAF_MAX_LEN + 1]));
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Lt.apply(1, 2) && !CmpOp::Lt.apply(2, 2));
        assert!(CmpOp::Le.apply(2, 2) && CmpOp::Ge.apply(2, 2));
        assert!(CmpOp::Eq.apply(3, 3) && CmpOp::Ne.apply(3, 4));
        assert!(CmpOp::Gt.apply(3, 2));
    }
}
