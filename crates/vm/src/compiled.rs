//! Compiled (resolved) method representation.
//!
//! The baseline compiler turns symbolic bytecode into [`RInstr`] sequences
//! with **hard-coded** field offsets, static slots, dispatch-table slots,
//! and instance sizes — the analogue of machine code emitted by Jikes RVM's
//! compilers. This baking is what makes the paper's *indirect method
//! updates* necessary: when a class update changes a layout, compiled code
//! of any method referencing the class silently holds stale offsets and
//! must be invalidated (and, if on-stack, OSR-replaced).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::ids::{ClassId, MethodId};
use crate::natives::NativeFn;

/// Relaxed invocation counter attached to compiled code.
///
/// Hotness accounting lives on the `CompiledMethod` itself so the
/// interpreter's inline-cache hit path can count an invocation with one
/// relaxed atomic add instead of a registry hashmap write. The counter is
/// per-*code-object*: a recompilation starts a fresh cell at zero, which
/// matches [`Registry::invalidate`](crate::registry::Registry::invalidate)
/// resetting the method's counter.
#[derive(Default)]
pub struct CounterCell(AtomicU32);

/// Deliberately value-free: the counter is a racy profiling sample, not
/// versioned VM state (invalidation resets it; registry fingerprints
/// exclude it), so debug dumps of compiled code — which rollback tests
/// compare bit-for-bit — must not change just because a loop kept
/// spinning between two snapshots.
impl std::fmt::Debug for CounterCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CounterCell(_)")
    }
}

impl CounterCell {
    /// Current value.
    #[inline]
    pub fn get(&self) -> u32 {
        self.0.load(Ordering::Relaxed)
    }

    /// Adds one, returning the *previous* value (the call number before
    /// this invocation — what the opt-promotion threshold compares).
    #[inline]
    pub fn bump(&self) -> u32 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

impl Clone for CounterCell {
    fn clone(&self) -> Self {
        CounterCell(AtomicU32::new(self.get()))
    }
}

/// Compilation tier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompileLevel {
    /// Straightforward 1:1 resolution of bytecode; OSR-capable because the
    /// instruction indices coincide with bytecode indices.
    Base,
    /// Resolution plus inlining; not OSR-capable (matches the paper's
    /// current implementation, §3.2).
    Opt,
    /// Template JIT: the base-resolved stream peephole-fused into
    /// superinstructions ([`crate::jit2`]). OSR-capable — every fused op
    /// records the base pc of its first covered instruction, so a frame
    /// deopts/OSRs back to 1:1 base code at an exact reconstruction point.
    Jit,
}

/// A resolved instruction.
///
/// Operands are physical: word offsets, JTOC slots, TIB slots, method ids.
#[derive(Clone, PartialEq, Debug)]
pub enum RInstr {
    /// Push integer constant.
    ConstInt(i64),
    /// Push boolean constant.
    ConstBool(bool),
    /// Allocate a string with this content and push it.
    ConstStr(Arc<str>),
    /// Push null.
    ConstNull,
    /// Push local slot.
    Load(u16),
    /// Pop into local slot.
    Store(u16),
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Integer divide (traps on zero).
    Div,
    /// Integer remainder (traps on zero).
    Rem,
    /// Integer negate.
    Neg,
    /// Integer compare ==.
    CmpEq,
    /// Integer compare !=.
    CmpNe,
    /// Integer compare <.
    CmpLt,
    /// Integer compare <=.
    CmpLe,
    /// Integer compare >.
    CmpGt,
    /// Integer compare >=.
    CmpGe,
    /// Boolean not.
    Not,
    /// Boolean equality.
    BoolEq,
    /// Reference identity.
    RefEq,
    /// Reference non-identity.
    RefNe,
    /// String concatenation (allocates).
    StrConcat,
    /// String value equality.
    StrEq,
    /// Allocate an instance: class id and **baked instance size** in words.
    New {
        /// Class to instantiate.
        class: ClassId,
        /// Field words — resolved at compile time; stale after a class
        /// update, which is why such code must be invalidated.
        size: u16,
    },
    /// Read an instance field at a baked word offset.
    GetField {
        /// Word offset within the object.
        offset: u16,
        /// Whether the slot holds a reference (for value decoding).
        is_ref: bool,
    },
    /// Write an instance field at a baked word offset.
    PutField {
        /// Word offset within the object.
        offset: u16,
    },
    /// Read a static from a baked JTOC slot.
    GetStatic {
        /// JTOC slot.
        slot: u32,
        /// Whether the slot holds a reference.
        is_ref: bool,
    },
    /// Write a static to a baked JTOC slot.
    PutStatic {
        /// JTOC slot.
        slot: u32,
    },
    /// Allocate an array (length popped from the stack).
    NewArray {
        /// Element kind.
        is_ref: bool,
    },
    /// Array element load.
    ALoad,
    /// Array element store.
    AStore,
    /// Array length.
    ArrayLen,
    /// Virtual dispatch through the receiver's TIB at a baked slot.
    CallVirtual {
        /// TIB slot index.
        vslot: u16,
        /// Argument count (receiver excluded).
        argc: u8,
        /// Dense call-site id within this code object (assigned by the
        /// JIT after inlining); indexes the per-thread inline-cache table.
        site: u32,
    },
    /// Direct call (static methods, constructors, `super` calls).
    CallDirect {
        /// Target method.
        method: MethodId,
        /// Argument count (receiver excluded).
        argc: u8,
        /// Whether a receiver sits under the arguments.
        has_receiver: bool,
        /// Dense call-site id within this code object (see `CallVirtual`).
        site: u32,
    },
    /// Call into the VM.
    CallNative {
        /// Implementation.
        native: NativeFn,
        /// Argument count.
        argc: u8,
    },
    /// Unconditional branch. A target at or before the current pc is a loop
    /// back-edge and acts as a yield point.
    Jump(u32),
    /// Branch if popped bool is true.
    JumpIfTrue(u32),
    /// Branch if popped bool is false.
    JumpIfFalse(u32),
    /// Return void.
    Return,
    /// Return the popped value.
    ReturnValue,
    /// Discard top of stack.
    Pop,
    /// Duplicate top of stack.
    Dup,

    // --- Superinstructions ---
    //
    // Emitted only by the template JIT's fusion pass ([`crate::jit2`]);
    // the baseline resolver never produces them. Each covers 2–4 base
    // instructions and carries the same baked physical operands, so the
    // DSU invalidation story is unchanged — just denser.
    /// `locals[slot] += delta` (Load, ConstInt, Add, Store — 4 ops).
    FusedIncLocal {
        /// Local slot read and written.
        slot: u16,
        /// Increment.
        delta: i64,
    },
    /// Load a local, read a field at a baked offset (Load, GetField).
    FusedLoadGetField {
        /// Local slot holding the object.
        slot: u16,
        /// Word offset within the object.
        offset: u16,
        /// Whether the slot holds a reference.
        is_ref: bool,
    },
    /// The canonical getter body: Load, GetField, ReturnValue (3 ops).
    FusedLoadGetFieldReturn {
        /// Local slot holding the object.
        slot: u16,
        /// Word offset within the object.
        offset: u16,
        /// Whether the slot holds a reference.
        is_ref: bool,
    },
    /// Two-local compare-and-branch: Load, Load, Cmp, JumpIf (4 ops) —
    /// the shape of every counted-loop guard.
    FusedLoadLoadCmpBr {
        /// Left operand slot.
        a: u16,
        /// Right operand slot.
        b: u16,
        /// Comparison.
        op: crate::jit2::CmpOp,
        /// Branch when the comparison yields this value.
        when: bool,
        /// Branch target (a fused index after target fixup).
        target: u32,
    },
    /// Local-vs-constant compare-and-branch (Load, ConstInt, Cmp, JumpIf).
    FusedLoadConstCmpBr {
        /// Left operand slot.
        slot: u16,
        /// Right operand constant.
        k: i64,
        /// Comparison.
        op: crate::jit2::CmpOp,
        /// Branch when the comparison yields this value.
        when: bool,
        /// Branch target (a fused index after target fixup).
        target: u32,
    },
    /// Stack-vs-constant compare-and-branch (ConstInt, Cmp, JumpIf) —
    /// the left operand is already on the stack.
    FusedStackConstCmpBr {
        /// Right operand constant.
        k: i64,
        /// Comparison.
        op: crate::jit2::CmpOp,
        /// Branch when the comparison yields this value.
        when: bool,
        /// Branch target (a fused index after target fixup).
        target: u32,
    },
    /// Push `locals[a] + locals[b]` (Load, Load, Add).
    FusedLoadLoadAdd {
        /// Left operand slot.
        a: u16,
        /// Right operand slot.
        b: u16,
    },
    /// Push `locals[slot] + k` (Load, ConstInt, Add).
    FusedLoadConstAdd {
        /// Left operand slot.
        slot: u16,
        /// Constant addend.
        k: i64,
    },
    /// Return `locals[slot] + k` (Load, ConstInt, Add, ReturnValue).
    FusedLoadConstAddReturn {
        /// Left operand slot.
        slot: u16,
        /// Constant addend.
        k: i64,
    },
    /// Return an integer constant (ConstInt, ReturnValue).
    FusedConstReturn {
        /// The constant.
        k: i64,
    },
    /// Return a local (Load, ReturnValue).
    FusedLoadReturn {
        /// The slot.
        slot: u16,
    },
    /// Copy one local to another (Load, Store).
    FusedLoadStore {
        /// Source slot.
        from: u16,
        /// Destination slot.
        to: u16,
    },
    /// Load the receiver and virtually dispatch a zero-argument method
    /// (Load, CallVirtual with `argc == 0`). Only the no-args form fuses:
    /// with arguments present, the Load pushes an *argument*, not the
    /// receiver, and the receiver-resolution/barrier logic would need the
    /// stack mutated first — unsafe under barrier retry.
    FusedLoadCallVirtual {
        /// Local slot holding the receiver.
        slot: u16,
        /// TIB slot index.
        vslot: u16,
        /// Dense call-site id (see `CallVirtual`).
        site: u32,
    },
    /// Load the last argument and make a direct call (Load, CallDirect).
    FusedLoadCallDirect {
        /// Local slot holding the final argument.
        slot: u16,
        /// Target method.
        method: MethodId,
        /// Argument count (receiver excluded).
        argc: u8,
        /// Whether a receiver sits under the arguments.
        has_receiver: bool,
        /// Dense call-site id (see `CallVirtual`).
        site: u32,
    },
}

/// A compiled method body.
#[derive(Clone, Debug)]
pub struct CompiledMethod {
    /// The method this code implements.
    pub method: MethodId,
    /// Compilation tier.
    pub level: CompileLevel,
    /// Resolved instructions.
    pub code: Vec<RInstr>,
    /// Local slots needed (grows with inlining).
    pub max_locals: u16,
    /// Methods whose bodies were inlined into this code (transitive).
    ///
    /// The DSU restricted-set analysis consults this: if an updated method
    /// was inlined here, this method must be restricted and recompiled too
    /// (paper §3.2).
    pub inlined: Vec<MethodId>,
    /// Classes whose layout/dispatch data is baked into this code.
    pub referenced_classes: Vec<ClassId>,
    /// Invocation counter driving adaptive recompilation (sampled by the
    /// interpreter on every call, cache hit or miss).
    pub invocations: CounterCell,
    /// Loop back-edges taken by base-tier frames of this code (bumped only
    /// when the JIT tier is enabled). Kept separate from `invocations` so
    /// the opt tier's promotion timing is untouched: invocations + trips
    /// drive *jit* promotion, letting loopy methods that are rarely called
    /// (a server's main loop) get compiled via OSR-in at a back-edge.
    pub loop_trips: CounterCell,
    /// Number of call sites in `code` (`CallVirtual`/`CallDirect` carry
    /// ids `0..call_sites`); sizes the per-thread inline-cache rows.
    pub call_sites: u32,
    /// Fusion metadata; present iff `level == Jit`, in which case `code`
    /// *is* the superinstruction-fused stream (`frame.pc` indexes it and
    /// the interpreter's dense `match` executes it directly). Carries the
    /// retained 1:1 base body, the fused-index → base-pc deopt mapping,
    /// and the epoch-revalidation cache — deopt swaps the frame onto the
    /// retained base body at the mapped pc, which is exact and
    /// semantically a no-op.
    pub fused: Option<Arc<crate::jit2::FusedCode>>,
    /// Whether this body qualifies for the fused executor's leaf-call fast
    /// path: short, straight-line, allocation- and call-free code a fused
    /// call site may run inline without pushing a frame (see
    /// [`crate::jit2`]).
    pub leaf: bool,
}

impl CompiledMethod {
    /// Whether this code can be OSR-replaced. Base code is 1:1 with
    /// bytecode so pc and locals carry over directly; jit code maps every
    /// fused index back to the base pc it starts at. Opt code inlines and
    /// has no such mapping.
    pub fn osr_capable(&self) -> bool {
        matches!(self.level, CompileLevel::Base | CompileLevel::Jit)
    }

    /// The base-tier (bytecode) pc a frame of this code stands at when its
    /// `pc` field reads `pc` — the identity for base/opt code, the fused
    /// op's first covered base instruction for jit code.
    pub fn base_pc_of(&self, pc: u32) -> u32 {
        match &self.fused {
            Some(f) => f.base_pc[pc as usize],
            None => pc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn osr_capability_follows_tier() {
        let base = CompiledMethod {
            method: MethodId(0),
            level: CompileLevel::Base,
            code: vec![RInstr::Return],
            max_locals: 0,
            inlined: vec![],
            referenced_classes: vec![],
            invocations: CounterCell::default(),
            loop_trips: CounterCell::default(),
            call_sites: 0,
            fused: None,
            leaf: false,
        };
        assert!(base.osr_capable());
        let opt = CompiledMethod { level: CompileLevel::Opt, ..base.clone() };
        assert!(!opt.osr_capable());
        // Jit code keeps a 1:1 mapping back to base pcs via FusedCode, so
        // it stays an OSR candidate.
        let jit = CompiledMethod { level: CompileLevel::Jit, ..base };
        assert!(jit.osr_capable());
    }

    #[test]
    fn counter_cell_bump_returns_previous_and_clone_copies() {
        let c = CounterCell::default();
        assert_eq!(c.bump(), 0);
        assert_eq!(c.bump(), 1);
        assert_eq!(c.get(), 2);
        let d = c.clone();
        assert_eq!(d.get(), 2);
        d.bump();
        assert_eq!(c.get(), 2, "clones are independent cells");
    }
}
