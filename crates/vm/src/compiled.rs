//! Compiled (resolved) method representation.
//!
//! The baseline compiler turns symbolic bytecode into [`RInstr`] sequences
//! with **hard-coded** field offsets, static slots, dispatch-table slots,
//! and instance sizes — the analogue of machine code emitted by Jikes RVM's
//! compilers. This baking is what makes the paper's *indirect method
//! updates* necessary: when a class update changes a layout, compiled code
//! of any method referencing the class silently holds stale offsets and
//! must be invalidated (and, if on-stack, OSR-replaced).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::ids::{ClassId, MethodId};
use crate::natives::NativeFn;

/// Relaxed invocation counter attached to compiled code.
///
/// Hotness accounting lives on the `CompiledMethod` itself so the
/// interpreter's inline-cache hit path can count an invocation with one
/// relaxed atomic add instead of a registry hashmap write. The counter is
/// per-*code-object*: a recompilation starts a fresh cell at zero, which
/// matches [`Registry::invalidate`](crate::registry::Registry::invalidate)
/// resetting the method's counter.
#[derive(Debug, Default)]
pub struct CounterCell(AtomicU32);

impl CounterCell {
    /// Current value.
    #[inline]
    pub fn get(&self) -> u32 {
        self.0.load(Ordering::Relaxed)
    }

    /// Adds one, returning the *previous* value (the call number before
    /// this invocation — what the opt-promotion threshold compares).
    #[inline]
    pub fn bump(&self) -> u32 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

impl Clone for CounterCell {
    fn clone(&self) -> Self {
        CounterCell(AtomicU32::new(self.get()))
    }
}

/// Compilation tier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompileLevel {
    /// Straightforward 1:1 resolution of bytecode; OSR-capable because the
    /// instruction indices coincide with bytecode indices.
    Base,
    /// Resolution plus inlining; not OSR-capable (matches the paper's
    /// current implementation, §3.2).
    Opt,
}

/// A resolved instruction.
///
/// Operands are physical: word offsets, JTOC slots, TIB slots, method ids.
#[derive(Clone, PartialEq, Debug)]
pub enum RInstr {
    /// Push integer constant.
    ConstInt(i64),
    /// Push boolean constant.
    ConstBool(bool),
    /// Allocate a string with this content and push it.
    ConstStr(Arc<str>),
    /// Push null.
    ConstNull,
    /// Push local slot.
    Load(u16),
    /// Pop into local slot.
    Store(u16),
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Integer divide (traps on zero).
    Div,
    /// Integer remainder (traps on zero).
    Rem,
    /// Integer negate.
    Neg,
    /// Integer compare ==.
    CmpEq,
    /// Integer compare !=.
    CmpNe,
    /// Integer compare <.
    CmpLt,
    /// Integer compare <=.
    CmpLe,
    /// Integer compare >.
    CmpGt,
    /// Integer compare >=.
    CmpGe,
    /// Boolean not.
    Not,
    /// Boolean equality.
    BoolEq,
    /// Reference identity.
    RefEq,
    /// Reference non-identity.
    RefNe,
    /// String concatenation (allocates).
    StrConcat,
    /// String value equality.
    StrEq,
    /// Allocate an instance: class id and **baked instance size** in words.
    New {
        /// Class to instantiate.
        class: ClassId,
        /// Field words — resolved at compile time; stale after a class
        /// update, which is why such code must be invalidated.
        size: u16,
    },
    /// Read an instance field at a baked word offset.
    GetField {
        /// Word offset within the object.
        offset: u16,
        /// Whether the slot holds a reference (for value decoding).
        is_ref: bool,
    },
    /// Write an instance field at a baked word offset.
    PutField {
        /// Word offset within the object.
        offset: u16,
    },
    /// Read a static from a baked JTOC slot.
    GetStatic {
        /// JTOC slot.
        slot: u32,
        /// Whether the slot holds a reference.
        is_ref: bool,
    },
    /// Write a static to a baked JTOC slot.
    PutStatic {
        /// JTOC slot.
        slot: u32,
    },
    /// Allocate an array (length popped from the stack).
    NewArray {
        /// Element kind.
        is_ref: bool,
    },
    /// Array element load.
    ALoad,
    /// Array element store.
    AStore,
    /// Array length.
    ArrayLen,
    /// Virtual dispatch through the receiver's TIB at a baked slot.
    CallVirtual {
        /// TIB slot index.
        vslot: u16,
        /// Argument count (receiver excluded).
        argc: u8,
        /// Dense call-site id within this code object (assigned by the
        /// JIT after inlining); indexes the per-thread inline-cache table.
        site: u32,
    },
    /// Direct call (static methods, constructors, `super` calls).
    CallDirect {
        /// Target method.
        method: MethodId,
        /// Argument count (receiver excluded).
        argc: u8,
        /// Whether a receiver sits under the arguments.
        has_receiver: bool,
        /// Dense call-site id within this code object (see `CallVirtual`).
        site: u32,
    },
    /// Call into the VM.
    CallNative {
        /// Implementation.
        native: NativeFn,
        /// Argument count.
        argc: u8,
    },
    /// Unconditional branch. A target at or before the current pc is a loop
    /// back-edge and acts as a yield point.
    Jump(u32),
    /// Branch if popped bool is true.
    JumpIfTrue(u32),
    /// Branch if popped bool is false.
    JumpIfFalse(u32),
    /// Return void.
    Return,
    /// Return the popped value.
    ReturnValue,
    /// Discard top of stack.
    Pop,
    /// Duplicate top of stack.
    Dup,
}

/// A compiled method body.
#[derive(Clone, Debug)]
pub struct CompiledMethod {
    /// The method this code implements.
    pub method: MethodId,
    /// Compilation tier.
    pub level: CompileLevel,
    /// Resolved instructions.
    pub code: Vec<RInstr>,
    /// Local slots needed (grows with inlining).
    pub max_locals: u16,
    /// Methods whose bodies were inlined into this code (transitive).
    ///
    /// The DSU restricted-set analysis consults this: if an updated method
    /// was inlined here, this method must be restricted and recompiled too
    /// (paper §3.2).
    pub inlined: Vec<MethodId>,
    /// Classes whose layout/dispatch data is baked into this code.
    pub referenced_classes: Vec<ClassId>,
    /// Invocation counter driving adaptive recompilation (sampled by the
    /// interpreter on every call, cache hit or miss).
    pub invocations: CounterCell,
    /// Number of call sites in `code` (`CallVirtual`/`CallDirect` carry
    /// ids `0..call_sites`); sizes the per-thread inline-cache rows.
    pub call_sites: u32,
}

impl CompiledMethod {
    /// Whether this code can be OSR-replaced (base tier only; instruction
    /// indices match bytecode indices, so the pc and locals carry over).
    pub fn osr_capable(&self) -> bool {
        self.level == CompileLevel::Base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn osr_capability_follows_tier() {
        let base = CompiledMethod {
            method: MethodId(0),
            level: CompileLevel::Base,
            code: vec![RInstr::Return],
            max_locals: 0,
            inlined: vec![],
            referenced_classes: vec![],
            invocations: CounterCell::default(),
            call_sites: 0,
        };
        assert!(base.osr_capable());
        let opt = CompiledMethod { level: CompileLevel::Opt, ..base };
        assert!(!opt.osr_capable());
    }

    #[test]
    fn counter_cell_bump_returns_previous_and_clone_copies() {
        let c = CounterCell::default();
        assert_eq!(c.bump(), 0);
        assert_eq!(c.bump(), 1);
        assert_eq!(c.get(), 2);
        let d = c.clone();
        assert_eq!(d.get(), 2);
        d.bump();
        assert_eq!(c.get(), 2, "clones are independent cells");
    }
}
