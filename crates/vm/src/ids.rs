//! Runtime identifiers for loaded classes, methods and threads.

use std::fmt;

/// Identifier of a loaded class in the [registry](crate::registry).
///
/// Old class versions renamed during an update keep their `ClassId`; the
/// name-to-id map is what changes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ClassId(pub u32);

impl ClassId {
    /// Index form for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// Identifier of a loaded method.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MethodId(pub u32);

impl MethodId {
    /// Index form for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "method#{}", self.0)
    }
}

/// Identifier of a VM green thread.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread#{}", self.0)
    }
}
