//! The virtual machine: heap + registry + green threads + scheduler,
//! plus the DSU *mechanisms* (GC-coordinated object duplication, the
//! update log, transformer execution, return barriers, OSR) that the
//! `jvolve` crate's update driver composes into the paper's protocol.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use jvolve_classfile::class::CTOR_NAME;
use jvolve_classfile::{ClassFile, ClassName};

use crate::compiled::{CompileLevel, CompiledMethod};
use crate::config::VmConfig;
use crate::error::VmError;
use crate::heap::{ClassLayouts, GcOutcome, GcRemap, Heap, HeapKind, NoRemap, RemapTable};
use crate::ids::{ClassId, MethodId, ThreadId};
use crate::interp::SliceEvent;
use crate::jit;
use crate::lazy::{
    CollapseOutcome, LazyEpoch, LazyStage, ScanOutcome, ScavengeOutcome, MAX_TRANSFORMER_DEPTH,
};
use crate::net::Net;
use crate::registry::Registry;
use crate::thread::{BlockOn, Frame, FrameNote, ThreadState, VmThread};
use crate::value::{GcRef, Value};

/// Statistics maintained by the VM.
#[derive(Debug, Clone, Default)]
pub struct VmStats {
    /// Scheduler slices executed.
    pub slices: u64,
    /// Interpreter steps executed.
    pub steps: u64,
    /// Collections performed.
    pub gcs: u64,
    /// Methods baseline-compiled.
    pub base_compiles: u64,
    /// Methods opt-compiled.
    pub opt_compiles: u64,
    /// Methods compiled at the template-JIT tier (superinstruction fusion).
    pub jit_compiles: u64,
    /// Template-JIT frames deoptimized back onto their retained base body
    /// (dispatch epoch moved under them).
    pub deopts: u64,
    /// Interpreter steps executed inside fused superinstructions or the
    /// leaf-call fast path. Always counted *in addition to* `steps` — the
    /// ratio `fused_steps / steps` is the fusion coverage of a run.
    pub fused_steps: u64,
    /// Inline-cache dispatch hits (excluded from differential oracles —
    /// the two cache modes differ here by construction).
    pub ic_hits: u64,
    /// Inline-cache dispatch misses.
    pub ic_misses: u64,
}

/// DSU bookkeeping owned by the VM so the GC can keep it consistent.
#[derive(Debug, Default)]
pub(crate) struct DsuState {
    /// The update log: (old copy, new object) pairs from the last
    /// update-GC (paper §3.4).
    pub pending: Vec<(GcRef, GcRef)>,
    /// new-object address → index in `pending` (the paper caches a pointer
    /// to the old version inside the new object; a side table is
    /// equivalent, see DESIGN.md).
    pub index_of: HashMap<u32, usize>,
    /// Object transformer for each *new* class.
    pub transformer_for: HashMap<ClassId, MethodId>,
    /// Objects whose transformer is currently on some stack (cycle
    /// detection, paper §3.4).
    pub in_progress: HashSet<u32>,
    /// Objects already transformed.
    pub done: HashSet<u32>,
    /// Dynamic updates completed.
    pub update_count: u64,
    /// Lazy-indirection mode: classes to migrate on first access.
    pub lazy_remap: HashMap<ClassId, ClassId>,
}

/// A report from one scheduler slice.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceReport {
    /// Thread that ran, if any was runnable.
    pub thread: Option<ThreadId>,
    /// What ended the slice.
    pub event: SliceOutcome,
}

/// Outcome of a slice, surfaced to the embedder / update driver.
#[derive(Debug, Clone, PartialEq)]
pub enum SliceOutcome {
    /// The thread yielded at a safe point (quantum or explicit yield).
    Yielded,
    /// The thread blocked on a resource.
    Blocked,
    /// The thread finished.
    Finished,
    /// The thread trapped; it is dead.
    Trapped(VmError),
    /// A return barrier fired on the thread (paper §3.2): the update
    /// driver should re-check for a DSU safe point.
    ReturnBarrier {
        /// Method that returned.
        method: MethodId,
    },
    /// A collection was triggered by allocation pressure.
    GcOccurred,
    /// No thread was runnable (all blocked or finished).
    Idle,
}

/// The virtual machine.
#[derive(Debug)]
pub struct Vm {
    pub(crate) config: VmConfig,
    pub(crate) heap: Heap,
    pub(crate) registry: Registry,
    pub(crate) threads: Vec<Option<VmThread>>,
    pub(crate) net: Net,
    pub(crate) output: Vec<String>,
    pub(crate) tick: u64,
    pub(crate) rng_state: u64,
    pub(crate) dsu: DsuState,
    pub(crate) lazy: LazyEpoch,
    pub(crate) stats: VmStats,
    host_roots: Vec<GcRef>,
    next_thread: usize,
}

impl Vm {
    /// Creates a VM with the builtin classes loaded.
    pub fn new(config: VmConfig) -> Vm {
        assert!(
            !(config.lazy_migration && config.lazy_indirection),
            "lazy_migration and lazy_indirection are mutually exclusive"
        );
        let mut registry = Registry::new();
        registry
            .load_batch(&jvolve_lang::builtins::builtin_classes())
            .expect("builtins always load");
        Vm {
            heap: Heap::new(config.semispace_words),
            registry,
            config,
            threads: Vec::new(),
            net: Net::new(),
            output: Vec::new(),
            tick: 0,
            rng_state: 0x9E3779B97F4A7C15,
            dsu: DsuState::default(),
            lazy: LazyEpoch::default(),
            stats: VmStats::default(),
            host_roots: Vec::new(),
            next_thread: 0,
        }
    }

    // ---- program loading ----------------------------------------------------

    /// Loads a batch of classes (verification included).
    ///
    /// # Errors
    ///
    /// Propagates [`VmError::LoadError`].
    pub fn load_classes(&mut self, classes: &[ClassFile]) -> Result<Vec<ClassId>, VmError> {
        self.registry.load_batch(classes)
    }

    /// Compiles and loads MJ source, a convenience for tests and examples.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::LoadError`] carrying compile diagnostics.
    pub fn load_source(&mut self, source: &str) -> Result<Vec<ClassId>, VmError> {
        let classes = jvolve_lang::compile(source).map_err(|e| VmError::LoadError {
            class: ClassName::from("<source>"),
            message: e.to_string(),
        })?;
        self.load_classes(&classes)
    }

    // ---- accessors -----------------------------------------------------------

    /// The class registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable registry access (update driver).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// The heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// The network substrate (workload drivers).
    pub fn net_mut(&mut self) -> &mut Net {
        &mut self.net
    }

    /// Execution statistics.
    pub fn stats(&self) -> &VmStats {
        &self.stats
    }

    /// The configuration.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// Buffered `Sys.print` output.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// Takes and clears the buffered output.
    pub fn take_output(&mut self) -> Vec<String> {
        std::mem::take(&mut self.output)
    }

    /// Scheduler tick (virtual milliseconds).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Number of updates applied (mirrors `Dsu.updateCount()`).
    pub fn update_count(&self) -> u64 {
        self.dsu.update_count
    }

    /// Live threads (ids), in id order.
    pub fn live_threads(&self) -> Vec<ThreadId> {
        self.threads
            .iter()
            .flatten()
            .filter(|t| t.is_live())
            .map(|t| t.id)
            .collect()
    }

    /// Immutable view of a thread.
    pub fn thread(&self, id: ThreadId) -> Option<&VmThread> {
        self.threads.get(id.0 as usize).and_then(|t| t.as_ref())
    }

    /// All threads, live or not.
    pub fn threads(&self) -> impl Iterator<Item = &VmThread> {
        self.threads.iter().flatten()
    }

    // ---- thread management ----------------------------------------------------

    /// Spawns a thread running `class.method` (a static, argument-less
    /// method — typically `main` or a server entry point).
    ///
    /// # Errors
    ///
    /// Fails if the method is missing, non-static, or takes parameters.
    pub fn spawn(&mut self, class: &str, method: &str) -> Result<ThreadId, VmError> {
        let cid = self.registry.class_id(&ClassName::from(class)).ok_or_else(|| {
            VmError::ResolutionError { message: format!("unknown class {class}") }
        })?;
        let mid = self.registry.find_method(cid, method).ok_or_else(|| {
            VmError::ResolutionError { message: format!("unknown method {class}.{method}") }
        })?;
        let info = self.registry.method(mid);
        if !info.def.is_static || !info.def.params.is_empty() {
            return Err(VmError::ResolutionError {
                message: format!("{class}.{method} must be static and take no arguments"),
            });
        }
        let compiled = self.compiled_for(mid)?;
        let frame = Frame::new(compiled, &[])?;
        Ok(self.add_thread(format!("{class}.{method}"), frame))
    }

    pub(crate) fn add_thread(&mut self, name: String, frame: Frame) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        self.threads.push(Some(VmThread::new(id, name, frame)));
        id
    }

    // ---- compilation ------------------------------------------------------------

    /// Returns (compiling if necessary) executable code for `mid`, and
    /// advances the adaptive-recompilation counter: a method crossing the
    /// hotness threshold is recompiled at the optimizing tier, exactly the
    /// behavior the paper leans on after invalidation ("the adaptive
    /// compilation system naturally optimizes updated methods further if
    /// they execute frequently", §1).
    pub(crate) fn compiled_for(&mut self, mid: MethodId) -> Result<Arc<CompiledMethod>, VmError> {
        let threshold = self.config.opt_threshold;
        let enable_opt = self.config.enable_opt;
        let enable_jit = self.config.enable_jit;
        let jit_threshold = self.config.jit_threshold;
        let info = self.registry.method(mid);
        debug_assert!(info.native.is_none(), "natives are dispatched separately");

        // The hotness counter lives on the code object so inline-cache
        // hits (which bypass this path) can keep sampling it; checked
        // pre-bump, so promotion fires at the same call number in both
        // cache modes. The template-JIT tier takes priority over Opt and
        // also promotes *from* Opt — invocations plus loop trips measure
        // total heat, matching the back-edge OSR-in condition.
        let needs_jit = enable_jit
            && info.compiled.as_ref().is_some_and(|c| {
                c.level != CompileLevel::Jit
                    && c.invocations.get().saturating_add(c.loop_trips.get()) >= jit_threshold
            });
        let needs_opt = !needs_jit
            && enable_opt
            && info
                .compiled
                .as_ref()
                .is_some_and(|c| c.level == CompileLevel::Base && c.invocations.get() >= threshold);

        if let (Some(c), false, false) = (&info.compiled, needs_opt, needs_jit) {
            let c = c.clone();
            c.invocations.bump();
            self.registry.method_mut(mid).invocations = c.invocations.get();
            return Ok(c);
        }

        let level = if needs_jit {
            CompileLevel::Jit
        } else if needs_opt {
            CompileLevel::Opt
        } else {
            CompileLevel::Base
        };
        let compiled = Arc::new(jit::compile(&self.registry, mid, level, &self.config)?);
        match level {
            CompileLevel::Base => self.stats.base_compiles += 1,
            CompileLevel::Opt => self.stats.opt_compiles += 1,
            CompileLevel::Jit => self.stats.jit_compiles += 1,
        }
        compiled.invocations.bump();
        self.registry.set_compiled(mid, compiled.clone());
        self.registry.method_mut(mid).invocations = compiled.invocations.get();
        Ok(compiled)
    }

    // ---- scheduling ------------------------------------------------------------

    fn poll_blocked(&mut self) {
        let tick = self.tick;
        for slot in &mut self.threads {
            let Some(t) = slot else { continue };
            if let ThreadState::Blocked(on) = &t.state {
                let wake = match on {
                    BlockOn::Accept(l) => self.net.has_pending(*l),
                    BlockOn::ReadLine(c) => self.net.guest_readable(*c),
                    BlockOn::SleepUntil(until) => tick >= *until,
                };
                if wake {
                    t.state = ThreadState::Runnable;
                }
            }
        }
    }

    /// Runs one scheduler slice: picks the next runnable thread round-robin
    /// and executes it up to the quantum (stopping only at a yield point —
    /// a VM safe point). Between slices every thread is at a safe point,
    /// which is when the update driver inspects stacks.
    pub fn step_slice(&mut self) -> SliceReport {
        self.tick += 1;
        self.stats.slices += 1;
        self.poll_blocked();

        let n = self.threads.len();
        let mut chosen = None;
        for k in 0..n {
            let idx = (self.next_thread + k) % n.max(1);
            if self.threads.get(idx).and_then(|t| t.as_ref()).is_some_and(|t| {
                matches!(t.state, ThreadState::Runnable)
            }) {
                chosen = Some(idx);
                break;
            }
        }
        let Some(idx) = chosen else {
            return SliceReport { thread: None, event: SliceOutcome::Idle };
        };
        self.next_thread = (idx + 1) % n;

        let budget = self.config.quantum;
        let tid = ThreadId(idx as u32);
        // (pc, step counter) at the last allocation failure: failing again
        // at the same pc with no intervening progress means the collection
        // freed nothing useful and the request can never be satisfied.
        let mut gc_retry: Option<(u32, u64)> = None;
        loop {
            let mut thread = self.threads[idx].take().expect("chosen thread exists");
            let event = self.exec_thread(&mut thread, budget);
            self.threads[idx] = Some(thread);
            let outcome = match event {
                SliceEvent::Quantum => SliceOutcome::Yielded,
                SliceEvent::Blocked => SliceOutcome::Blocked,
                SliceEvent::Finished => SliceOutcome::Finished,
                SliceEvent::Trapped(e) => {
                    let t = self.threads[idx].as_mut().expect("thread present");
                    t.state = ThreadState::Trapped(e.clone());
                    SliceOutcome::Trapped(e)
                }
                SliceEvent::ReturnBarrier { method } => SliceOutcome::ReturnBarrier { method },
                SliceEvent::NeedGc => {
                    // Allocation pressure: stop-the-world collection (all
                    // other threads already paused at safe points), then
                    // resume the same thread at the same pc.
                    let pc = self.threads[idx]
                        .as_ref()
                        .and_then(|t| t.frames.last())
                        .map(|f| f.pc)
                        .unwrap_or(u32::MAX);
                    let steps = self.stats.steps;
                    // Exactly one step since the last failure = the retried
                    // instruction itself.
                    let stuck = gc_retry == Some((pc, steps.saturating_sub(1)));
                    gc_retry = Some((pc, steps));
                    let result = if stuck {
                        // The collection just ran and the same allocation
                        // still fails: out of memory.
                        Err(VmError::OutOfMemory { requested: 0 })
                    } else {
                        self.collect_full(&NoRemap).map(|_| ())
                    };
                    match result {
                        Ok(()) => continue,
                        Err(e) => {
                            let t = self.threads[idx].as_mut().expect("thread present");
                            t.state = ThreadState::Trapped(e.clone());
                            SliceOutcome::Trapped(e)
                        }
                    }
                }
            };
            return SliceReport { thread: Some(tid), event: outcome };
        }
    }

    /// Runs up to `n` slices; stops early when no thread is live.
    pub fn run_slices(&mut self, n: usize) -> usize {
        for i in 0..n {
            if self.live_threads().is_empty() {
                return i;
            }
            self.step_slice();
        }
        n
    }

    /// Runs scheduler slices until `stop` says so or `max_slices` elapse,
    /// returning the number of slices executed. `stop` is consulted after
    /// every slice, i.e. at a VM safe point — this is the scheduling hook
    /// an update controller (or any embedder) uses to interleave its own
    /// work with guest execution instead of freezing the world from the
    /// outside.
    pub fn run_until(
        &mut self,
        max_slices: u64,
        mut stop: impl FnMut(&Vm, &SliceReport) -> bool,
    ) -> u64 {
        for i in 0..max_slices {
            let report = self.step_slice();
            if stop(self, &report) {
                return i + 1;
            }
        }
        max_slices
    }

    /// Runs until every thread finished/trapped or `max_slices` elapsed.
    /// Returns `true` when all threads completed.
    pub fn run_to_completion(&mut self, max_slices: usize) -> bool {
        for _ in 0..max_slices {
            if self.threads.iter().flatten().all(|t| !t.is_live()) {
                return true;
            }
            let report = self.step_slice();
            if report.event == SliceOutcome::Idle {
                // All live threads blocked with nothing to wake them: with
                // no external client activity this cannot progress.
                let sleepers = self.threads.iter().flatten().any(|t| {
                    matches!(t.state, ThreadState::Blocked(BlockOn::SleepUntil(_)))
                });
                if !sleepers {
                    return false;
                }
            }
        }
        self.threads.iter().flatten().all(|t| !t.is_live())
    }

    // ---- GC --------------------------------------------------------------------

    /// Gathers every root location, runs a collection with `remap`, and
    /// rewrites roots and DSU bookkeeping.
    ///
    /// The remap policy is resolved into a dense [`RemapTable`] up front;
    /// when it comes out empty (an ordinary collection) the heap takes its
    /// no-remap fast path. Layouts come from the registry's cached
    /// [`LayoutSnapshot`](crate::heap::LayoutSnapshot), rebuilt only after
    /// class loads/renames.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError::OutOfMemory`] on to-space overflow.
    pub fn collect_full(&mut self, remap: &dyn GcRemap) -> Result<GcOutcome, VmError> {
        if self.lazy.active && !self.lazy.scan_done() {
            // A collection abandons from-space, so run the SATB scanner to
            // completion first: the undiscovered worklist tail must be
            // rooted below, or untouched stale garbage would be reclaimed
            // here that an eager commit would have transformed.
            self.lazy_scan(usize::MAX);
        }
        let mut roots: Vec<GcRef> = Vec::new();
        for t in self.threads.iter().flatten() {
            for f in &t.frames {
                for v in f.locals.iter().chain(f.stack.iter()) {
                    if let Value::Ref(r) = v {
                        roots.push(*r);
                    }
                }
                if let Some(FrameNote::TransformOf(addr)) = f.note {
                    roots.push(GcRef(addr));
                }
            }
        }
        let jtoc_slots: Vec<u32> = self.registry.jtoc_ref_slots().collect();
        for &slot in &jtoc_slots {
            roots.push(GcRef(self.registry.jtoc_get(slot) as u32));
        }
        for &(old, new) in &self.dsu.pending {
            roots.push(old);
            roots.push(new);
        }
        for &r in &self.host_roots {
            roots.push(r);
        }
        if self.lazy.active {
            // The unscavenged worklist tail keeps untouched stale objects
            // alive until transformed, so a lazy epoch migrates exactly
            // the object multiset an eager update would have.
            self.lazy.drop_processed();
            roots.extend_from_slice(self.lazy.pending_entries());
        }

        let snapshot = self.registry.layout_snapshot();
        let table = RemapTable::from_policy(remap, self.registry.num_classes());
        let table = if table.is_empty() { None } else { Some(&table) };
        let workers = self.config.resolve_gc_workers(self.heap.used_words());
        let outcome = self.heap.collect_parallel(&roots, &snapshot, table, workers)?;
        self.stats.gcs += 1;

        // Rewrite every root location through the forwarding pointers.
        let heap = &self.heap;
        for t in self.threads.iter_mut().flatten() {
            for f in &mut t.frames {
                for v in f.locals.iter_mut().chain(f.stack.iter_mut()) {
                    if let Value::Ref(r) = v {
                        *r = heap.resolve(*r);
                    }
                }
                if let Some(FrameNote::TransformOf(addr)) = &mut f.note {
                    *addr = heap.resolve(GcRef(*addr)).0;
                }
            }
        }
        for &slot in &jtoc_slots {
            let old = self.registry.jtoc_get(slot) as u32;
            self.registry.jtoc_set(slot, u64::from(heap.resolve(GcRef(old)).0));
        }
        for pair in &mut self.dsu.pending {
            pair.0 = heap.resolve(pair.0);
            pair.1 = heap.resolve(pair.1);
        }
        for r in &mut self.host_roots {
            *r = heap.resolve(*r);
        }
        self.dsu.in_progress =
            self.dsu.in_progress.iter().map(|&a| heap.resolve(GcRef(a)).0).collect();
        self.dsu.done = self.dsu.done.iter().map(|&a| heap.resolve(GcRef(a)).0).collect();
        if self.lazy.active {
            for r in &mut self.lazy.worklist {
                *r = heap.resolve(*r);
            }
            self.lazy.old_copies =
                self.lazy.old_copies.iter().map(|&a| heap.resolve(GcRef(a)).0).collect();
            // The scan completed up top and its addresses died with
            // from-space; pin the stage at scan-done.
            self.lazy.scan_addr = 0;
            self.lazy.scan_limit = 0;
            if self.lazy.collapsing {
                // A copying collection resolves every reference as it
                // copies, which is exactly what the sweep was doing —
                // the collapse is complete.
                self.lazy.sweep_addr = 0;
                self.lazy.sweep_limit = 0;
            }
        }
        self.rebuild_dsu_index();
        Ok(outcome)
    }

    fn rebuild_dsu_index(&mut self) {
        self.dsu.index_of =
            self.dsu.pending.iter().enumerate().map(|(i, &(_, new))| (new.0, i)).collect();
    }

    /// A canonical, address-independent hash of the reachable heap.
    ///
    /// Cells are numbered in BFS visit order from the VM's roots
    /// (gathered in the same order [`Vm::collect_full`] uses) and hashed
    /// by content — kind, class id or length, primitive payloads, string
    /// bytes — with reference fields contributing the *visit index* of
    /// their target rather than its address. Two heaps holding isomorphic
    /// object graphs therefore hash equal even when cell placement
    /// differs, which is exactly what distinguishes a parallel collection
    /// (different placement, same graph) from a corrupted one.
    ///
    /// # Panics
    ///
    /// Panics if called mid-GC (on forwarded cells); fingerprint a VM only
    /// at a quiescent point.
    pub fn heap_fingerprint(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            let mut z = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_B9F9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        struct Visit {
            index_of: HashMap<u32, u64>,
            queue: std::collections::VecDeque<GcRef>,
        }
        impl Visit {
            fn visit(&mut self, r: GcRef) -> u64 {
                if let Some(&i) = self.index_of.get(&r.0) {
                    return i;
                }
                let next = self.index_of.len() as u64 + 1;
                self.index_of.insert(r.0, next);
                self.queue.push_back(r);
                next
            }
        }
        let mut v = Visit { index_of: HashMap::new(), queue: Default::default() };
        let mut h = 0xA076_1D64_78BD_642Fu64;

        // Roots, in collect_full's gathering order.
        for t in self.threads.iter().flatten() {
            for f in &t.frames {
                for val in f.locals.iter().chain(f.stack.iter()) {
                    if let Value::Ref(r) = val {
                        h = mix(h, v.visit(*r));
                    }
                }
            }
        }
        for slot in self.registry.jtoc_ref_slots() {
            h = mix(h, v.visit(GcRef(self.registry.jtoc_get(slot) as u32)));
        }
        for &r in &self.host_roots {
            h = mix(h, v.visit(r));
        }

        while let Some(r) = v.queue.pop_front() {
            match self.heap.kind(r) {
                HeapKind::Object => {
                    let class = self.heap.class_of(r);
                    h = mix(h, 1);
                    h = mix(h, u64::from(class.0));
                    let ref_map = &self.registry.class(class).ref_map;
                    for (i, &is_ref) in ref_map.iter().enumerate() {
                        let word = self.heap.get(r, i);
                        if is_ref {
                            h = mix(h, if word == 0 { 0 } else { v.visit(GcRef(word as u32)) });
                        } else {
                            h = mix(h, word);
                        }
                    }
                }
                HeapKind::RefArray => {
                    let len = self.heap.len_of(r) as usize;
                    h = mix(h, 2);
                    h = mix(h, len as u64);
                    for i in 0..len {
                        let word = self.heap.get(r, i);
                        h = mix(h, if word == 0 { 0 } else { v.visit(GcRef(word as u32)) });
                    }
                }
                HeapKind::PrimArray => {
                    let len = self.heap.len_of(r) as usize;
                    h = mix(h, 3);
                    h = mix(h, len as u64);
                    for i in 0..len {
                        h = mix(h, self.heap.get(r, i));
                    }
                }
                HeapKind::Str => {
                    h = mix(h, 4);
                    for b in self.heap.read_string(r).into_bytes() {
                        h = mix(h, u64::from(b));
                    }
                    h = mix(h, 5);
                }
            }
        }
        h
    }

    // ---- DSU mechanisms (composed by the jvolve update driver) -------------------

    /// Runs the update collection (paper §3.4): a full GC that duplicates
    /// every instance of a remapped class and stores the update log in the
    /// VM. `transformer_for` maps each *new* class to its object
    /// transformer (`jvolve_object_X`).
    ///
    /// # Errors
    ///
    /// Propagates heap overflow.
    pub fn collect_for_update(
        &mut self,
        remap: HashMap<ClassId, ClassId>,
        transformer_for: HashMap<ClassId, MethodId>,
    ) -> Result<GcOutcome, VmError> {
        struct MapRemap<'a>(&'a HashMap<ClassId, ClassId>);
        impl GcRemap for MapRemap<'_> {
            fn remap(&self, class: ClassId) -> Option<ClassId> {
                self.0.get(&class).copied()
            }
        }
        self.dsu.transformer_for = transformer_for;
        let outcome = self.collect_full(&MapRemap(&remap))?;
        self.dsu.pending = outcome.update_log.clone();
        self.dsu.in_progress.clear();
        self.dsu.done.clear();
        self.rebuild_dsu_index();
        Ok(outcome)
    }

    /// Number of (old, new) pairs waiting for transformation.
    pub fn pending_transforms(&self) -> usize {
        self.dsu.pending.len()
    }

    /// Runs the object transformer for every logged pair, in log order,
    /// honoring transformations already forced recursively. Afterwards the
    /// log is deleted, making the old copies unreachable (the next GC
    /// reclaims them, paper §3.4).
    ///
    /// # Errors
    ///
    /// Propagates transformer traps (including
    /// [`VmError::TransformerCycle`]); on error the update must be
    /// considered failed.
    pub fn transform_pending(&mut self) -> Result<usize, VmError> {
        let mut ran = 0;
        let n = self.dsu.pending.len();
        for i in 0..n {
            let (_, new) = self.dsu.pending[i];
            if self.dsu.done.contains(&new.0) {
                continue;
            }
            self.transform_one(i)?;
            ran += 1;
        }
        // Delete the log: old copies become unreachable.
        self.dsu.pending.clear();
        self.dsu.index_of.clear();
        self.dsu.in_progress.clear();
        self.dsu.done.clear();
        self.dsu.update_count += 1;
        Ok(ran)
    }

    /// Runs the transformer for log entry `i` synchronously.
    fn transform_one(&mut self, i: usize) -> Result<(), VmError> {
        let (old, new) = self.dsu.pending[i];
        if self.dsu.in_progress.contains(&new.0) {
            return Err(VmError::TransformerCycle);
        }
        if self.dsu.in_progress.len() >= MAX_TRANSFORMER_DEPTH {
            return Err(VmError::TransformerDepthExceeded { limit: MAX_TRANSFORMER_DEPTH });
        }
        let class = self.heap.class_of(new);
        let Some(&mid) = self.dsu.transformer_for.get(&class) else {
            return Err(VmError::Internal {
                message: format!(
                    "no object transformer registered for {}",
                    self.registry.class(class).name
                ),
            });
        };
        self.dsu.in_progress.insert(new.0);
        let compiled = self.compiled_for(mid)?;
        let mut frame = Frame::new(compiled, &[Value::Ref(new), Value::Ref(old)])?;
        frame.note = Some(FrameNote::TransformOf(new.0));
        self.run_sync(frame, "object-transformer")?;
        Ok(())
    }

    /// Calls a static method synchronously on a dedicated internal thread
    /// (used for class transformers and by tests/examples).
    ///
    /// # Errors
    ///
    /// Propagates traps; blocking in a synchronous call is an error.
    pub fn call_static_sync(
        &mut self,
        class: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Option<Value>, VmError> {
        let cid = self.registry.class_id(&ClassName::from(class)).ok_or_else(|| {
            VmError::ResolutionError { message: format!("unknown class {class}") }
        })?;
        let mid = self.registry.find_method(cid, method).ok_or_else(|| {
            VmError::ResolutionError { message: format!("unknown method {class}.{method}") }
        })?;
        let compiled = self.compiled_for(mid)?;
        let frame = Frame::new(compiled, args)?;
        self.run_sync(frame, &format!("{class}.{method}"))
    }

    /// Runs `frame` to completion on a temporary thread.
    pub(crate) fn run_sync(&mut self, frame: Frame, what: &str) -> Result<Option<Value>, VmError> {
        let id = self.add_thread(format!("<sync:{what}>"), frame);
        let idx = id.0 as usize;
        let mut gc_retry: Option<(u32, u64)> = None;
        loop {
            let mut thread = self.threads[idx].take().expect("sync thread exists");
            let event = self.exec_thread(&mut thread, usize::MAX);
            self.threads[idx] = Some(thread);
            match event {
                SliceEvent::Finished => {
                    let t = self.threads[idx].take().expect("sync thread");
                    self.threads.pop_if_last_none();
                    return Ok(t.result);
                }
                SliceEvent::Trapped(e) => {
                    self.threads[idx] = None;
                    self.threads.pop_if_last_none();
                    return Err(e);
                }
                SliceEvent::NeedGc => {
                    let pc = self.threads[idx]
                        .as_ref()
                        .and_then(|t| t.frames.last())
                        .map(|f| f.pc)
                        .unwrap_or(u32::MAX);
                    let steps = self.stats.steps;
                    if gc_retry == Some((pc, steps.saturating_sub(1))) {
                        self.threads[idx] = None;
                        self.threads.pop_if_last_none();
                        return Err(VmError::OutOfMemory { requested: 0 });
                    }
                    gc_retry = Some((pc, steps));
                    self.collect_full(&NoRemap)?;
                }
                SliceEvent::Blocked => {
                    self.threads[idx] = None;
                    self.threads.pop_if_last_none();
                    return Err(VmError::Internal {
                        message: format!("synchronous call to {what} blocked"),
                    });
                }
                SliceEvent::Quantum | SliceEvent::ReturnBarrier { .. } => continue,
            }
        }
    }

    /// Installs a return barrier on frame `frame_idx` of `thread` (paper
    /// §3.2): when that activation returns, the slice ends with
    /// [`SliceOutcome::ReturnBarrier`] so the driver can retry the update.
    ///
    /// # Errors
    ///
    /// Fails on a bad thread/frame index.
    pub fn install_return_barrier(
        &mut self,
        thread: ThreadId,
        frame_idx: usize,
    ) -> Result<(), VmError> {
        let t = self
            .threads
            .get_mut(thread.0 as usize)
            .and_then(|t| t.as_mut())
            .ok_or_else(|| VmError::Internal { message: format!("no thread {thread}") })?;
        let f = t.frames.get_mut(frame_idx).ok_or_else(|| VmError::Internal {
            message: format!("no frame {frame_idx} on {thread}"),
        })?;
        f.return_barrier = true;
        Ok(())
    }

    /// Clears every installed return barrier (update aborted or applied).
    pub fn clear_return_barriers(&mut self) {
        for t in self.threads.iter_mut().flatten() {
            for f in &mut t.frames {
                f.return_barrier = false;
            }
        }
    }

    /// On-stack replacement of an **OSR-capable** frame (paper §3.2):
    /// recompiles the method against current class metadata and swaps the
    /// frame's code. Base-tier code is 1:1 with bytecode so `pc` and
    /// `locals` carry over; a template-JIT frame first translates its pc
    /// through the fused stream's retained base-pc mapping.
    ///
    /// # Errors
    ///
    /// Fails if the frame is opt-compiled (not OSR-capable) or stale.
    pub fn osr_replace(&mut self, thread: ThreadId, frame_idx: usize) -> Result<(), VmError> {
        let (mid, osr_ok, base_pc) = {
            let t = self
                .threads
                .get(thread.0 as usize)
                .and_then(|t| t.as_ref())
                .ok_or_else(|| VmError::Internal { message: format!("no thread {thread}") })?;
            let f = t.frames.get(frame_idx).ok_or_else(|| VmError::Internal {
                message: format!("no frame {frame_idx} on {thread}"),
            })?;
            (f.method, f.compiled.osr_capable(), f.compiled.base_pc_of(f.pc))
        };
        if !osr_ok {
            return Err(VmError::Internal {
                message: "OSR supported only for base- or jit-compiled frames".to_string(),
            });
        }
        let fresh = Arc::new(jit::compile(
            &self.registry,
            mid,
            CompileLevel::Base,
            &self.config,
        )?);
        self.registry.set_compiled(mid, fresh.clone());
        let t = self.threads[thread.0 as usize].as_mut().expect("checked above");
        let f = &mut t.frames[frame_idx];
        let needed = fresh.max_locals as usize;
        if f.locals.len() < needed {
            f.locals.resize(needed, Value::Null);
        }
        f.compiled = fresh;
        f.pc = base_pc;
        Ok(())
    }

    /// On-stack migration of a frame to a **different method version**
    /// (the paper's §3.5 future work, modeled on UpStare): swaps the
    /// frame's method and code for `new_method` compiled at the base tier
    /// and repositions the pc at `new_pc`. Locals carry over by slot and
    /// the operand stack is preserved — the caller (the update driver)
    /// asserts that `new_pc` is an equivalent program point, as the
    /// paper's user-provided yield-point mapping does.
    ///
    /// # Errors
    ///
    /// Fails on a stale thread/frame, a non-base-tier frame (pc would not
    /// be a bytecode index), or an out-of-range `new_pc`.
    pub fn osr_migrate(
        &mut self,
        thread: ThreadId,
        frame_idx: usize,
        new_method: MethodId,
        new_pc: u32,
    ) -> Result<(), VmError> {
        {
            let t = self
                .threads
                .get(thread.0 as usize)
                .and_then(|t| t.as_ref())
                .ok_or_else(|| VmError::Internal { message: format!("no thread {thread}") })?;
            let f = t.frames.get(frame_idx).ok_or_else(|| VmError::Internal {
                message: format!("no frame {frame_idx} on {thread}"),
            })?;
            if !f.compiled.osr_capable() {
                return Err(VmError::Internal {
                    message: "active-method migration needs a base-tier frame".to_string(),
                });
            }
        }
        let fresh = Arc::new(jit::compile(
            &self.registry,
            new_method,
            CompileLevel::Base,
            &self.config,
        )?);
        if new_pc as usize >= fresh.code.len() {
            return Err(VmError::Internal {
                message: format!("migration pc {new_pc} out of range"),
            });
        }
        self.registry.set_compiled(new_method, fresh.clone());
        let t = self.threads[thread.0 as usize].as_mut().expect("checked above");
        let f = &mut t.frames[frame_idx];
        let needed = fresh.max_locals as usize;
        if f.locals.len() < needed {
            f.locals.resize(needed, Value::Null);
        }
        f.method = new_method;
        f.compiled = fresh;
        f.pc = new_pc;
        Ok(())
    }

    /// Restores a frame's executing code, method, pc, and local-slot count
    /// — the exact inverse of [`Vm::osr_replace`] / [`Vm::osr_migrate`],
    /// used by the update controller's rollback to put an aborted update's
    /// frames back on their old code.
    ///
    /// # Errors
    ///
    /// Fails on a stale thread/frame index.
    pub fn osr_restore(
        &mut self,
        thread: ThreadId,
        frame_idx: usize,
        method: MethodId,
        compiled: Arc<CompiledMethod>,
        pc: u32,
        locals_len: usize,
    ) -> Result<(), VmError> {
        let t = self
            .threads
            .get_mut(thread.0 as usize)
            .and_then(|t| t.as_mut())
            .ok_or_else(|| VmError::Internal { message: format!("no thread {thread}") })?;
        let f = t.frames.get_mut(frame_idx).ok_or_else(|| VmError::Internal {
            message: format!("no frame {frame_idx} on {thread}"),
        })?;
        f.method = method;
        f.compiled = compiled;
        f.pc = pc;
        f.locals.truncate(locals_len);
        Ok(())
    }

    /// Enables lazy-indirection migration for the given class mapping
    /// (the JDrums/DVM-style baseline, paper §5). Only meaningful when
    /// [`VmConfig::lazy_indirection`] is set.
    pub fn begin_lazy_update(&mut self, remap: HashMap<ClassId, ClassId>) {
        self.dsu.lazy_remap.extend(remap);
        self.dsu.update_count += 1;
    }

    // ---- lazy migration (read-barrier epoch, see `crate::lazy`) ------------------

    /// Opens a lazy-migration epoch: the O(roots) alternative to
    /// [`Vm::collect_for_update`]. Marks the `remap` classes
    /// version-pending, snapshots the allocation **watermark** (the SATB
    /// commit point — no heap walk, no copying, no transformers, so this
    /// *is* the commit pause and it is independent of heap size), arms
    /// the read barrier, and bumps the dispatch epoch so every inline
    /// cache re-resolves into barrier-aware dispatch. Stale objects are
    /// discovered afterwards by [`Vm::lazy_scan`] batches; objects
    /// allocated past the watermark can never be stale because install
    /// already invalidated every method that could allocate a changed
    /// class. Returns the watermarked region's size in words (what the
    /// scanner will cover).
    ///
    /// # Panics
    ///
    /// Panics if an epoch is already active (updates cannot overlap).
    pub fn begin_lazy_migration(
        &mut self,
        remap: HashMap<ClassId, ClassId>,
        transformer_for: HashMap<ClassId, MethodId>,
    ) -> usize {
        assert!(!self.lazy.active, "a lazy-migration epoch is already active");
        self.dsu.transformer_for = transformer_for;
        self.dsu.pending.clear();
        self.dsu.index_of.clear();
        self.dsu.in_progress.clear();
        self.dsu.done.clear();
        let scan_addr = self.heap.active_base();
        let scan_limit = self.heap.alloc_cursor();
        self.lazy =
            LazyEpoch { active: true, remap, scan_addr, scan_limit, ..LazyEpoch::default() };
        self.dsu.update_count += 1;
        self.registry.bump_code_epoch();
        scan_limit - scan_addr
    }

    /// Whether a lazy-migration epoch is in progress (read barrier armed).
    pub fn lazy_epoch_active(&self) -> bool {
        self.lazy.active
    }

    /// Which part of the lazy epoch's post-pause work is up next (see
    /// [`LazyStage`]); `Inactive` outside an epoch.
    pub fn lazy_stage(&self) -> LazyStage {
        self.lazy.stage()
    }

    /// Runs one bounded SATB discovery batch: walks at most `max_cells`
    /// heap cells from the scan cursor toward the watermark, queueing
    /// every not-yet-migrated stale object on the worklist. Objects the
    /// guest already migrated through the barrier sit behind forwarding
    /// words and are skipped via their preserved headers. Infallible — it
    /// allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics outside an active epoch.
    pub fn lazy_scan(&mut self, max_cells: usize) -> ScanOutcome {
        assert!(self.lazy.active, "lazy_scan outside an epoch");
        if self.lazy.scan_done() {
            return ScanOutcome { cells: 0, found: 0, done: true };
        }
        let snapshot = self.registry.layout_snapshot();
        let mut discovered: Vec<GcRef> = Vec::new();
        let remap = &self.lazy.remap;
        let (next, cells) = self.heap.scan_objects(
            self.lazy.scan_addr,
            self.lazy.scan_limit,
            max_cells,
            &snapshot,
            |r, class| {
                if remap.contains_key(&class) {
                    discovered.push(r);
                }
            },
        );
        self.lazy.scan_addr = next;
        let found = discovered.len();
        self.lazy.worklist.extend(discovered);
        ScanOutcome { cells, found, done: self.lazy.scan_done() }
    }

    /// Worklist entries the scavenger has not yet passed (0 outside an
    /// epoch). Entries the guest already migrated through the barrier
    /// still count until the scavenger skips over them.
    pub fn lazy_remaining(&self) -> usize {
        self.lazy.worklist.len() - self.lazy.cursor
    }

    /// First-touch duplication: the slow path shared by the interpreter's
    /// read barrier, `Dsu.forceTransform`, and the scavenger. `r` must be
    /// a *resolved* stale object. Allocates the old-layout copy and the
    /// zeroed new-layout object, registers the pair in the update log, and
    /// installs the forwarding word — but does **not** run the
    /// transformer. Returns `None` if either allocation fails, with
    /// nothing installed (the caller collects and retries).
    pub(crate) fn lazy_dup(&mut self, r: GcRef) -> Option<(GcRef, GcRef)> {
        let old_class = self.heap.class_of(r);
        let new_class = *self.lazy.remap.get(&old_class).expect("lazy_dup on a stale object");
        let old_size = self.registry.object_size(old_class);
        let old_copy = self.heap.alloc_object(old_class, old_size)?;
        let new_obj = self.heap.alloc_object(new_class, self.registry.object_size(new_class))?;
        // (If the second allocation fails the old copy is dead garbage the
        // caller's collection reclaims; no forwarding was installed.)
        for i in 0..old_size {
            let w = self.heap.get(r, i);
            self.heap.set(old_copy, i, w);
        }
        self.heap.install_forward(r, new_obj);
        self.lazy.old_copies.insert(old_copy.0);
        self.dsu.pending.push((old_copy, new_obj));
        self.dsu.index_of.insert(new_obj.0, self.dsu.pending.len() - 1);
        Some((old_copy, new_obj))
    }

    /// Transforms up to `batch` untouched stale objects from the worklist
    /// (the epoch's background scavenger; the update controller calls this
    /// between scheduler slices). Entries the guest already migrated
    /// through the read barrier are skipped. Transformers run
    /// synchronously, exactly as [`Vm::transform_pending`] runs them in
    /// the eager protocol.
    ///
    /// # Errors
    ///
    /// Propagates transformer traps and heap exhaustion; such an error
    /// poisons the epoch (the update controller aborts).
    ///
    /// # Panics
    ///
    /// Panics outside an active epoch.
    pub fn lazy_scavenge(&mut self, batch: usize) -> Result<ScavengeOutcome, VmError> {
        assert!(self.lazy.active, "lazy_scavenge outside an epoch");
        let mut transformed = 0;
        while transformed < batch && self.lazy.cursor < self.lazy.worklist.len() {
            let idx = self.lazy.cursor;
            let r = self.heap.resolve(self.lazy.worklist[idx]);
            let stale = self.heap.kind(r) == HeapKind::Object
                && self.lazy.remap.contains_key(&self.heap.class_of(r))
                && !self.lazy.old_copies.contains(&r.0);
            if !stale {
                // The guest (or a recursive force) got here first.
                self.lazy.cursor = idx + 1;
                continue;
            }
            let mut gc_retries = 0;
            let pair_idx = loop {
                // Re-resolve through the worklist each attempt: a failed
                // allocation collects, which moves the object.
                let r = self.heap.resolve(self.lazy.worklist[idx]);
                if let Some(_pair) = self.lazy_dup(r) {
                    break self.dsu.pending.len() - 1;
                }
                if gc_retries >= 1 {
                    return Err(VmError::OutOfMemory { requested: 0 });
                }
                gc_retries += 1;
                self.collect_full(&NoRemap)?;
            };
            // The pair is rooted via the update log now; advance past the
            // entry before running the transformer (which may itself GC).
            self.lazy.cursor = idx + 1;
            self.transform_one(pair_idx)?;
            transformed += 1;
        }
        Ok(ScavengeOutcome { transformed, remaining: self.lazy_remaining() })
    }

    /// Runs one bounded forwarding-collapse batch. The first call performs
    /// the stage's only O(roots) work — rewriting thread frames, statics,
    /// and host roots through the forwarding words and dropping the update
    /// log, at which point the stale originals and old copies are plain
    /// garbage — and records the sweep horizon. Subsequent calls sweep at
    /// most `max_cells` heap cells, rewriting reference slots that still
    /// point at forwarded cells. Reference loads resolve through forwards
    /// while the epoch is active, so swept cells can never be
    /// recontaminated by stale references read out of unswept ones.
    /// Infallible — it allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics outside an active epoch, before the scan + drain are
    /// complete, or while a transformer frame is still on some stack.
    pub fn lazy_collapse(&mut self, max_cells: usize) -> CollapseOutcome {
        assert!(self.lazy.active, "lazy_collapse outside an epoch");
        assert!(
            self.lazy.scan_done() && self.lazy.cursor >= self.lazy.worklist.len(),
            "lazy_collapse before the epoch drained"
        );
        assert!(self.dsu.in_progress.is_empty(), "transformer still in progress");
        if !self.lazy.collapsing {
            let heap = &self.heap;
            for t in self.threads.iter_mut().flatten() {
                for f in &mut t.frames {
                    for v in f.locals.iter_mut().chain(f.stack.iter_mut()) {
                        if let Value::Ref(r) = v {
                            *r = heap.resolve(*r);
                        }
                    }
                    if let Some(FrameNote::TransformOf(addr)) = &mut f.note {
                        *addr = heap.resolve(GcRef(*addr)).0;
                    }
                }
            }
            let jtoc_slots: Vec<u32> = self.registry.jtoc_ref_slots().collect();
            for slot in jtoc_slots {
                let old = self.registry.jtoc_get(slot) as u32;
                self.registry.jtoc_set(slot, u64::from(heap.resolve(GcRef(old)).0));
            }
            for r in &mut self.host_roots {
                *r = heap.resolve(*r);
            }
            self.dsu.pending.clear();
            self.dsu.index_of.clear();
            self.dsu.done.clear();
            self.lazy.old_copies.clear();
            self.lazy.worklist.clear();
            self.lazy.cursor = 0;
            self.lazy.collapsing = true;
            if self.heap.has_lazy_forwards() {
                self.lazy.sweep_addr = self.heap.active_base();
                self.lazy.sweep_limit = self.heap.alloc_cursor();
            }
            // else: no forwarding word exists anywhere (e.g. a zero-stale
            // epoch) — the zero-length sweep is already done.
        }
        if self.lazy.sweep_addr >= self.lazy.sweep_limit {
            return CollapseOutcome { cells: 0, rewritten: 0, done: true };
        }
        let snapshot = self.registry.layout_snapshot();
        let (next, cells, rewritten) = self.heap.sweep_forwards(
            self.lazy.sweep_addr,
            self.lazy.sweep_limit,
            max_cells,
            &snapshot,
        );
        self.lazy.sweep_addr = next;
        CollapseOutcome { cells, rewritten, done: self.lazy.sweep_addr >= self.lazy.sweep_limit }
    }

    /// Closes a collapsed lazy-migration epoch: clears the epoch state
    /// and bumps the dispatch epoch again (inline caches re-resolve back
    /// onto the barrier-free fast path). Unlike the eager protocol there
    /// is **no commit collection**: the collapse already detached every
    /// live reference from the forwarding words, so the stale originals
    /// are reclaimed by whatever collection happens naturally next.
    /// Returns the number of objects transformed during the epoch.
    ///
    /// # Panics
    ///
    /// Panics unless the epoch reached [`LazyStage::Done`] or a
    /// transformer is still on some stack.
    pub fn finish_lazy_migration(&mut self) -> usize {
        assert!(self.lazy.active, "finish_lazy_migration outside an epoch");
        assert_eq!(self.lazy.stage(), LazyStage::Done, "epoch not collapsed");
        assert!(self.dsu.in_progress.is_empty(), "transformer still in progress");
        let transformed = self.lazy.reset();
        self.dsu.pending.clear();
        self.dsu.index_of.clear();
        self.dsu.done.clear();
        self.registry.bump_code_epoch();
        transformed
    }

    // ---- host-side heap access (tests, microbenchmarks) --------------------------

    /// Allocates an instance of `class` from the host, rooted in the VM's
    /// host-root table. Returns the root index (stable across GCs; the ref
    /// itself moves).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] if allocation fails even after GC.
    pub fn host_alloc(&mut self, class: &str) -> Result<usize, VmError> {
        let cid = self.registry.class_id(&ClassName::from(class)).ok_or_else(|| {
            VmError::ResolutionError { message: format!("unknown class {class}") }
        })?;
        let size = self.registry.object_size(cid);
        let r = match self.heap.alloc_object(cid, size) {
            Some(r) => r,
            None => {
                self.collect_full(&NoRemap)?;
                self.heap
                    .alloc_object(cid, size)
                    .ok_or(VmError::OutOfMemory { requested: size + 1 })?
            }
        };
        self.host_roots.push(r);
        Ok(self.host_roots.len() - 1)
    }

    /// Current heap reference of host root `idx`.
    pub fn host_root(&self, idx: usize) -> GcRef {
        self.host_roots[idx]
    }

    /// Drops all host roots (they become garbage).
    pub fn clear_host_roots(&mut self) {
        self.host_roots.clear();
    }

    /// Reads an instance field of the object at `r` by name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown field (host-side test/bench helper).
    pub fn read_field(&self, r: GcRef, field: &str) -> Value {
        let class = self.heap.class_of(r);
        let (off, is_ref) =
            self.registry.field_offset(class, field).expect("known field");
        Value::from_word(self.heap.get(r, off as usize), is_ref)
    }

    /// Writes an instance field of the object at `r` by name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown field.
    pub fn write_field(&mut self, r: GcRef, field: &str, v: Value) {
        let class = self.heap.class_of(r);
        let (off, _) = self.registry.field_offset(class, field).expect("known field");
        self.heap.set(r, off as usize, v.to_word());
    }

    /// Reads a static field by name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown class or field.
    pub fn read_static(&self, class: &str, field: &str) -> Value {
        let cid = self.registry.class_id(&ClassName::from(class)).expect("known class");
        let (slot, is_ref) = self.registry.static_slot(cid, field).expect("known static");
        Value::from_word(self.registry.jtoc_get(slot), is_ref)
    }

    /// Renders a [`Value`] for assertions: strings are read from the heap.
    pub fn display_value(&self, v: Value) -> String {
        match v {
            Value::Ref(r) if self.heap.kind(r) == HeapKind::Str => self.heap.read_string(r),
            other => other.to_string(),
        }
    }

    /// Allocates a guest string from the host.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] if allocation fails even after GC.
    pub fn alloc_string_value(&mut self, s: &str) -> Result<Value, VmError> {
        match self.heap.alloc_string(s) {
            Some(r) => Ok(Value::Ref(r)),
            None => {
                self.collect_full(&NoRemap)?;
                self.heap
                    .alloc_string(s)
                    .map(Value::Ref)
                    .ok_or(VmError::OutOfMemory { requested: s.len() / 8 + 1 })
            }
        }
    }

    /// Looks up a constructor method id (host/test helper).
    pub fn ctor_of(&self, class: &str) -> Option<MethodId> {
        let cid = self.registry.class_id(&ClassName::from(class))?;
        self.registry.find_method(cid, CTOR_NAME)
    }
}

/// Tiny extension: drop trailing `None` thread slots so sync threads don't
/// grow the table forever.
trait PopIfLastNone {
    fn pop_if_last_none(&mut self);
}

impl PopIfLastNone for Vec<Option<VmThread>> {
    fn pop_if_last_none(&mut self) {
        while matches!(self.last(), Some(None)) {
            self.pop();
        }
    }
}

// A fleet shard owns its `Vm` on a dedicated OS thread; this compile-time
// check keeps the VM (heap, registry, threads, simulated net) `Send` so a
// non-`Send` field sneaking in fails the build, not a fleet test.
const fn _assert_send<T: Send>() {}
const _: () = _assert_send::<Vm>();
