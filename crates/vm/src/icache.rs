//! Per-thread inline caches for call dispatch.
//!
//! The steady-state cost of DSU support hinges on dispatch speed: the
//! paper's Fig. 5 shows stock Jikes and JVolve "essentially identical"
//! because update support adds nothing to the hot path. Here the
//! interpreter's `CallVirtual` walks a TIB and `CallDirect` funnels
//! through the registry on every call; these caches memoize the resolved
//! target per *call site* so a hit costs one epoch compare, one class
//! compare, and an `Arc` clone.
//!
//! Update safety comes from the registry's dispatch epoch
//! ([`Registry::code_epoch`](crate::registry::Registry::code_epoch)):
//! every registry mutation that can change what a call site should run
//! advances the epoch, and entries record the epoch they were filled
//! under — a mismatch forces the slow path. One counter bump therefore
//! invalidates every cache in the VM, which is what makes class swaps,
//! invalidation cascades, OSR republishes, and controller *rollbacks*
//! safe without enumerating threads.
//!
//! Cache state lives on the [`VmThread`](crate::thread::VmThread), keyed
//! by (method, call-site id), so [`CompiledMethod`] stays shareable and
//! the parallel-GC oracle never sees it.

use std::sync::Arc;

use crate::compiled::CompiledMethod;
use crate::ids::{ClassId, MethodId};

/// Polymorphic fallback ways per call site (a monomorphic site uses one).
pub const POLY_WAYS: usize = 4;

/// One cached dispatch target.
#[derive(Debug, Clone)]
pub struct SiteEntry {
    /// Receiver class this entry dispatches for (unused by direct calls).
    pub class: ClassId,
    /// Resolved target method.
    pub method: MethodId,
    /// The target's code at fill time.
    pub code: Arc<CompiledMethod>,
}

/// The cache row of one call site: up to [`POLY_WAYS`] targets, all
/// stamped with the epoch they were filled under.
#[derive(Debug, Clone, Default)]
pub struct CallSiteCache {
    epoch: u64,
    entries: [Option<SiteEntry>; POLY_WAYS],
    /// Rotating victim cursor once every way is occupied.
    next_way: u8,
}

impl CallSiteCache {
    /// The cached target for `class`, valid only under `epoch`.
    #[inline]
    pub fn lookup(&self, epoch: u64, class: ClassId) -> Option<&SiteEntry> {
        if self.epoch != epoch {
            return None;
        }
        self.entries.iter().flatten().find(|e| e.class == class)
    }

    /// The cached direct-call target (way 0), valid only under `epoch`.
    #[inline]
    pub fn lookup_direct(&self, epoch: u64) -> Option<&SiteEntry> {
        if self.epoch != epoch {
            return None;
        }
        self.entries[0].as_ref()
    }

    /// Records a resolved target. A stale row (older epoch) is cleared
    /// first; a full row evicts round-robin.
    pub fn insert(&mut self, epoch: u64, entry: SiteEntry) {
        if self.epoch != epoch {
            self.epoch = epoch;
            self.entries = Default::default();
            self.next_way = 0;
        }
        let way = match self.entries.iter().position(Option::is_none) {
            Some(free) => free,
            None => {
                let victim = self.next_way as usize % POLY_WAYS;
                self.next_way = self.next_way.wrapping_add(1);
                victim
            }
        };
        self.entries[way] = Some(entry);
    }

    /// Records a direct-call target in way 0.
    pub fn insert_direct(&mut self, epoch: u64, entry: SiteEntry) {
        if self.epoch != epoch {
            self.epoch = epoch;
            self.entries = Default::default();
            self.next_way = 0;
        }
        self.entries[0] = Some(entry);
    }
}

/// The cache rows of one method's code object.
#[derive(Debug, Default)]
struct MethodSites {
    /// Identity of the code the rows belong to (the `Arc` pointer
    /// address). Recompilation produces a fresh allocation, so a mismatch
    /// resets the rows — site ids are only meaningful per code object.
    code_key: usize,
    sites: Vec<CallSiteCache>,
}

/// All inline caches of one thread, indexed densely by [`MethodId`].
///
/// A dense `Vec` rather than a hashmap: the row lookup sits on every
/// call's fast path, and hashing would eat most of the win.
#[derive(Debug, Default)]
pub struct InlineCaches {
    methods: Vec<MethodSites>,
}

impl InlineCaches {
    /// The cache row for call site `site` of `code`, whose identity is
    /// `code_key` (its `Arc` address). Rows are (re)allocated lazily when
    /// the method is first seen or its code object changed.
    #[inline]
    pub fn site(&mut self, code: &CompiledMethod, code_key: usize, site: u32) -> &mut CallSiteCache {
        let idx = code.method.index();
        if idx >= self.methods.len() {
            self.methods.resize_with(idx + 1, MethodSites::default);
        }
        let m = &mut self.methods[idx];
        if m.code_key != code_key || m.sites.len() != code.call_sites as usize {
            m.code_key = code_key;
            m.sites.clear();
            m.sites.resize(code.call_sites as usize, CallSiteCache::default());
        }
        &mut m.sites[site as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::{CompileLevel, RInstr};

    fn code(method: u32, call_sites: u32) -> Arc<CompiledMethod> {
        Arc::new(CompiledMethod {
            method: MethodId(method),
            level: CompileLevel::Base,
            code: vec![RInstr::Return],
            max_locals: 0,
            inlined: vec![],
            referenced_classes: vec![],
            invocations: Default::default(),
            loop_trips: Default::default(),
            call_sites,
            fused: None,
            leaf: false,
        })
    }

    fn entry(class: u32, target: &Arc<CompiledMethod>) -> SiteEntry {
        SiteEntry { class: ClassId(class), method: target.method, code: Arc::clone(target) }
    }

    #[test]
    fn epoch_mismatch_misses_and_clears_on_refill() {
        let target = code(9, 0);
        let mut row = CallSiteCache::default();
        row.insert(3, entry(1, &target));
        assert!(row.lookup(3, ClassId(1)).is_some());
        assert!(row.lookup(4, ClassId(1)).is_none(), "newer epoch invalidates");
        row.insert(4, entry(2, &target));
        assert!(row.lookup(4, ClassId(1)).is_none(), "stale ways were dropped");
        assert!(row.lookup(4, ClassId(2)).is_some());
    }

    #[test]
    fn polymorphic_ways_fill_then_rotate() {
        let target = code(9, 0);
        let mut row = CallSiteCache::default();
        for c in 0..POLY_WAYS as u32 {
            row.insert(1, entry(c, &target));
        }
        for c in 0..POLY_WAYS as u32 {
            assert!(row.lookup(1, ClassId(c)).is_some(), "all {POLY_WAYS} ways live");
        }
        row.insert(1, entry(99, &target));
        assert!(row.lookup(1, ClassId(99)).is_some());
        let live = (0..POLY_WAYS as u32)
            .filter(|&c| row.lookup(1, ClassId(c)).is_some())
            .count();
        assert_eq!(live, POLY_WAYS - 1, "one victim was evicted");
    }

    #[test]
    fn rows_reset_when_the_code_object_changes() {
        let mut ic = InlineCaches::default();
        let a = code(5, 2);
        let target = code(9, 0);
        let key_a = Arc::as_ptr(&a) as usize;
        ic.site(&a, key_a, 1).insert(7, entry(1, &target));
        assert!(ic.site(&a, key_a, 1).lookup(7, ClassId(1)).is_some());

        // Same method id, new code object (recompilation): rows reset.
        let b = code(5, 3);
        let key_b = Arc::as_ptr(&b) as usize;
        assert!(ic.site(&b, key_b, 1).lookup(7, ClassId(1)).is_none());
        // And the row vector was resized to the new site count.
        ic.site(&b, key_b, 2).insert(7, entry(2, &target));
        assert!(ic.site(&b, key_b, 2).lookup(7, ClassId(2)).is_some());
    }
}
