//! Runtime values.

use std::fmt;

/// A reference into the heap: a word index of an object header.
///
/// Never zero — word 0 of the heap is reserved so that a zero word in a
/// field slot always means `null`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GcRef(pub u32);

impl GcRef {
    /// The raw word address.
    pub fn addr(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GcRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A value on a frame's operand stack or in a local slot.
///
/// Frames carrying typed values are the reproduction's *stack maps*: the
/// paper's compiler emits a stack map at every VM safe point enumerating
/// which slots hold references; here the tag on each slot provides the same
/// information to the GC exactly.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Heap reference.
    Ref(GcRef),
    /// The null reference.
    #[default]
    Null,
}

impl Value {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `Int`. Interpreter-internal: verified
    /// bytecode never reaches a mismatch.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            other => panic!("expected int value, found {other:?}"),
        }
    }

    /// The boolean payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Bool`.
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(v) => v,
            other => panic!("expected bool value, found {other:?}"),
        }
    }

    /// The reference payload, with `Null` mapped to `None`.
    ///
    /// # Panics
    ///
    /// Panics if the value is an `Int` or `Bool`.
    pub fn as_ref_opt(self) -> Option<GcRef> {
        match self {
            Value::Ref(r) => Some(r),
            Value::Null => None,
            other => panic!("expected reference value, found {other:?}"),
        }
    }

    /// Encodes the value as a raw heap word (refs as address, null as 0).
    ///
    /// Booleans encode as 0/1; integers as two's complement.
    pub fn to_word(self) -> u64 {
        match self {
            Value::Int(v) => v as u64,
            Value::Bool(b) => u64::from(b),
            Value::Ref(r) => u64::from(r.0),
            Value::Null => 0,
        }
    }

    /// Decodes a raw heap word given whether the slot holds a reference.
    pub fn from_word(word: u64, is_ref: bool) -> Value {
        if is_ref {
            if word == 0 {
                Value::Null
            } else {
                Value::Ref(GcRef(word as u32))
            }
        } else {
            Value::Int(word as i64)
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<GcRef> for Value {
    fn from(r: GcRef) -> Self {
        Value::Ref(r)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Ref(r) => write!(f, "{r}"),
            Value::Null => f.write_str("null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip() {
        assert_eq!(Value::from_word(Value::Int(-7).to_word(), false), Value::Int(-7));
        assert_eq!(Value::from_word(Value::Ref(GcRef(42)).to_word(), true), Value::Ref(GcRef(42)));
        assert_eq!(Value::from_word(Value::Null.to_word(), true), Value::Null);
    }

    #[test]
    fn bool_encodes_as_int_word() {
        assert_eq!(Value::Bool(true).to_word(), 1);
        assert_eq!(Value::Bool(false).to_word(), 0);
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn as_int_panics_on_ref() {
        Value::Null.as_int();
    }
}
