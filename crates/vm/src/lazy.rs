//! Lazy-migration epoch state: on-demand object transformation behind a
//! read barrier.
//!
//! The eager update protocol (paper §3.4) commits with a stop-the-world
//! full-heap copying GC, so the pause grows with live heap size. A lazy
//! epoch instead marks changed classes *version-pending* and defers the
//! copies: the commit pause is a single linear scan that records every
//! stale-class instance in an ascending-address worklist (no copying, no
//! transformers), and objects migrate afterwards on first touch.
//!
//! While an epoch is [`active`](LazyEpoch::active):
//!
//! * The interpreter's reference loads (`GetField`/`PutField`/
//!   `CallVirtual`, plus `Dsu.forceTransform`) go through a read barrier:
//!   touching a stale object duplicates it (old-layout copy + zeroed
//!   new-layout object), installs a forwarding word over the original, and
//!   runs the object transformer *before* the faulting instruction
//!   retries. Flipping barrier mode bumps the registry's `code_epoch`, so
//!   the epoch composes with the inline caches.
//! * A scavenger ([`Vm::lazy_scavenge`](crate::Vm::lazy_scavenge), stepped
//!   by the update controller between scheduler slices) walks the worklist
//!   and transforms whatever the guest has not touched, so migration
//!   completes even for objects the program never reads again.
//! * The collectors forward through the pending pairs exactly as they do
//!   for lazy-indirection forwards: the worklist tail is rooted, so
//!   untouched stale objects stay live until transformed — lazy and eager
//!   epochs transform the *same* object multiset.
//!
//! When the worklist drains, [`Vm::finish_lazy_migration`]
//! (crate) clears the epoch, bumps `code_epoch` again (restoring the
//! barrier-free fast path — zero steady-state overhead, unlike the
//! JDrums-style `lazy_indirection` baseline), and runs one ordinary
//! collection to collapse every outstanding forwarding word.

use std::collections::{HashMap, HashSet};

use crate::ids::ClassId;
use crate::value::GcRef;

/// Maximum nesting of in-progress object transformers before the VM
/// raises [`VmError::TransformerDepthExceeded`](crate::VmError): a typed
/// trap instead of a host stack overflow when a transformer set
/// force-transforms an unboundedly deep chain.
pub const MAX_TRANSFORMER_DEPTH: usize = 128;

/// Progress report from one [`Vm::lazy_scavenge`](crate::Vm::lazy_scavenge)
/// batch.
#[derive(Debug, Clone, Copy)]
pub struct ScavengeOutcome {
    /// Objects transformed by this batch (worklist entries the guest had
    /// already migrated through the barrier are skipped, not counted).
    pub transformed: usize,
    /// Worklist entries still pending after the batch; `0` means the
    /// epoch is ready for [`Vm::finish_lazy_migration`](crate::Vm).
    pub remaining: usize,
}

/// State of one lazy-migration epoch. Owned by [`Vm`](crate::Vm); all
/// fields are crate-internal — embedders observe the epoch through
/// [`Vm::lazy_epoch_active`](crate::Vm::lazy_epoch_active) and the
/// scavenger's [`ScavengeOutcome`].
#[derive(Debug, Default)]
pub struct LazyEpoch {
    /// Whether an epoch is in progress (the read barrier is armed).
    pub(crate) active: bool,
    /// Version-pending classes: old `ClassId` → updated `ClassId`. An
    /// object is *stale* iff its class is a key here.
    pub(crate) remap: HashMap<ClassId, ClassId>,
    /// Old-layout copies produced by first-touch duplication. They keep
    /// the stale class (so transformers can read them with old offsets)
    /// and must never themselves trip the barrier.
    pub(crate) old_copies: HashSet<u32>,
    /// Every stale object found by the commit scan, ascending original
    /// address — the scavenger's queue and (from `cursor` on) extra GC
    /// roots, so untouched stale objects survive until transformed.
    pub(crate) worklist: Vec<GcRef>,
    /// First worklist entry the scavenger has not yet passed.
    pub(crate) cursor: usize,
    /// Object transformers completed this epoch (barrier + scavenger).
    pub(crate) transformed: usize,
}

impl LazyEpoch {
    /// The updated class an instance of `class` must migrate to, if
    /// `class` is version-pending in this epoch.
    pub(crate) fn stale_target(&self, class: ClassId) -> Option<ClassId> {
        if self.active {
            self.remap.get(&class).copied()
        } else {
            None
        }
    }

    /// Entries the scavenger has not yet passed.
    pub(crate) fn pending_entries(&self) -> &[GcRef] {
        &self.worklist[self.cursor..]
    }

    /// Drops the processed worklist prefix (called before a collection so
    /// only the live tail is rooted and rewritten).
    pub(crate) fn drop_processed(&mut self) {
        if self.cursor > 0 {
            self.worklist.drain(..self.cursor);
            self.cursor = 0;
        }
    }

    /// Clears the epoch back to the inactive state, returning the number
    /// of objects transformed while it ran.
    pub(crate) fn reset(&mut self) -> usize {
        let transformed = self.transformed;
        *self = LazyEpoch::default();
        transformed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_target_requires_active_epoch() {
        let mut epoch = LazyEpoch {
            remap: HashMap::from([(ClassId(1), ClassId(2))]),
            ..LazyEpoch::default()
        };
        assert_eq!(epoch.stale_target(ClassId(1)), None, "inactive epoch never matches");
        epoch.active = true;
        assert_eq!(epoch.stale_target(ClassId(1)), Some(ClassId(2)));
        assert_eq!(epoch.stale_target(ClassId(2)), None);
    }

    #[test]
    fn drop_processed_keeps_only_the_tail() {
        let mut epoch = LazyEpoch {
            worklist: vec![GcRef(10), GcRef(20), GcRef(30)],
            cursor: 2,
            ..LazyEpoch::default()
        };
        epoch.drop_processed();
        assert_eq!(epoch.worklist, vec![GcRef(30)]);
        assert_eq!(epoch.cursor, 0);
        assert_eq!(epoch.pending_entries(), &[GcRef(30)]);
    }

    #[test]
    fn reset_reports_and_clears_progress() {
        let mut epoch = LazyEpoch { active: true, transformed: 7, ..LazyEpoch::default() };
        assert_eq!(epoch.reset(), 7);
        assert!(!epoch.active);
        assert_eq!(epoch.transformed, 0);
    }
}
