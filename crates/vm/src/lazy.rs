//! Lazy-migration epoch state: on-demand object transformation behind a
//! read barrier, with snapshot-at-the-beginning discovery and incremental
//! forwarding collapse.
//!
//! The eager update protocol (paper §3.4) commits with a stop-the-world
//! full-heap copying GC, so the pause grows with live heap size. A lazy
//! epoch instead marks changed classes *version-pending* and defers all
//! heap-proportional work: the commit records only an allocation
//! **watermark** (`[scan_addr, scan_limit)` — the active semispace at the
//! moment the barrier arms), so the pause is O(roots); discovery,
//! transformation, and forwarding collapse all happen afterwards in
//! bounded controller-stepped batches.
//!
//! An epoch moves through four [stages](LazyStage) while
//! [`active`](LazyEpoch::active):
//!
//! * **Scan** — a resumable scanner ([`Vm::lazy_scan`](crate::Vm)) walks
//!   the watermarked region in bounded batches, pushing every stale-class
//!   instance onto the worklist. The read barrier is the SATB invariant
//!   keeper: any stale object the mutator touches first is transformed on
//!   the spot (its forwarding word makes the scanner skip it), and
//!   objects allocated *past* the watermark can never be stale, because
//!   every method that could allocate a changed class was invalidated at
//!   install time and recompiles against the new class. A full GC during
//!   this stage first runs the scanner to completion so the collection
//!   can root the undiscovered tail.
//! * **Drain** — the PR 5 scavenger ([`Vm::lazy_scavenge`](crate::Vm))
//!   transforms bounded batches off the worklist, so cold objects migrate
//!   even if the guest never reads them again.
//! * **Collapse** — with every stale object transformed, the epoch's
//!   forwarding words are compacted away incrementally
//!   ([`Vm::lazy_collapse`](crate::Vm)): one O(roots) pass rewrites
//!   thread frames, statics, and host roots through the forwards, then a
//!   resumable sweep rewrites heap referrers batch by batch. Reference
//!   *loads* resolve through forwards while the epoch is active, so a
//!   stale reference read from an unswept cell can never recontaminate a
//!   swept one.
//! * **Done** — [`Vm::finish_lazy_migration`](crate::Vm) disarms the
//!   barrier and bumps `code_epoch`, restoring the barrier-free fast
//!   path. No GC runs: the stale originals are unreferenced garbage and
//!   their forwarding words are reclaimed by the next natural collection.
//!
//! The collectors forward through the pending pairs exactly as they do
//! for lazy-indirection forwards: the worklist tail is rooted, so
//! untouched stale objects stay live until transformed — lazy and eager
//! epochs transform the *same* object multiset.

use std::collections::{HashMap, HashSet};

use crate::ids::ClassId;
use crate::value::GcRef;

/// Maximum nesting of in-progress object transformers before the VM
/// raises [`VmError::TransformerDepthExceeded`](crate::VmError): a typed
/// trap instead of a host stack overflow when a transformer set
/// force-transforms an unboundedly deep chain.
pub const MAX_TRANSFORMER_DEPTH: usize = 128;

/// Which part of a lazy epoch's post-pause work is up next. Ordered:
/// `Scan → Drain → Collapse → Done`; the controller dispatches each
/// `LazyMigrating` step on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LazyStage {
    /// No epoch is active.
    Inactive,
    /// The watermarked region has not been fully scanned for stale
    /// objects yet.
    Scan,
    /// The worklist still holds discovered-but-untransformed objects.
    Drain,
    /// Every stale object is transformed; forwarding words are being
    /// compacted away.
    Collapse,
    /// The epoch is ready for [`Vm::finish_lazy_migration`](crate::Vm).
    Done,
}

/// Progress report from one [`Vm::lazy_scan`](crate::Vm::lazy_scan)
/// batch.
#[derive(Debug, Clone, Copy)]
pub struct ScanOutcome {
    /// Heap cells the batch stepped over (live or forwarded).
    pub cells: usize,
    /// Stale objects discovered and queued by this batch.
    pub found: usize,
    /// Whether the scan has reached the watermark — the worklist is now
    /// complete.
    pub done: bool,
}

/// Progress report from one [`Vm::lazy_scavenge`](crate::Vm::lazy_scavenge)
/// batch.
#[derive(Debug, Clone, Copy)]
pub struct ScavengeOutcome {
    /// Objects transformed by this batch (worklist entries the guest had
    /// already migrated through the barrier are skipped, not counted).
    pub transformed: usize,
    /// Worklist entries still pending after the batch; `0` means the
    /// drain is complete (the epoch then moves to collapse).
    pub remaining: usize,
}

/// Progress report from one [`Vm::lazy_collapse`](crate::Vm::lazy_collapse)
/// batch.
#[derive(Debug, Clone, Copy)]
pub struct CollapseOutcome {
    /// Heap cells the batch swept.
    pub cells: usize,
    /// Reference slots rewritten through forwarding words.
    pub rewritten: usize,
    /// Whether the sweep has reached the epoch's allocation horizon — the
    /// epoch is ready for [`Vm::finish_lazy_migration`](crate::Vm).
    pub done: bool,
}

/// State of one lazy-migration epoch. Owned by [`Vm`](crate::Vm); all
/// fields are crate-internal — embedders observe the epoch through
/// [`Vm::lazy_epoch_active`](crate::Vm::lazy_epoch_active),
/// [`Vm::lazy_stage`](crate::Vm::lazy_stage), and the step outcomes.
#[derive(Debug, Default)]
pub struct LazyEpoch {
    /// Whether an epoch is in progress (the read barrier is armed).
    pub(crate) active: bool,
    /// Version-pending classes: old `ClassId` → updated `ClassId`. An
    /// object is *stale* iff its class is a key here.
    pub(crate) remap: HashMap<ClassId, ClassId>,
    /// Old-layout copies produced by first-touch duplication. They keep
    /// the stale class (so transformers can read them with old offsets)
    /// and must never themselves trip the barrier.
    pub(crate) old_copies: HashSet<u32>,
    /// Stale objects found so far (barrier-migrated ones are skipped at
    /// scavenge time via their forwarding words), ascending original
    /// address — the scavenger's queue and (from `cursor` on) extra GC
    /// roots, so untouched stale objects survive until transformed.
    pub(crate) worklist: Vec<GcRef>,
    /// First worklist entry the scavenger has not yet passed.
    pub(crate) cursor: usize,
    /// Object transformers completed this epoch (barrier + scavenger).
    pub(crate) transformed: usize,
    /// Next address the SATB scanner will look at.
    pub(crate) scan_addr: usize,
    /// The commit watermark: the active semispace's allocation cursor at
    /// arm time. Cells at or past it were allocated *inside* the epoch
    /// and can never be stale.
    pub(crate) scan_limit: usize,
    /// Whether the collapse stage has begun (roots rewritten, sweep
    /// bounds recorded).
    pub(crate) collapsing: bool,
    /// Next address the collapse sweep will look at.
    pub(crate) sweep_addr: usize,
    /// The collapse horizon: the allocation cursor when the sweep began.
    /// Cells past it were allocated after the O(roots) root rewrite and
    /// load-resolution took effect, so they hold no stale references.
    pub(crate) sweep_limit: usize,
}

impl LazyEpoch {
    /// The updated class an instance of `class` must migrate to, if
    /// `class` is version-pending in this epoch.
    pub(crate) fn stale_target(&self, class: ClassId) -> Option<ClassId> {
        if self.active {
            self.remap.get(&class).copied()
        } else {
            None
        }
    }

    /// Which part of the epoch's work is up next.
    pub(crate) fn stage(&self) -> LazyStage {
        if !self.active {
            LazyStage::Inactive
        } else if self.scan_addr < self.scan_limit {
            LazyStage::Scan
        } else if self.cursor < self.worklist.len() {
            LazyStage::Drain
        } else if !self.collapsing || self.sweep_addr < self.sweep_limit {
            LazyStage::Collapse
        } else {
            LazyStage::Done
        }
    }

    /// Whether the SATB scan has covered the whole watermarked region.
    pub(crate) fn scan_done(&self) -> bool {
        self.scan_addr >= self.scan_limit
    }

    /// Entries the scavenger has not yet passed.
    pub(crate) fn pending_entries(&self) -> &[GcRef] {
        &self.worklist[self.cursor..]
    }

    /// Drops the processed worklist prefix (called before a collection so
    /// only the live tail is rooted and rewritten).
    pub(crate) fn drop_processed(&mut self) {
        if self.cursor > 0 {
            self.worklist.drain(..self.cursor);
            self.cursor = 0;
        }
    }

    /// Clears the epoch back to the inactive state, returning the number
    /// of objects transformed while it ran.
    pub(crate) fn reset(&mut self) -> usize {
        let transformed = self.transformed;
        *self = LazyEpoch::default();
        transformed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_target_requires_active_epoch() {
        let mut epoch = LazyEpoch {
            remap: HashMap::from([(ClassId(1), ClassId(2))]),
            ..LazyEpoch::default()
        };
        assert_eq!(epoch.stale_target(ClassId(1)), None, "inactive epoch never matches");
        epoch.active = true;
        assert_eq!(epoch.stale_target(ClassId(1)), Some(ClassId(2)));
        assert_eq!(epoch.stale_target(ClassId(2)), None);
    }

    #[test]
    fn drop_processed_keeps_only_the_tail() {
        let mut epoch = LazyEpoch {
            worklist: vec![GcRef(10), GcRef(20), GcRef(30)],
            cursor: 2,
            ..LazyEpoch::default()
        };
        epoch.drop_processed();
        assert_eq!(epoch.worklist, vec![GcRef(30)]);
        assert_eq!(epoch.cursor, 0);
        assert_eq!(epoch.pending_entries(), &[GcRef(30)]);
    }

    #[test]
    fn reset_reports_and_clears_progress() {
        let mut epoch = LazyEpoch { active: true, transformed: 7, ..LazyEpoch::default() };
        assert_eq!(epoch.reset(), 7);
        assert!(!epoch.active);
        assert_eq!(epoch.transformed, 0);
    }

    #[test]
    fn stages_progress_scan_drain_collapse_done() {
        let mut epoch = LazyEpoch::default();
        assert_eq!(epoch.stage(), LazyStage::Inactive);

        epoch.active = true;
        epoch.scan_addr = 1;
        epoch.scan_limit = 100;
        assert_eq!(epoch.stage(), LazyStage::Scan);

        epoch.scan_addr = 100;
        epoch.worklist = vec![GcRef(10)];
        assert_eq!(epoch.stage(), LazyStage::Drain);

        epoch.cursor = 1;
        assert_eq!(epoch.stage(), LazyStage::Collapse, "collapse must begin");

        epoch.collapsing = true;
        epoch.sweep_addr = 1;
        epoch.sweep_limit = 100;
        assert_eq!(epoch.stage(), LazyStage::Collapse, "sweep in progress");

        epoch.sweep_addr = 100;
        assert_eq!(epoch.stage(), LazyStage::Done);
    }
}
