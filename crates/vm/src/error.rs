//! Runtime errors (traps) and VM-level failures.

use std::fmt;

use jvolve_classfile::ClassName;

/// A runtime trap raised by guest execution, or a VM-level failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VmError {
    /// Dereference of `null`.
    NullPointer {
        /// What was being accessed.
        context: String,
    },
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// Offending index.
        index: i64,
        /// Array length.
        len: u32,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// The heap cannot satisfy an allocation even after collection.
    OutOfMemory {
        /// Words requested.
        requested: usize,
    },
    /// Guest call stack exceeded the configured limit.
    StackOverflow,
    /// A class failed to load (link error, verification failure, …).
    LoadError {
        /// Offending class.
        class: ClassName,
        /// Description.
        message: String,
    },
    /// Name resolution failed at (simulated) JIT time.
    ResolutionError {
        /// Description, e.g. "unknown field User.age".
        message: String,
    },
    /// A transformer function recursed into an object already being
    /// transformed (ill-defined transformer set; paper §3.4 aborts the
    /// update on detection).
    TransformerCycle,
    /// Recursive force-transformation exceeded the nesting limit: the
    /// transformer set chases a chain deeper than the VM is willing to
    /// nest (a typed error instead of blowing the host stack).
    TransformerDepthExceeded {
        /// The nesting limit that was hit.
        limit: usize,
    },
    /// Anything else.
    Internal {
        /// Description.
        message: String,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::NullPointer { context } => write!(f, "null pointer dereference in {context}"),
            VmError::IndexOutOfBounds { index, len } => {
                write!(f, "array index {index} out of bounds for length {len}")
            }
            VmError::DivisionByZero => f.write_str("division by zero"),
            VmError::OutOfMemory { requested } => {
                write!(f, "out of memory allocating {requested} words")
            }
            VmError::StackOverflow => f.write_str("guest stack overflow"),
            VmError::LoadError { class, message } => {
                write!(f, "failed to load class {class}: {message}")
            }
            VmError::ResolutionError { message } => write!(f, "resolution error: {message}"),
            VmError::TransformerCycle => {
                f.write_str("transformer functions recursed into an in-progress object")
            }
            VmError::TransformerDepthExceeded { limit } => {
                write!(f, "recursive force-transformation exceeded {limit} nested objects")
            }
            VmError::Internal { message } => write!(f, "internal VM error: {message}"),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = VmError::IndexOutOfBounds { index: 5, len: 3 };
        assert_eq!(e.to_string(), "array index 5 out of bounds for length 3");
        assert!(VmError::TransformerCycle.to_string().contains("transformer"));
    }
}
