//! The runtime class registry: loaded classes, object layouts, dispatch
//! tables (TIBs), the static-field table (JTOC), and the method table.
//!
//! This is the reproduction of Jikes RVM's `RVMClass` metadata (paper
//! §3.3): each loaded class records its full instance layout (superclass
//! fields first), a type information block mapping virtual slots to method
//! implementations, and JTOC slots for statics. The update driver
//! manipulates exactly these structures: renaming old classes, installing
//! new ones, invalidating TIB entries and compiled code.

use std::collections::HashMap;
use std::sync::Arc;

use jvolve_classfile::class::MethodKind;
use jvolve_classfile::{verify, ClassFile, ClassName, ClassResolver, Type};

use crate::compiled::CompiledMethod;
use crate::error::VmError;
use crate::heap::{ClassLayouts, LayoutSnapshot};
use crate::ids::{ClassId, MethodId};
use crate::natives::{self, NativeFn};

/// One word of an object's instance layout.
#[derive(Clone, Debug)]
pub struct FieldSlot {
    /// Field name (unique along the superclass chain).
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Whether the slot holds a reference.
    pub is_ref: bool,
    /// Class that declared the field.
    pub declared_in: ClassId,
}

/// A loaded class.
#[derive(Clone, Debug)]
pub struct RuntimeClass {
    /// Runtime identifier (stable across renames).
    pub id: ClassId,
    /// Current name; changes when the update driver renames an old version
    /// (e.g. `User` → `v131_User`).
    pub name: ClassName,
    /// The definition as loaded (kept in sync with `name`).
    pub file: ClassFile,
    /// Superclass id, if any.
    pub super_id: Option<ClassId>,
    /// Full instance layout: superclass fields first, then own fields.
    pub layout: Vec<FieldSlot>,
    /// Reference map parallel to `layout` (consumed by the GC).
    pub ref_map: Vec<bool>,
    /// Type information block: virtual slot → method implementation.
    pub tib: Vec<MethodId>,
    /// Virtual slot of each dispatchable method name (inherited included).
    pub vslots: HashMap<String, u16>,
    /// JTOC slot and type of each static field declared by this class.
    pub statics: HashMap<String, (u32, Type)>,
}

/// A loaded method.
#[derive(Debug)]
pub struct MethodInfo {
    /// Runtime identifier.
    pub id: MethodId,
    /// Declaring class.
    pub class: ClassId,
    /// Method name.
    pub name: String,
    /// Definition (bytecode included). The update driver swaps this for
    /// method-body updates, then invalidates the compiled code.
    pub def: jvolve_classfile::MethodDef,
    /// Native implementation, for builtin classes.
    pub native: Option<NativeFn>,
    /// Compiled code, if any; `None` means "compile on next invocation".
    pub compiled: Option<Arc<CompiledMethod>>,
    /// Invocation counter driving adaptive recompilation.
    pub invocations: u32,
    /// Times this method's compiled code has been invalidated.
    pub invalidations: u32,
}

/// The registry.
#[derive(Debug, Default)]
pub struct Registry {
    classes: Vec<RuntimeClass>,
    by_name: HashMap<ClassName, ClassId>,
    methods: Vec<MethodInfo>,
    method_by_key: HashMap<(ClassId, String), MethodId>,
    /// The "Java table of contents": one word per static field.
    jtoc: Vec<u64>,
    jtoc_ref: Vec<bool>,
    /// Cached GC layout snapshot; rebuilt lazily after class load/rename.
    snapshot: Option<Arc<LayoutSnapshot>>,
    /// Monotonic dispatch epoch: advanced by *every* mutation that can
    /// change what a call site should run — class load/rename, method
    /// strip/swap, compiled-code invalidation or (re)install, rollback
    /// restores, batch truncation. Inline caches tag entries with their
    /// fill epoch; a mismatch forces the slow path, so one counter bump
    /// invalidates every cache in the VM at once.
    code_epoch: u64,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    // ---- lookups ----------------------------------------------------------

    /// Class id for a (current) name.
    pub fn class_id(&self, name: &ClassName) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// The class with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn class(&self, id: ClassId) -> &RuntimeClass {
        &self.classes[id.index()]
    }

    /// The method with the given id.
    pub fn method(&self, id: MethodId) -> &MethodInfo {
        &self.methods[id.index()]
    }

    /// Mutable method access (driver/interpreter internals).
    pub fn method_mut(&mut self, id: MethodId) -> &mut MethodInfo {
        &mut self.methods[id.index()]
    }

    /// All loaded classes.
    pub fn classes(&self) -> impl Iterator<Item = &RuntimeClass> {
        self.classes.iter()
    }

    /// Number of classes loaded (class ids are `0..num_classes`).
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The cached GC layout snapshot, building it if a class was loaded or
    /// renamed since the last collection. Collections share the `Arc`, so
    /// steady-state GC pays zero snapshot-construction cost.
    pub fn layout_snapshot(&mut self) -> Arc<LayoutSnapshot> {
        if self.snapshot.is_none() {
            let mut snap = LayoutSnapshot::new();
            for class in &self.classes {
                snap.set(class.id, &class.ref_map);
            }
            self.snapshot = Some(Arc::new(snap));
        }
        Arc::clone(self.snapshot.as_ref().expect("just built"))
    }

    /// Number of methods loaded.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// The current dispatch epoch (see the field docs): inline-cache
    /// entries filled under an older epoch must re-resolve.
    #[inline]
    pub fn code_epoch(&self) -> u64 {
        self.code_epoch
    }

    /// Invalidates every inline cache in the VM in O(1) by advancing the
    /// dispatch epoch. Every registry mutation that can change dispatch
    /// already calls this; it is public so the update controller can also
    /// force invalidation after mutations that bypass the registry
    /// (frame-level OSR restores during rollback).
    pub fn bump_code_epoch(&mut self) {
        self.code_epoch += 1;
    }

    /// Looks up a method by declaring-class chain: starts at `class` and
    /// walks superclasses.
    pub fn find_method(&self, class: ClassId, name: &str) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(id) = cur {
            if let Some(&mid) = self.method_by_key.get(&(id, name.to_string())) {
                return Some(mid);
            }
            cur = self.classes[id.index()].super_id;
        }
        None
    }

    /// All methods declared by `class` (statics and constructors included).
    pub fn methods_of(&self, class: ClassId) -> Vec<MethodId> {
        self.methods.iter().filter(|m| m.class == class).map(|m| m.id).collect()
    }

    /// Instance-field offset and refness, resolving `field` on `class`'s
    /// layout (names are unique along the chain).
    pub fn field_offset(&self, class: ClassId, field: &str) -> Option<(u16, bool)> {
        let c = &self.classes[class.index()];
        c.layout
            .iter()
            .position(|s| s.name == field)
            .map(|i| (i as u16, c.ref_map[i]))
    }

    /// JTOC slot and refness for a static field, walking the super chain.
    pub fn static_slot(&self, class: ClassId, field: &str) -> Option<(u32, bool)> {
        let mut cur = Some(class);
        while let Some(id) = cur {
            let c = &self.classes[id.index()];
            if let Some((slot, ty)) = c.statics.get(field) {
                return Some((*slot, ty.is_reference()));
            }
            cur = c.super_id;
        }
        None
    }

    /// Virtual slot for `method` as seen from `class`.
    pub fn vslot(&self, class: ClassId, method: &str) -> Option<u16> {
        self.classes[class.index()].vslots.get(method).copied()
    }

    /// Reads a JTOC word.
    pub fn jtoc_get(&self, slot: u32) -> u64 {
        self.jtoc[slot as usize]
    }

    /// Writes a JTOC word.
    pub fn jtoc_set(&mut self, slot: u32, word: u64) {
        self.jtoc[slot as usize] = word;
    }

    /// JTOC slots that hold non-null references (GC roots).
    pub fn jtoc_ref_slots(&self) -> impl Iterator<Item = u32> + '_ {
        self.jtoc_ref
            .iter()
            .enumerate()
            .filter_map(move |(i, &is_ref)| {
                (is_ref && self.jtoc[i] != 0).then_some(i as u32)
            })
    }

    /// Whether `sub` is `sup` or one of its subclasses, by id.
    pub fn is_subclass_of(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(id) = cur {
            if id == sup {
                return true;
            }
            cur = self.classes[id.index()].super_id;
        }
        false
    }

    // ---- loading -----------------------------------------------------------

    /// Loads a batch of classes: verifies each against the registry plus
    /// the batch, then links in superclass order.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::LoadError`] on verification failures, duplicate
    /// names, missing superclasses, or unresolvable native methods.
    pub fn load_batch(&mut self, files: &[ClassFile]) -> Result<Vec<ClassId>, VmError> {
        // Duplicate/conflict detection.
        for f in files {
            if self.by_name.contains_key(&f.name)
                || files.iter().filter(|g| g.name == f.name).count() > 1
            {
                return Err(VmError::LoadError {
                    class: f.name.clone(),
                    message: "class already loaded".to_string(),
                });
            }
        }

        // Verify against the combined view.
        let view = BatchView { registry: self, batch: files };
        for f in files {
            verify::verify_class(&view, f).map_err(|e| VmError::LoadError {
                class: f.name.clone(),
                message: e.to_string(),
            })?;
        }

        // Link in superclass order (supers within the batch first), but
        // return the ids in the caller's input order.
        let mut pending: Vec<&ClassFile> = files.iter().collect();
        let mut progress = true;
        while !pending.is_empty() {
            if !progress {
                return Err(VmError::LoadError {
                    class: pending[0].name.clone(),
                    message: "unresolvable superclass order".to_string(),
                });
            }
            progress = false;
            pending.retain(|f| {
                let ready = match &f.superclass {
                    None => true,
                    Some(sup) => self.by_name.contains_key(sup),
                };
                if ready {
                    self.link(f).expect("verified class links");
                    progress = true;
                    false
                } else {
                    true
                }
            });
        }
        Ok(files
            .iter()
            .map(|f| self.by_name[&f.name])
            .collect())
    }

    fn link(&mut self, file: &ClassFile) -> Result<ClassId, VmError> {
        let id = ClassId(self.classes.len() as u32);
        let super_id = match &file.superclass {
            None => None,
            Some(sup) => Some(self.by_name.get(sup).copied().ok_or_else(|| {
                VmError::LoadError {
                    class: file.name.clone(),
                    message: format!("superclass {sup} not loaded"),
                }
            })?),
        };

        // Layout: superclass slots then own fields.
        let (mut layout, mut ref_map, mut tib, mut vslots) = match super_id {
            Some(sid) => {
                let s = &self.classes[sid.index()];
                (s.layout.clone(), s.ref_map.clone(), s.tib.clone(), s.vslots.clone())
            }
            None => (Vec::new(), Vec::new(), Vec::new(), HashMap::new()),
        };
        for f in &file.fields {
            layout.push(FieldSlot {
                name: f.name.clone(),
                ty: f.ty.clone(),
                is_ref: f.ty.is_reference(),
                declared_in: id,
            });
            ref_map.push(f.ty.is_reference());
        }

        // Statics: fresh JTOC slots, zero/null-initialized.
        let mut statics = HashMap::new();
        for f in &file.static_fields {
            let slot = self.jtoc.len() as u32;
            self.jtoc.push(0);
            self.jtoc_ref.push(f.ty.is_reference());
            statics.insert(f.name.clone(), (slot, f.ty.clone()));
        }

        // Methods and TIB.
        for m in &file.methods {
            let mid = MethodId(self.methods.len() as u32);
            let native = if file.flags.native {
                let nf = natives::resolve(file.name.as_str(), &m.name).ok_or_else(|| {
                    VmError::LoadError {
                        class: file.name.clone(),
                        message: format!("no native implementation for {}", m.name),
                    }
                })?;
                Some(nf)
            } else {
                None
            };
            self.methods.push(MethodInfo {
                id: mid,
                class: id,
                name: m.name.clone(),
                def: m.clone(),
                native,
                compiled: None,
                invocations: 0,
                invalidations: 0,
            });
            self.method_by_key.insert((id, m.name.clone()), mid);

            if !m.is_static && m.kind == MethodKind::Regular {
                match vslots.get(&m.name) {
                    Some(&slot) => tib[slot as usize] = mid,
                    None => {
                        let slot = tib.len() as u16;
                        tib.push(mid);
                        vslots.insert(m.name.clone(), slot);
                    }
                }
            }
        }

        self.by_name.insert(file.name.clone(), id);
        self.classes.push(RuntimeClass {
            id,
            name: file.name.clone(),
            file: file.clone(),
            super_id,
            layout,
            ref_map,
            tib,
            vslots,
            statics,
        });
        self.snapshot = None;
        self.bump_code_epoch();
        Ok(id)
    }

    // ---- update-driver operations (paper §3.3) -----------------------------

    /// Renames a loaded class (old versions get a version prefix so the
    /// transformer class can name them, e.g. `User` → `v131_User`).
    ///
    /// # Errors
    ///
    /// Fails if the new name is taken.
    pub fn rename_class(&mut self, id: ClassId, new_name: ClassName) -> Result<(), VmError> {
        if self.by_name.contains_key(&new_name) {
            return Err(VmError::LoadError {
                class: new_name,
                message: "rename target name already in use".to_string(),
            });
        }
        let old_name = self.classes[id.index()].name.clone();
        if self.by_name.get(&old_name) == Some(&id) {
            self.by_name.remove(&old_name);
        }
        self.by_name.insert(new_name.clone(), id);
        let class = &mut self.classes[id.index()];
        class.name = new_name.clone();
        class.file.name = new_name;
        self.snapshot = None;
        self.bump_code_epoch();
        Ok(())
    }

    /// Strips all methods from a renamed old class: "the v131_User class
    /// contains only field definitions; all methods have been removed since
    /// the updated program may not call them" (paper §2.3). TIB entries are
    /// invalidated so stale dispatch cannot reach old code.
    pub fn strip_methods(&mut self, id: ClassId) {
        let mids: Vec<MethodId> =
            self.methods.iter().filter(|m| m.class == id).map(|m| m.id).collect();
        let class = &mut self.classes[id.index()];
        class.file.methods.clear();
        class.tib.clear();
        class.vslots.clear();
        for mid in mids {
            let name = self.methods[mid.index()].name.clone();
            self.method_by_key.remove(&(id, name));
            self.invalidate(mid);
        }
        // The TIB itself changed even if the class had no compiled code.
        self.bump_code_epoch();
    }

    /// Replaces a method's bytecode (a *method body update*): the new body
    /// is installed and the compiled code invalidated; the JIT recompiles
    /// on next invocation, exactly the paper's protocol.
    ///
    /// # Errors
    ///
    /// Fails if the method does not exist.
    pub fn replace_method_body(
        &mut self,
        class: ClassId,
        method: &str,
        def: jvolve_classfile::MethodDef,
    ) -> Result<MethodId, VmError> {
        let mid = self
            .method_by_key
            .get(&(class, method.to_string()))
            .copied()
            .ok_or_else(|| VmError::ResolutionError {
                message: format!("no method {method} on {}", self.classes[class.index()].name),
            })?;
        // Keep the class-file definition in sync for later diffs.
        if let Some(m) = self.classes[class.index()]
            .file
            .methods
            .iter_mut()
            .find(|m| m.name == method)
        {
            *m = def.clone();
        }
        let info = &mut self.methods[mid.index()];
        info.def = def;
        self.invalidate(mid);
        Ok(mid)
    }

    /// Invalidates a method's compiled code; it recompiles on next call.
    pub fn invalidate(&mut self, mid: MethodId) {
        let info = &mut self.methods[mid.index()];
        if info.compiled.take().is_some() {
            info.invalidations += 1;
        }
        info.invocations = 0;
        self.bump_code_epoch();
    }

    /// Every compiled method that inlined one of `changed` (paper §3.2:
    /// inlined callers of restricted methods are restricted). Read-only so
    /// the update controller can capture each victim's state for its
    /// rollback ledger before invalidating.
    pub fn inliners_of(&self, changed: &[MethodId]) -> Vec<MethodId> {
        self.methods
            .iter()
            .filter(|m| {
                m.compiled
                    .as_ref()
                    .is_some_and(|c| c.inlined.iter().any(|i| changed.contains(i)))
            })
            .map(|m| m.id)
            .collect()
    }

    /// Invalidates every compiled method that inlined one of `changed`.
    /// Returns the invalidated methods.
    pub fn invalidate_inliners(&mut self, changed: &[MethodId]) -> Vec<MethodId> {
        let victims = self.inliners_of(changed);
        for &v in &victims {
            self.invalidate(v);
        }
        victims
    }

    /// Installs compiled code for a method. Advances the dispatch epoch:
    /// caches holding the previous code object (e.g. the base-tier body a
    /// hot method just outgrew, or pre-OSR code) must re-resolve.
    pub fn set_compiled(&mut self, mid: MethodId, code: Arc<CompiledMethod>) {
        self.methods[mid.index()].compiled = Some(code);
        self.bump_code_epoch();
    }

    // ---- rollback primitives (used by the update controller) ----------------
    //
    // Classes, methods, and JTOC slots are append-only tables, so a failed
    // update's half-loaded batch can be dropped by truncating back to a
    // mark taken before the first load. Renames and method strips/swaps are
    // undone from snapshots captured before the mutation.

    /// A high-water mark of the registry's append-only tables.
    #[must_use]
    pub fn mark(&self) -> RegistryMark {
        RegistryMark {
            classes: self.classes.len(),
            methods: self.methods.len(),
            jtoc: self.jtoc.len(),
        }
    }

    /// Drops every class, method, and JTOC slot added after `mark`,
    /// removing their name/lookup entries. Callers must ensure nothing
    /// still references the dropped ids (the update controller rolls back
    /// frames and renames first).
    pub fn truncate_to(&mut self, mark: &RegistryMark) {
        for class in self.classes.drain(mark.classes..) {
            if self.by_name.get(&class.name) == Some(&class.id) {
                self.by_name.remove(&class.name);
            }
        }
        for method in self.methods.drain(mark.methods..) {
            self.method_by_key.remove(&(method.class, method.name));
        }
        self.jtoc.truncate(mark.jtoc);
        self.jtoc_ref.truncate(mark.jtoc);
        self.snapshot = None;
        self.bump_code_epoch();
    }

    /// Captures everything [`Registry::strip_methods`] destroys for class
    /// `id`, so an aborted update can restore it.
    #[must_use]
    pub fn snapshot_class_methods(&self, id: ClassId) -> ClassMethodsSnapshot {
        let class = &self.classes[id.index()];
        ClassMethodsSnapshot {
            file_methods: class.file.methods.clone(),
            tib: class.tib.clone(),
            vslots: class.vslots.clone(),
            methods: self
                .methods
                .iter()
                .filter(|m| m.class == id)
                .map(|m| (m.id, m.compiled.clone(), m.invocations, m.invalidations))
                .collect(),
        }
    }

    /// Restores a class's methods from a snapshot taken before
    /// [`Registry::strip_methods`]: lookup entries, TIB, virtual slots,
    /// class-file method list, and each method's compiled code and
    /// counters.
    pub fn restore_class_methods(&mut self, id: ClassId, snap: ClassMethodsSnapshot) {
        let class = &mut self.classes[id.index()];
        class.file.methods = snap.file_methods;
        class.tib = snap.tib;
        class.vslots = snap.vslots;
        for (mid, compiled, invocations, invalidations) in snap.methods {
            let name = self.methods[mid.index()].name.clone();
            self.method_by_key.insert((id, name), mid);
            let info = &mut self.methods[mid.index()];
            info.compiled = compiled;
            info.invocations = invocations;
            info.invalidations = invalidations;
        }
        // Rollback republished old code objects: caches filled with the
        // new version's code must re-resolve.
        self.bump_code_epoch();
    }

    /// Restores one method's definition, compiled code, and counters —
    /// the inverse of [`Registry::replace_method_body`] /
    /// [`Registry::invalidate`] for rollback.
    pub fn restore_method_state(
        &mut self,
        mid: MethodId,
        def: jvolve_classfile::MethodDef,
        compiled: Option<Arc<CompiledMethod>>,
        invocations: u32,
        invalidations: u32,
    ) {
        let class = self.methods[mid.index()].class;
        if let Some(m) = self.classes[class.index()]
            .file
            .methods
            .iter_mut()
            .find(|m| m.name == def.name)
        {
            *m = def.clone();
        }
        let info = &mut self.methods[mid.index()];
        info.def = def;
        info.compiled = compiled;
        info.invocations = invocations;
        info.invalidations = invalidations;
        self.bump_code_epoch();
    }

    /// Number of JTOC slots allocated (for registry state comparisons).
    pub fn jtoc_len(&self) -> usize {
        self.jtoc.len()
    }

    /// Raw refness of a JTOC slot (for registry state comparisons).
    pub fn jtoc_is_ref(&self, slot: u32) -> bool {
        self.jtoc_ref[slot as usize]
    }

    /// A canonical dump of every *definition* the registry holds: class
    /// names, superclass links, layouts, ref maps, virtual-slot tables,
    /// static-slot declarations, and per-method bytecode definitions.
    ///
    /// Deliberately excludes everything that mutates under ordinary
    /// execution — invocation counters, compiled code, the code epoch,
    /// JTOC *values* — so two VMs running the same program version
    /// fingerprint identically no matter how much traffic each has
    /// served. The fleet coordinator compares this across shards after a
    /// rolled-back update to prove every shard converged to the same code
    /// version bit-for-bit.
    pub fn version_fingerprint(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut classes: Vec<&RuntimeClass> = self.classes.iter().collect();
        classes.sort_by(|a, b| a.name.as_str().cmp(b.name.as_str()));
        for c in classes {
            let super_name =
                c.super_id.map(|s| self.classes[s.index()].name.as_str().to_string());
            let _ = writeln!(out, "class {} super={super_name:?}", c.name.as_str());
            for (slot, r) in c.layout.iter().zip(&c.ref_map) {
                let _ = writeln!(out, "  field {} {:?} ref={r}", slot.name, slot.ty);
            }
            let mut vslots: Vec<_> = c.vslots.iter().collect();
            vslots.sort();
            for (name, slot) in vslots {
                // The TIB entry is resolved back to its declaring class +
                // method name (method *ids* are allocation-order
                // dependent and must not leak into the fingerprint).
                let target = &self.methods[c.tib[*slot as usize].index()];
                let decl = self.classes[target.class.index()].name.as_str();
                let _ = writeln!(out, "  vslot {name} -> {decl}.{}", target.name);
            }
            let mut statics: Vec<_> = c.statics.iter().collect();
            statics.sort_by_key(|(name, _)| name.as_str());
            for (name, (_, ty)) in statics {
                let _ = writeln!(out, "  static {name} {ty:?}");
            }
            let mut mids = self.methods_of(c.id);
            mids.sort_by_key(|m| self.methods[m.index()].name.clone());
            for mid in mids {
                let m = &self.methods[mid.index()];
                let _ = writeln!(
                    out,
                    "  method {} native={} def={:?}",
                    m.name,
                    m.native.is_some(),
                    m.def
                );
            }
        }
        out
    }
}

/// High-water mark of the registry's append-only tables (see
/// [`Registry::mark`]).
#[derive(Clone, Copy, Debug)]
pub struct RegistryMark {
    classes: usize,
    methods: usize,
    jtoc: usize,
}

/// Opaque snapshot of a class's method tables (see
/// [`Registry::snapshot_class_methods`]).
#[derive(Debug)]
pub struct ClassMethodsSnapshot {
    file_methods: Vec<jvolve_classfile::MethodDef>,
    tib: Vec<MethodId>,
    vslots: HashMap<String, u16>,
    methods: Vec<(MethodId, Option<Arc<CompiledMethod>>, u32, u32)>,
}

impl ClassLayouts for Registry {
    fn object_size(&self, class: ClassId) -> usize {
        self.classes[class.index()].layout.len()
    }
    fn ref_map(&self, class: ClassId) -> &[bool] {
        &self.classes[class.index()].ref_map
    }
}

impl ClassResolver for Registry {
    fn resolve(&self, name: &ClassName) -> Option<&ClassFile> {
        self.by_name.get(name).map(|id| &self.classes[id.index()].file)
    }
}

/// Resolver over the registry plus a batch being loaded.
struct BatchView<'a> {
    registry: &'a Registry,
    batch: &'a [ClassFile],
}

impl ClassResolver for BatchView<'_> {
    fn resolve(&self, name: &ClassName) -> Option<&ClassFile> {
        self.batch
            .iter()
            .find(|f| &f.name == name)
            .or_else(|| self.registry.resolve(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvolve_classfile::bytecode::Instr;
    use jvolve_lang::builtins::builtin_classes;

    fn base_registry() -> Registry {
        let mut r = Registry::new();
        r.load_batch(&builtin_classes()).unwrap();
        r
    }

    #[test]
    fn loads_builtins_with_natives() {
        let r = base_registry();
        let sys = r.class_id(&ClassName::from("Sys")).unwrap();
        let mid = r.find_method(sys, "print").unwrap();
        assert!(r.method(mid).native.is_some());
    }

    #[test]
    fn layout_concatenates_super_fields() {
        let mut r = base_registry();
        let classes = jvolve_lang::compile(
            "class A { field x: int; field s: String; }
             class B extends A { field y: int; }",
        )
        .unwrap();
        r.load_batch(&classes).unwrap();
        let b = r.class_id(&ClassName::from("B")).unwrap();
        assert_eq!(r.object_size(b), 3);
        assert_eq!(r.field_offset(b, "x"), Some((0, false)));
        assert_eq!(r.field_offset(b, "s"), Some((1, true)));
        assert_eq!(r.field_offset(b, "y"), Some((2, false)));
        assert_eq!(r.ref_map(b), &[false, true, false]);
    }

    #[test]
    fn layout_snapshot_is_cached_and_invalidated_by_load() {
        let mut r = base_registry();
        let first = r.layout_snapshot();
        let again = r.layout_snapshot();
        assert!(Arc::ptr_eq(&first, &again), "steady state reuses the snapshot");

        let classes =
            jvolve_lang::compile("class P { field n: int; field s: String; }").unwrap();
        r.load_batch(&classes).unwrap();
        let rebuilt = r.layout_snapshot();
        assert!(!Arc::ptr_eq(&first, &rebuilt), "class load invalidates");
        let p = r.class_id(&ClassName::from("P")).unwrap();
        assert_eq!(rebuilt.size_words(p), 2);
        assert_eq!(rebuilt.num_classes(), r.num_classes());
    }

    #[test]
    fn tib_overrides_share_slots() {
        let mut r = base_registry();
        let classes = jvolve_lang::compile(
            "class A { method id(): int { return 1; } method other(): int { return 0; } }
             class B extends A { method id(): int { return 2; } }",
        )
        .unwrap();
        r.load_batch(&classes).unwrap();
        let a = r.class_id(&ClassName::from("A")).unwrap();
        let b = r.class_id(&ClassName::from("B")).unwrap();
        let slot_a = r.vslot(a, "id").unwrap();
        let slot_b = r.vslot(b, "id").unwrap();
        assert_eq!(slot_a, slot_b, "override shares the TIB slot");
        assert_ne!(r.class(a).tib[slot_a as usize], r.class(b).tib[slot_b as usize]);
        assert_eq!(r.vslot(b, "other"), r.vslot(a, "other"));
    }

    #[test]
    fn statics_get_jtoc_slots() {
        let mut r = base_registry();
        let classes =
            jvolve_lang::compile("class C { static field n: int; static field s: String; }")
                .unwrap();
        r.load_batch(&classes).unwrap();
        let c = r.class_id(&ClassName::from("C")).unwrap();
        let (n_slot, n_ref) = r.static_slot(c, "n").unwrap();
        let (s_slot, s_ref) = r.static_slot(c, "s").unwrap();
        assert_ne!(n_slot, s_slot);
        assert!(!n_ref);
        assert!(s_ref);
        r.jtoc_set(n_slot, 17);
        assert_eq!(r.jtoc_get(n_slot), 17);
    }

    #[test]
    fn rename_frees_old_name() {
        let mut r = base_registry();
        let classes = jvolve_lang::compile("class User { field name: String; }").unwrap();
        r.load_batch(&classes).unwrap();
        let id = r.class_id(&ClassName::from("User")).unwrap();
        r.rename_class(id, ClassName::from("v131_User")).unwrap();
        assert!(r.class_id(&ClassName::from("User")).is_none());
        assert_eq!(r.class_id(&ClassName::from("v131_User")), Some(id));
        // New version of User can now be loaded.
        let new = jvolve_lang::compile("class User { field name: String; field age: int; }")
            .unwrap();
        let ids = r.load_batch(&new).unwrap();
        assert_ne!(ids[0], id);
        assert_eq!(r.class_id(&ClassName::from("User")), Some(ids[0]));
    }

    #[test]
    fn strip_methods_removes_lookup_and_tib() {
        let mut r = base_registry();
        let classes =
            jvolve_lang::compile("class User { method getName(): int { return 1; } }").unwrap();
        r.load_batch(&classes).unwrap();
        let id = r.class_id(&ClassName::from("User")).unwrap();
        assert!(r.find_method(id, "getName").is_some());
        r.strip_methods(id);
        assert!(r.find_method(id, "getName").is_none());
        assert!(r.class(id).tib.is_empty());
    }

    #[test]
    fn replace_method_body_invalidates() {
        let mut r = base_registry();
        let classes =
            jvolve_lang::compile("class T { static method f(): int { return 1; } }").unwrap();
        r.load_batch(&classes).unwrap();
        let t = r.class_id(&ClassName::from("T")).unwrap();
        let mid = r.find_method(t, "f").unwrap();
        // Fake compiled code so invalidation is observable.
        r.set_compiled(
            mid,
            Arc::new(CompiledMethod {
                method: mid,
                level: crate::compiled::CompileLevel::Base,
                code: vec![RInstrStub()],
                max_locals: 0,
                inlined: vec![],
                referenced_classes: vec![],
                invocations: Default::default(),
                loop_trips: Default::default(),
                call_sites: 0,
                fused: None,
                leaf: false,
            }),
        );
        let new_def = jvolve_lang::compile("class T { static method f(): int { return 2; } }")
            .unwrap()[0]
            .find_method("f")
            .unwrap()
            .clone();
        r.replace_method_body(t, "f", new_def).unwrap();
        assert!(r.method(mid).compiled.is_none());
        assert_eq!(r.method(mid).invalidations, 1);
        // The class-file view reflects the new body.
        let body = &r.class(t).file.find_method("f").unwrap().code;
        assert!(body.as_ref().unwrap().instrs.contains(&Instr::ConstInt(2)));
    }

    #[allow(non_snake_case)]
    fn RInstrStub() -> crate::compiled::RInstr {
        crate::compiled::RInstr::Return
    }

    #[test]
    fn duplicate_load_is_rejected() {
        let mut r = base_registry();
        let classes = jvolve_lang::compile("class A { }").unwrap();
        r.load_batch(&classes).unwrap();
        let err = r.load_batch(&classes).unwrap_err();
        assert!(matches!(err, VmError::LoadError { .. }), "{err}");
    }

    #[test]
    fn batch_with_forward_superclass_links() {
        let mut r = base_registry();
        // B extends A but appears first in the batch.
        let mut classes = jvolve_lang::compile("class A { } class B extends A { }").unwrap();
        classes.reverse();
        let ids = r.load_batch(&classes).unwrap();
        assert_eq!(ids.len(), 2);
        let b = r.class_id(&ClassName::from("B")).unwrap();
        let a = r.class_id(&ClassName::from("A")).unwrap();
        assert!(r.is_subclass_of(b, a));
    }

    #[test]
    fn truncate_to_drops_a_loaded_batch() {
        let mut r = base_registry();
        let mark = r.mark();
        let n_classes = r.num_classes();
        let n_methods = r.method_count();
        let n_jtoc = r.jtoc_len();
        let classes = jvolve_lang::compile(
            "class Late { static field n: int; method f(): int { return 1; } }",
        )
        .unwrap();
        r.load_batch(&classes).unwrap();
        assert!(r.class_id(&ClassName::from("Late")).is_some());
        r.truncate_to(&mark);
        assert_eq!(r.num_classes(), n_classes);
        assert_eq!(r.method_count(), n_methods);
        assert_eq!(r.jtoc_len(), n_jtoc);
        assert!(r.class_id(&ClassName::from("Late")).is_none());
        // The name is free again.
        r.load_batch(&classes).unwrap();
        assert!(r.class_id(&ClassName::from("Late")).is_some());
    }

    #[test]
    fn strip_and_restore_round_trips() {
        let mut r = base_registry();
        let classes = jvolve_lang::compile(
            "class User { method getName(): int { return 1; } method other(): int { return 2; } }",
        )
        .unwrap();
        r.load_batch(&classes).unwrap();
        let id = r.class_id(&ClassName::from("User")).unwrap();
        let mid = r.find_method(id, "getName").unwrap();
        let tib_before = r.class(id).tib.clone();
        let file_methods_before = r.class(id).file.methods.len();

        let snap = r.snapshot_class_methods(id);
        r.strip_methods(id);
        assert!(r.find_method(id, "getName").is_none());
        r.restore_class_methods(id, snap);

        assert_eq!(r.find_method(id, "getName"), Some(mid));
        assert_eq!(r.class(id).tib, tib_before);
        assert_eq!(r.class(id).file.methods.len(), file_methods_before);
        assert_eq!(r.method(mid).invalidations, 0, "counters restored");
    }

    #[test]
    fn invalidate_inliners_cascades() {
        let mut r = base_registry();
        let classes = jvolve_lang::compile(
            "class T { static method f(): int { return 1; }
                       static method g(): int { return T.f(); } }",
        )
        .unwrap();
        r.load_batch(&classes).unwrap();
        let t = r.class_id(&ClassName::from("T")).unwrap();
        let f = r.find_method(t, "f").unwrap();
        let g = r.find_method(t, "g").unwrap();
        r.set_compiled(
            g,
            Arc::new(CompiledMethod {
                method: g,
                level: crate::compiled::CompileLevel::Opt,
                code: vec![crate::compiled::RInstr::Return],
                max_locals: 0,
                inlined: vec![f],
                referenced_classes: vec![],
                invocations: Default::default(),
                loop_trips: Default::default(),
                call_sites: 0,
                fused: None,
                leaf: false,
            }),
        );
        let victims = r.invalidate_inliners(&[f]);
        assert_eq!(victims, vec![g]);
        assert!(r.method(g).compiled.is_none());
    }

    #[test]
    fn every_dispatch_mutation_bumps_the_code_epoch() {
        let mut r = base_registry();
        let mut last = r.code_epoch();
        let expect_bump = |r: &Registry, what: &str, last: &mut u64| {
            assert!(r.code_epoch() > *last, "{what} must advance the epoch");
            *last = r.code_epoch();
        };

        let mark = r.mark();
        let classes = jvolve_lang::compile(
            "class E { method m(): int { return 1; } static method s(): int { return 2; } }",
        )
        .unwrap();
        r.load_batch(&classes).unwrap();
        expect_bump(&r, "class load", &mut last);

        let e = r.class_id(&ClassName::from("E")).unwrap();
        let m = r.find_method(e, "m").unwrap();
        r.set_compiled(
            m,
            Arc::new(CompiledMethod {
                method: m,
                level: crate::compiled::CompileLevel::Base,
                code: vec![RInstrStub()],
                max_locals: 0,
                inlined: vec![],
                referenced_classes: vec![],
                invocations: Default::default(),
                loop_trips: Default::default(),
                call_sites: 0,
                fused: None,
                leaf: false,
            }),
        );
        expect_bump(&r, "set_compiled", &mut last);

        let snap = r.snapshot_class_methods(e);
        r.invalidate(m);
        expect_bump(&r, "invalidate", &mut last);

        let new_def = jvolve_lang::compile("class E { method m(): int { return 9; } }")
            .unwrap()[0]
            .find_method("m")
            .unwrap()
            .clone();
        let def_backup = r.method(m).def.clone();
        r.replace_method_body(e, "m", new_def).unwrap();
        expect_bump(&r, "replace_method_body", &mut last);
        r.restore_method_state(m, def_backup, None, 0, 0);
        expect_bump(&r, "restore_method_state", &mut last);

        r.rename_class(e, ClassName::from("v1_E")).unwrap();
        expect_bump(&r, "rename_class", &mut last);

        r.strip_methods(e);
        expect_bump(&r, "strip_methods", &mut last);
        r.restore_class_methods(e, snap);
        expect_bump(&r, "restore_class_methods", &mut last);

        r.truncate_to(&mark);
        expect_bump(&r, "truncate_to", &mut last);
    }
}
