//! The semi-space copying heap and its DSU-aware collector.
//!
//! This reproduces the substrate of paper §3.4: a Cheney-style semi-space
//! copying collector extended so that objects whose class signature changed
//! are *duplicated* during the copy — an old-layout copy plus a zeroed
//! new-layout object — with the pair recorded in an **update log** for the
//! transformer pass that runs after collection. Old-copy reference fields
//! are forwarded like any other object's, so transformers dereferencing
//! `from` fields observe *transformed* referents, exactly the paper's
//! programming model.
//!
//! # Memory layout
//!
//! The heap is a flat `Vec<u64>`; word 0 is reserved so address 0 can mean
//! `null`. Two equal semispaces follow. Every heap cell starts with a
//! header word:
//!
//! ```text
//! bit 0      forwarded flag; if set, bits 1.. hold the forwarding address
//! bits 1-2   kind: 0 = object, 1 = reference array, 2 = primitive array,
//!            3 = string (packed UTF-8 bytes)
//! bits 32-63 class id (objects) or element/byte length (arrays/strings)
//! ```
//!
//! Objects are `1 + size_words(class)` words; arrays `1 + len`; strings
//! `1 + ceil(bytes/8)`.

use crate::error::VmError;
use crate::ids::ClassId;
use crate::value::GcRef;

/// What kind of heap cell a header describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HeapKind {
    /// Plain object with class-determined layout.
    Object,
    /// Array of references.
    RefArray,
    /// Array of primitives (ints/bools).
    PrimArray,
    /// Immutable string: packed UTF-8 payload.
    Str,
}

/// Per-class layout information the collector needs.
///
/// The class registry implements this; keeping it a trait lets heap unit
/// tests run without a registry.
pub trait ClassLayouts {
    /// Number of field words of instances of `class` (header excluded).
    fn object_size(&self, class: ClassId) -> usize;
    /// Which field words hold references.
    fn ref_map(&self, class: ClassId) -> &[bool];
}

/// The DSU remapping policy consulted during a collection (paper §3.4).
///
/// Returning `Some(new_class)` for a class makes the collector duplicate
/// each instance (old copy + new-layout object) and log the pair.
pub trait GcRemap {
    /// The updated class an instance of `class` must be converted to.
    fn remap(&self, class: ClassId) -> Option<ClassId>;
}

/// The identity policy: an ordinary, non-updating collection.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRemap;

impl GcRemap for NoRemap {
    fn remap(&self, _class: ClassId) -> Option<ClassId> {
        None
    }
}

/// Result of a collection.
#[derive(Debug, Clone, Default)]
pub struct GcOutcome {
    /// Objects (cells) copied.
    pub copied_cells: usize,
    /// Words copied (headers included).
    pub copied_words: usize,
    /// Old-copy/new-object pairs produced by the remap policy: the paper's
    /// update log, consumed by the transformer pass.
    pub update_log: Vec<(GcRef, GcRef)>,
}

/// The semi-space heap.
#[derive(Debug)]
pub struct Heap {
    words: Vec<u64>,
    semi: usize,
    /// `false`: active space is A (`[1, semi]`); `true`: space B.
    active_b: bool,
    alloc: usize,
    collections: u64,
}

const KIND_SHIFT: u64 = 1;
const KIND_MASK: u64 = 0b110;
const META_SHIFT: u64 = 32;

fn header(kind: HeapKind, meta: u32) -> u64 {
    let k = match kind {
        HeapKind::Object => 0u64,
        HeapKind::RefArray => 1,
        HeapKind::PrimArray => 2,
        HeapKind::Str => 3,
    };
    (u64::from(meta) << META_SHIFT) | (k << KIND_SHIFT)
}

fn header_kind(h: u64) -> HeapKind {
    match (h & KIND_MASK) >> KIND_SHIFT {
        0 => HeapKind::Object,
        1 => HeapKind::RefArray,
        2 => HeapKind::PrimArray,
        _ => HeapKind::Str,
    }
}

fn header_meta(h: u64) -> u32 {
    (h >> META_SHIFT) as u32
}

impl Heap {
    /// Creates a heap with two semispaces of `semispace_words` each.
    pub fn new(semispace_words: usize) -> Self {
        assert!(semispace_words >= 16, "heap too small to be useful");
        Heap {
            words: vec![0; 1 + 2 * semispace_words],
            semi: semispace_words,
            active_b: false,
            alloc: 1,
            collections: 0,
        }
    }

    fn base(&self, space_b: bool) -> usize {
        if space_b {
            1 + self.semi
        } else {
            1
        }
    }

    fn limit(&self, space_b: bool) -> usize {
        self.base(space_b) + self.semi
    }

    /// Words currently allocated in the active semispace.
    pub fn used_words(&self) -> usize {
        self.alloc - self.base(self.active_b)
    }

    /// Words still free in the active semispace.
    pub fn free_words(&self) -> usize {
        self.limit(self.active_b) - self.alloc
    }

    /// Words per semispace.
    pub fn semispace_words(&self) -> usize {
        self.semi
    }

    /// Number of collections performed so far.
    pub fn collections(&self) -> u64 {
        self.collections
    }

    fn alloc_raw(&mut self, n: usize) -> Option<usize> {
        if self.alloc + n > self.limit(self.active_b) {
            return None;
        }
        let addr = self.alloc;
        self.alloc += n;
        // Zero the cell: the space may hold stale data from before the
        // previous collection.
        self.words[addr..addr + n].fill(0);
        Some(addr)
    }

    /// Allocates an object of `class` with `size` zeroed field words.
    pub fn alloc_object(&mut self, class: ClassId, size: usize) -> Option<GcRef> {
        let addr = self.alloc_raw(1 + size)?;
        self.words[addr] = header(HeapKind::Object, class.0);
        Some(GcRef(addr as u32))
    }

    /// Allocates an array of `len` elements; `is_ref` selects the kind.
    pub fn alloc_array(&mut self, is_ref: bool, len: usize) -> Option<GcRef> {
        let addr = self.alloc_raw(1 + len)?;
        let kind = if is_ref { HeapKind::RefArray } else { HeapKind::PrimArray };
        self.words[addr] = header(kind, len as u32);
        Some(GcRef(addr as u32))
    }

    /// Allocates a string cell holding `s`.
    pub fn alloc_string(&mut self, s: &str) -> Option<GcRef> {
        let bytes = s.as_bytes();
        let payload = bytes.len().div_ceil(8);
        let addr = self.alloc_raw(1 + payload)?;
        self.words[addr] = header(HeapKind::Str, bytes.len() as u32);
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.words[addr + 1 + i] = u64::from_le_bytes(w);
        }
        Some(GcRef(addr as u32))
    }

    /// The kind of the cell at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` points at a forwarded cell (only occurs mid-GC or in
    /// lazy-indirection mode before [`Heap::resolve`]).
    pub fn kind(&self, r: GcRef) -> HeapKind {
        let h = self.words[r.addr()];
        assert_eq!(h & 1, 0, "kind() on forwarded cell {r}");
        header_kind(h)
    }

    /// The class of the object at `r`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not an object.
    pub fn class_of(&self, r: GcRef) -> ClassId {
        let h = self.words[r.addr()];
        assert_eq!(h & 1, 0, "class_of() on forwarded cell {r}");
        assert_eq!(header_kind(h), HeapKind::Object, "class_of() on non-object");
        ClassId(header_meta(h))
    }

    /// Length of the array (or byte length of the string) at `r`.
    pub fn len_of(&self, r: GcRef) -> u32 {
        let h = self.words[r.addr()];
        assert_eq!(h & 1, 0, "len_of() on forwarded cell {r}");
        header_meta(h)
    }

    /// Reads field/element word `offset` of the cell at `r`.
    pub fn get(&self, r: GcRef, offset: usize) -> u64 {
        self.words[r.addr() + 1 + offset]
    }

    /// Writes field/element word `offset` of the cell at `r`.
    pub fn set(&mut self, r: GcRef, offset: usize, word: u64) {
        self.words[r.addr() + 1 + offset] = word;
    }

    /// Reads the string cell at `r`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not a string.
    pub fn read_string(&self, r: GcRef) -> String {
        let h = self.words[r.addr()];
        assert_eq!(header_kind(h), HeapKind::Str, "read_string() on non-string");
        let len = header_meta(h) as usize;
        let mut bytes = Vec::with_capacity(len);
        let mut remaining = len;
        let mut i = r.addr() + 1;
        while remaining > 0 {
            let chunk = self.words[i].to_le_bytes();
            let take = remaining.min(8);
            bytes.extend_from_slice(&chunk[..take]);
            remaining -= take;
            i += 1;
        }
        String::from_utf8(bytes).expect("heap strings are valid UTF-8")
    }

    /// Whether the cell at `r` carries a forwarding pointer.
    pub fn is_forwarded(&self, r: GcRef) -> bool {
        self.words[r.addr()] & 1 == 1
    }

    /// Installs a forwarding pointer `from → to` (lazy-indirection mode).
    pub fn install_forward(&mut self, from: GcRef, to: GcRef) {
        self.words[from.addr()] = (u64::from(to.0) << 1) | 1;
    }

    /// Follows forwarding pointers from `r` to the live cell.
    ///
    /// In eager mode this is only meaningful immediately after a collection
    /// (to re-derive roots); in lazy-indirection mode the interpreter calls
    /// it on every access — that check is exactly the steady-state overhead
    /// the paper attributes to JDrums/DVM-style systems.
    pub fn resolve(&self, mut r: GcRef) -> GcRef {
        let mut hops = 0;
        while self.words[r.addr()] & 1 == 1 {
            r = GcRef((self.words[r.addr()] >> 1) as u32);
            hops += 1;
            assert!(hops < 64, "forwarding chain too long; heap corrupt");
        }
        r
    }

    /// Size in words (header included) of the cell at `addr`.
    fn cell_size(&self, addr: usize, layouts: &dyn ClassLayouts) -> usize {
        let h = self.words[addr];
        match header_kind(h) {
            HeapKind::Object => 1 + layouts.object_size(ClassId(header_meta(h))),
            HeapKind::RefArray | HeapKind::PrimArray => 1 + header_meta(h) as usize,
            HeapKind::Str => 1 + (header_meta(h) as usize).div_ceil(8),
        }
    }

    /// Performs a full copying collection.
    ///
    /// `roots` are the addresses of live references (from thread frames,
    /// statics, and any DSU bookkeeping); after `collect` returns, the
    /// caller must rewrite each root via [`Heap::resolve`].
    ///
    /// When `remap` returns a new class for an object's class, the object
    /// is duplicated per the paper's §3.4 protocol and the pair is pushed
    /// onto the returned update log.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] if to-space overflows (possible
    /// during updates, which duplicate transformed objects).
    pub fn collect(
        &mut self,
        roots: &[GcRef],
        layouts: &dyn ClassLayouts,
        remap: &dyn GcRemap,
    ) -> Result<GcOutcome, VmError> {
        let to_b = !self.active_b;
        let to_base = self.base(to_b);
        let to_limit = self.limit(to_b);
        let mut to_alloc = to_base;
        let mut outcome = GcOutcome::default();

        // Copy roots.
        for &root in roots {
            self.copy_cell(root, &mut to_alloc, to_base, to_limit, layouts, remap, &mut outcome)?;
        }

        // Cheney scan.
        let mut scan = to_base;
        while scan < to_alloc {
            let size = self.cell_size(scan, layouts);
            let h = self.words[scan];
            match header_kind(h) {
                HeapKind::Object => {
                    let class = ClassId(header_meta(h));
                    let nfields = layouts.object_size(class);
                    for i in 0..nfields {
                        if layouts.ref_map(class)[i] {
                            let slot = scan + 1 + i;
                            let val = self.words[slot];
                            if val != 0 {
                                let new = self.copy_cell(
                                    GcRef(val as u32),
                                    &mut to_alloc,
                                    to_base,
                                    to_limit,
                                    layouts,
                                    remap,
                                    &mut outcome,
                                )?;
                                self.words[slot] = u64::from(new.0);
                            }
                        }
                    }
                }
                HeapKind::RefArray => {
                    let len = header_meta(h) as usize;
                    for i in 0..len {
                        let slot = scan + 1 + i;
                        let val = self.words[slot];
                        if val != 0 {
                            let new = self.copy_cell(
                                GcRef(val as u32),
                                &mut to_alloc,
                                to_base,
                                to_limit,
                                layouts,
                                remap,
                                &mut outcome,
                            )?;
                            self.words[slot] = u64::from(new.0);
                        }
                    }
                }
                HeapKind::PrimArray | HeapKind::Str => {}
            }
            scan += size;
        }

        self.active_b = to_b;
        self.alloc = to_alloc;
        self.collections += 1;
        Ok(outcome)
    }

    /// Copies one cell to to-space (or returns its forwarding target).
    #[allow(clippy::too_many_arguments)]
    fn copy_cell(
        &mut self,
        r: GcRef,
        to_alloc: &mut usize,
        to_base: usize,
        to_limit: usize,
        layouts: &dyn ClassLayouts,
        remap: &dyn GcRemap,
        outcome: &mut GcOutcome,
    ) -> Result<GcRef, VmError> {
        let mut addr = r.addr();
        // Chase forwarding chains. A target already in to-space is a GC
        // forward (done); a target in from-space is a pre-existing lazy
        // forward whose live cell still needs copying.
        loop {
            let h = self.words[addr];
            if h & 1 == 0 {
                break;
            }
            let t = (h >> 1) as usize;
            if t >= to_base && t < to_limit {
                return Ok(GcRef(t as u32));
            }
            addr = t;
        }

        let h = self.words[addr];
        let kind = header_kind(h);

        if kind == HeapKind::Object {
            let class = ClassId(header_meta(h));
            if let Some(new_class) = remap.remap(class) {
                // Paper §3.4: duplicate the object. Allocate an old-layout
                // copy (scanned normally so its fields get forwarded) and a
                // zeroed new-layout object the transformer will populate.
                let old_size = 1 + layouts.object_size(class);
                let old_copy = self.alloc_to(old_size, to_alloc, to_limit)?;
                let (src_range, dst_start) = (addr..addr + old_size, old_copy);
                self.words.copy_within(src_range, dst_start);

                let new_size = 1 + layouts.object_size(new_class);
                let new_obj = self.alloc_to(new_size, to_alloc, to_limit)?;
                self.words[new_obj..new_obj + new_size].fill(0);
                self.words[new_obj] = header(HeapKind::Object, new_class.0);

                self.words[addr] = ((new_obj as u64) << 1) | 1;
                outcome.copied_cells += 2;
                outcome.copied_words += old_size + new_size;
                outcome.update_log.push((GcRef(old_copy as u32), GcRef(new_obj as u32)));
                return Ok(GcRef(new_obj as u32));
            }
        }

        let size = self.cell_size(addr, layouts);
        let dst = self.alloc_to(size, to_alloc, to_limit)?;
        self.words.copy_within(addr..addr + size, dst);
        self.words[addr] = ((dst as u64) << 1) | 1;
        outcome.copied_cells += 1;
        outcome.copied_words += size;
        Ok(GcRef(dst as u32))
    }

    fn alloc_to(
        &mut self,
        n: usize,
        to_alloc: &mut usize,
        to_limit: usize,
    ) -> Result<usize, VmError> {
        if *to_alloc + n > to_limit {
            return Err(VmError::OutOfMemory { requested: n });
        }
        let addr = *to_alloc;
        *to_alloc += n;
        Ok(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test layouts: class 0 has 2 fields (second is a ref); class 1 has
    /// 3 fields (first is a ref); class 9 (the "updated" version of class
    /// 0) has 3 fields (second is a ref).
    struct TestLayouts;

    impl ClassLayouts for TestLayouts {
        fn object_size(&self, class: ClassId) -> usize {
            match class.0 {
                0 => 2,
                1 => 3,
                9 => 3,
                _ => panic!("unknown class {class}"),
            }
        }
        fn ref_map(&self, class: ClassId) -> &[bool] {
            match class.0 {
                0 => &[false, true],
                1 => &[true, false, false],
                9 => &[false, true, false],
                _ => panic!("unknown class {class}"),
            }
        }
    }

    struct RemapZeroToNine;
    impl GcRemap for RemapZeroToNine {
        fn remap(&self, class: ClassId) -> Option<ClassId> {
            (class.0 == 0).then_some(ClassId(9))
        }
    }

    #[test]
    fn alloc_and_access() {
        let mut heap = Heap::new(1024);
        let o = heap.alloc_object(ClassId(0), 2).unwrap();
        heap.set(o, 0, 42);
        assert_eq!(heap.get(o, 0), 42);
        assert_eq!(heap.class_of(o), ClassId(0));
        assert_eq!(heap.kind(o), HeapKind::Object);
    }

    #[test]
    fn string_roundtrip() {
        let mut heap = Heap::new(1024);
        for s in ["", "a", "hello world", "héllo wörld — ünïcode"] {
            let r = heap.alloc_string(s).unwrap();
            assert_eq!(heap.read_string(r), s);
        }
    }

    #[test]
    fn allocation_fails_when_full() {
        let mut heap = Heap::new(16);
        assert!(heap.alloc_array(false, 100).is_none());
        assert!(heap.alloc_array(false, 8).is_some());
    }

    #[test]
    fn collect_preserves_reachable_graph() {
        let mut heap = Heap::new(1024);
        let a = heap.alloc_object(ClassId(0), 2).unwrap();
        let b = heap.alloc_object(ClassId(1), 3).unwrap();
        heap.set(a, 0, 7);
        heap.set(a, 1, u64::from(b.0)); // a.field1 -> b
        heap.set(b, 1, 13);
        let s = heap.alloc_string("keep me").unwrap();
        heap.set(b, 0, u64::from(s.0)); // b.field0 -> s

        // Garbage that should be dropped.
        for _ in 0..10 {
            heap.alloc_object(ClassId(1), 3).unwrap();
        }
        let used_before = heap.used_words();

        let out = heap.collect(&[a], &TestLayouts, &NoRemap).unwrap();
        assert_eq!(out.copied_cells, 3);
        assert!(out.update_log.is_empty());

        let a2 = heap.resolve(a);
        assert_eq!(heap.get(a2, 0), 7);
        let b2 = GcRef(heap.get(a2, 1) as u32);
        assert_eq!(heap.get(b2, 1), 13);
        let s2 = GcRef(heap.get(b2, 0) as u32);
        assert_eq!(heap.read_string(s2), "keep me");
        assert!(heap.used_words() < used_before);
    }

    #[test]
    fn collect_drops_unreachable_cycles() {
        let mut heap = Heap::new(1024);
        // Two class-1 objects pointing at each other, unreachable.
        let x = heap.alloc_object(ClassId(1), 3).unwrap();
        let y = heap.alloc_object(ClassId(1), 3).unwrap();
        heap.set(x, 0, u64::from(y.0));
        heap.set(y, 0, u64::from(x.0));
        let keep = heap.alloc_string("root").unwrap();

        let out = heap.collect(&[keep], &TestLayouts, &NoRemap).unwrap();
        assert_eq!(out.copied_cells, 1);
    }

    #[test]
    fn ref_arrays_are_traced() {
        let mut heap = Heap::new(1024);
        let arr = heap.alloc_array(true, 3).unwrap();
        let s = heap.alloc_string("elem").unwrap();
        heap.set(arr, 2, u64::from(s.0));

        heap.collect(&[arr], &TestLayouts, &NoRemap).unwrap();
        let arr2 = heap.resolve(arr);
        assert_eq!(heap.len_of(arr2), 3);
        assert_eq!(heap.get(arr2, 0), 0);
        let s2 = GcRef(heap.get(arr2, 2) as u32);
        assert_eq!(heap.read_string(s2), "elem");
    }

    #[test]
    fn remap_duplicates_and_logs_updated_objects() {
        let mut heap = Heap::new(1024);
        let o = heap.alloc_object(ClassId(0), 2).unwrap();
        heap.set(o, 0, 99);
        let s = heap.alloc_string("payload").unwrap();
        heap.set(o, 1, u64::from(s.0));

        let out = heap.collect(&[o], &TestLayouts, &RemapZeroToNine).unwrap();
        assert_eq!(out.update_log.len(), 1);
        let (old_copy, new_obj) = out.update_log[0];

        // Old copy retains the old class and values, with refs forwarded.
        assert_eq!(heap.class_of(old_copy), ClassId(0));
        assert_eq!(heap.get(old_copy, 0), 99);
        let s2 = GcRef(heap.get(old_copy, 1) as u32);
        assert_eq!(heap.read_string(s2), "payload");

        // New object has the new class and zeroed fields.
        assert_eq!(heap.class_of(new_obj), ClassId(9));
        assert_eq!(heap.get(new_obj, 0), 0);
        assert_eq!(heap.get(new_obj, 1), 0);
        assert_eq!(heap.get(new_obj, 2), 0);

        // The root forwards to the NEW object (the heap switches to the
        // new version; the old copy is only reachable through the log).
        assert_eq!(heap.resolve(o), new_obj);
    }

    #[test]
    fn references_to_remapped_objects_point_at_new_version() {
        let mut heap = Heap::new(1024);
        let holder = heap.alloc_object(ClassId(1), 3).unwrap();
        let o = heap.alloc_object(ClassId(0), 2).unwrap();
        heap.set(holder, 0, u64::from(o.0));

        let out = heap.collect(&[holder], &TestLayouts, &RemapZeroToNine).unwrap();
        let (_, new_obj) = out.update_log[0];
        let holder2 = heap.resolve(holder);
        assert_eq!(heap.get(holder2, 0), u64::from(new_obj.0));
    }

    #[test]
    fn two_references_to_same_remapped_object_share_new_version() {
        let mut heap = Heap::new(1024);
        let h1 = heap.alloc_object(ClassId(1), 3).unwrap();
        let h2 = heap.alloc_object(ClassId(1), 3).unwrap();
        let o = heap.alloc_object(ClassId(0), 2).unwrap();
        heap.set(h1, 0, u64::from(o.0));
        heap.set(h2, 0, u64::from(o.0));

        let out = heap.collect(&[h1, h2], &TestLayouts, &RemapZeroToNine).unwrap();
        assert_eq!(out.update_log.len(), 1, "object transformed once");
        let a = heap.get(heap.resolve(h1), 0);
        let b = heap.get(heap.resolve(h2), 0);
        assert_eq!(a, b);
    }

    #[test]
    fn lazy_forward_chains_are_collapsed_by_gc() {
        let mut heap = Heap::new(1024);
        let old = heap.alloc_object(ClassId(0), 2).unwrap();
        let new = heap.alloc_object(ClassId(9), 3).unwrap();
        heap.set(new, 0, 5);
        heap.install_forward(old, new);
        assert_eq!(heap.resolve(old), new);

        // A holder still referencing the OLD address.
        let holder = heap.alloc_object(ClassId(1), 3).unwrap();
        heap.set(holder, 0, u64::from(old.0));

        heap.collect(&[holder], &TestLayouts, &NoRemap).unwrap();
        let holder2 = heap.resolve(holder);
        let target = GcRef(heap.get(holder2, 0) as u32);
        assert_eq!(heap.class_of(target), ClassId(9));
        assert_eq!(heap.get(target, 0), 5);
    }

    #[test]
    fn collect_reports_oom_when_update_duplication_overflows() {
        // Fill >half the semispace with remapped objects: duplication
        // cannot fit.
        let mut heap = Heap::new(256);
        let mut roots = Vec::new();
        while let Some(o) = heap.alloc_object(ClassId(0), 2) {
            roots.push(o);
        }
        let err = heap.collect(&roots, &TestLayouts, &RemapZeroToNine).unwrap_err();
        assert!(matches!(err, VmError::OutOfMemory { .. }), "{err}");
    }

    #[test]
    fn back_to_back_collections_flip_spaces() {
        let mut heap = Heap::new(1024);
        let o = heap.alloc_object(ClassId(0), 2).unwrap();
        heap.set(o, 0, 1);
        heap.collect(&[o], &TestLayouts, &NoRemap).unwrap();
        let o1 = heap.resolve(o);
        heap.collect(&[o1], &TestLayouts, &NoRemap).unwrap();
        let o2 = heap.resolve(o1);
        assert_eq!(heap.get(o2, 0), 1);
        assert_eq!(heap.collections(), 2);
    }
}
